//! The session engine's discrete-event loop.
//!
//! One [`EventQueue`] drives everything. Event ordering at equal
//! virtual times is the queue's insertion order, and the engine
//! schedules deliberately:
//!
//! 1. **world events** are scheduled before any session event, so a
//!    fault at `t` is visible to everything else happening at `t`;
//! 2. **session opens** follow, in session-index order — at equal
//!    arrival times the admission queue therefore sees offers in the
//!    exact order [`plan_admission`](crate::plan_admission) would have
//!    offered them;
//! 3. events scheduled *during* the run (admission pumps, progress
//!    ticks, closes) pop after those, in creation order.
//!
//! The admission queue is drained through **pump events**: whenever
//! work is running, a pump is scheduled at the earliest virtual
//! completion. This keeps the load-bearing invariant that the queue is
//! never drained past the next offer's arrival time — every offer
//! happens at the current event time, every drain happens at an event
//! time, so the admission simulation sees exactly the same
//! offer/completion interleaving as the batch planner and makes
//! bitwise-identical decisions.
//!
//! Compositions triggered at one virtual instant are collected and
//! fanned out across a crossbeam worker pool; each job is a pure
//! function of its request and the world snapshot (the snapshot cannot
//! change mid-instant: all world events at that time were applied
//! first), so results — applied in job-collection order — are
//! independent of worker count.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use qosc_netsim::{EventQueue, SimTime};
use qosc_services::{ServiceId, SlaVerdict, SlaWatchdog};
use qosc_telemetry::{EventKind, RequestTrace, TelemetrySink, TraceState, ROOT_SPAN};

use crate::admission::{AdmissionDecision, AdmissionQueue, ArrivalMeta};
use crate::cache::ShardedCompositionCache;
use crate::engine::{panic_message, serve_one, unserved, DegradationRung, RequestOutcome};
use crate::graph::GraphStore;
use crate::plan::AdaptationPlan;
use crate::select::SelectOptions;
use crate::CoreError;

use super::abr::{AbrMode, BolaController, PlayoutBuffer};
use super::{
    CloseReason, SessionCounters, SessionEngineConfig, SessionOutcome, SessionRequest,
    SessionWorld, SessionsReport, SlaMode,
};

/// How compositions run.
pub(crate) enum Backend<'a> {
    /// Through the sharded composition cache —
    /// [`serve_batch`](crate::serve_batch) semantics: one attempt, no
    /// ladder, panics isolated per request.
    Cached {
        /// The shared cache.
        cache: &'a ShardedCompositionCache,
        /// Selection options (the cached path ignores
        /// `config.resilient.options`).
        options: SelectOptions,
    },
    /// Through [`serve_one`] — ladder, retries, deadline, starting at
    /// the rung admission assigned.
    Resilient,
}

/// Everything a run produces; the public API exposes
/// [`SessionsReport`], the batch adapters read the rest.
pub(crate) struct EngineRun {
    pub report: SessionsReport,
    /// `serve_one` outcome of each session's *opening* composition (or
    /// its shed record), `None` while pending/never-opened.
    pub request_outcomes: Vec<Option<RequestOutcome>>,
    /// Cached-backend results, `None` while pending/never-opened.
    pub batch_results: Vec<Option<crate::Result<Option<AdaptationPlan>>>>,
    /// Admission decision of each session's open (`None` without
    /// admission or while queued at the end of the run).
    pub open_decisions: Vec<Option<AdmissionDecision>>,
}

/// Run long-lived sessions through `world` until quiescence (or the
/// configured horizon) and report the lifecycle partition, per-session
/// accrual, and admission aggregates.
///
/// Deterministic: for fixed `(world, requests, config)` the report —
/// and, with session spans on, the merged telemetry log — is bitwise
/// identical across runs, machines, and worker counts.
pub fn run_sessions<W: SessionWorld + Sync, S: TelemetrySink>(
    world: &mut W,
    requests: &[SessionRequest],
    config: &SessionEngineConfig,
    sink: &S,
) -> SessionsReport {
    run(world, requests, config, Backend::Resilient, sink).report
}

/// One pending composition at the current virtual instant.
#[derive(Debug, Clone, Copy)]
struct Job {
    session: usize,
    start_rung: DegradationRung,
    kind: JobKind,
    /// Plan generation the job was issued against. A switch whose
    /// generation is stale by apply time (the plan changed underneath
    /// it) is discarded — the session keeps its current plan.
    gen: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobKind {
    /// The session's opening composition.
    Open,
    /// Mid-stream repair after the plan died (goes dark first).
    Recompose,
    /// Controller-requested rung change, make-before-break: the
    /// session keeps streaming on its old plan until the new one
    /// serves; a failed or stale switch changes nothing.
    Switch,
    /// SLA-triggered proactive re-composition away from a chain with a
    /// flagged (grey-failing) service, make-before-break like `Switch`:
    /// the session keeps streaming on its sagging plan until the
    /// replacement serves; a failed, stale, or identical result changes
    /// nothing.
    Evade,
}

/// Buffer-aware state attached to a streaming session when
/// [`SessionEngineConfig::abr`] is set.
struct AbrSess {
    buffer: PlayoutBuffer,
    controller: BolaController,
    /// Current fill rate, ppm of playback speed — resampled at plan
    /// adoption, at world events and at every progress tick.
    fill_ppm: u64,
    /// Bumps at every plan adoption; guards in-flight switches.
    gen: u32,
    /// A switch composition is in flight this instant.
    switching: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Open event not yet processed.
    Created,
    /// Offered (queued in admission, or composing its open this
    /// instant).
    PendingOpen,
    /// Streaming on a live plan.
    Active,
    /// Plan invalidated; a re-composition is queued or composing.
    Recomposing,
    /// Closed or shed.
    Done,
}

struct Sess {
    phase: Phase,
    trace: Option<TraceState>,
    plan: Option<AdaptationPlan>,
    rung: DegradationRung,
    satisfaction: f64,
    last_accrual_us: u64,
    outcome: SessionOutcome,
    /// Present only when the engine runs with a buffer model
    /// (`config.abr` set) and the session has started streaming; the
    /// `None` path takes exactly the pre-buffer code paths.
    abr: Option<AbrSess>,
    /// Bumps at every plan adoption; guards in-flight evasions the way
    /// `AbrSess::gen` guards switches (evasions also run without a
    /// buffer model, so they need their own generation counter).
    plan_gen: u32,
    /// An evasion composition is in flight.
    evading: bool,
    /// Virtual time of the last evasion issued; enforces
    /// [`SlaConfig::evade_dwell_us`](super::SlaConfig::evade_dwell_us).
    last_evade_us: Option<u64>,
}

enum JobOut {
    Batch(crate::Result<Option<AdaptationPlan>>),
    Outcome(RequestOutcome),
}

enum Ev {
    /// Apply world mutation `k`.
    World(usize),
    /// Session `i` arrives.
    Open(usize),
    /// Drain the admission queue to now and surface new decisions.
    Pump,
    /// Progress epoch for session `i`.
    Tick(usize),
    /// Session `i`'s holding time elapses.
    Close(usize),
}

struct Loop<'a, 'w, W: SessionWorld, S: TelemetrySink> {
    world: &'w mut W,
    requests: &'a [SessionRequest],
    config: &'a SessionEngineConfig,
    sink: &'a S,
    queue: EventQueue<Ev>,
    admission: Option<AdmissionQueue>,
    /// Ticket → `(session, is_recompose)`; tickets are issued
    /// sequentially by the admission queue.
    tickets: Vec<(usize, bool)>,
    /// Virtual times with a pump already scheduled (dedup only — never
    /// iterated, so the hash order cannot leak into outcomes).
    pumps: std::collections::HashSet<u64>,
    sessions: Vec<Sess>,
    counters: SessionCounters,
    request_outcomes: Vec<Option<RequestOutcome>>,
    batch_results: Vec<Option<crate::Result<Option<AdaptationPlan>>>>,
    open_decisions: Vec<Option<AdmissionDecision>>,
    /// Jobs collected at the current instant.
    jobs: Vec<Job>,
    /// A world event fired at the current instant; live plans need a
    /// liveness check before time moves on.
    world_changed: bool,
    /// Grey-failure detector, present only in
    /// [`SlaMode::DriftAware`]; `None` takes the exact pre-SLA code
    /// paths.
    watchdog: Option<SlaWatchdog>,
    /// Last observed [`SessionWorld::grant_epoch`]. When the broker
    /// reallocates, streaming sessions re-sample their fill — rung
    /// reevaluation, not re-composition. Brokerless worlds never move
    /// the epoch, so this path stays cold.
    last_grant_epoch: u64,
}

/// Priority-class weight fed to the broker: interactive traffic gets
/// four shares for every background share.
fn priority_weight(priority: crate::admission::PriorityClass) -> u32 {
    match priority {
        crate::admission::PriorityClass::Interactive => 4,
        crate::admission::PriorityClass::Standard => 2,
        crate::admission::PriorityClass::Background => 1,
    }
}

pub(crate) fn run<W: SessionWorld + Sync, S: TelemetrySink>(
    world: &mut W,
    requests: &[SessionRequest],
    config: &SessionEngineConfig,
    backend: Backend<'_>,
    sink: &S,
) -> EngineRun {
    let horizon = config.horizon_us.unwrap_or(u64::MAX);
    let mut queue = EventQueue::new();
    // World events first (see module docs for the equal-time contract).
    for (k, &t) in world.world_event_times().iter().enumerate() {
        queue.schedule(SimTime(t), Ev::World(k));
    }
    for (i, request) in requests.iter().enumerate() {
        queue.schedule(SimTime(request.arrival.arrival_us), Ev::Open(i));
    }

    let n = requests.len();
    let initial_grant_epoch = world.grant_epoch();
    let mut lp = Loop {
        world,
        requests,
        config,
        sink,
        queue,
        admission: config.admission.map(AdmissionQueue::new),
        tickets: Vec::new(),
        pumps: std::collections::HashSet::new(),
        sessions: (0..n)
            .map(|_| Sess {
                phase: Phase::Created,
                trace: None,
                plan: None,
                rung: DegradationRung::Full,
                satisfaction: 0.0,
                last_accrual_us: 0,
                outcome: SessionOutcome::default(),
                abr: None,
                plan_gen: 0,
                evading: false,
                last_evade_us: None,
            })
            .collect(),
        counters: SessionCounters {
            offered: n,
            ..SessionCounters::default()
        },
        request_outcomes: (0..n).map(|_| None).collect(),
        batch_results: (0..n).map(|_| None).collect(),
        open_decisions: (0..n).map(|_| None).collect(),
        jobs: Vec::new(),
        world_changed: false,
        watchdog: config.sla.and_then(|sla| {
            (sla.mode == SlaMode::DriftAware).then(|| SlaWatchdog::new(sla.estimator))
        }),
        last_grant_epoch: initial_grant_epoch,
    };

    // Shared per-run graph store: the world snapshot only moves at
    // world events, and the store itself revalidates against the
    // network epoch, so reuse across instants is safe and cheap.
    let graph_store = GraphStore::new();

    let mut end_us = 0u64;
    while let Some(head) = lp.queue.peek_time() {
        if head.0 > horizon {
            break;
        }
        let t = head.0;
        end_us = t;
        // Drain every event at this instant; handlers may schedule more
        // same-instant events (pumps, opens deciding immediately) and
        // collect compose jobs.
        loop {
            while lp.queue.peek_time() == Some(head) {
                let (_, ev) = lp.queue.pop().expect("peeked event");
                lp.handle(t, ev);
            }
            if lp.world_changed {
                lp.world_changed = false;
                lp.check_liveness(t);
            }
            if lp.queue.peek_time() != Some(head) {
                break;
            }
        }
        // Fan the instant's compositions out across the worker pool and
        // apply results in collection order.
        if !lp.jobs.is_empty() {
            let jobs = std::mem::take(&mut lp.jobs);
            let results = lp.run_jobs(&jobs, &backend, &graph_store);
            let cached = matches!(backend, Backend::Cached { .. });
            for (job, result) in jobs.iter().zip(results) {
                lp.apply(t, *job, result, cached);
            }
        }
        // Membership changes this instant (opens, closes, switches,
        // squeezes) may have moved the broker's grants; streaming
        // sessions react by re-evaluating their fill, never by
        // re-composing.
        lp.react_to_grants(t);
    }
    if let Some(h) = config.horizon_us {
        end_us = h;
    }

    // Sessions still open accrue to the end of the run and count as
    // active_at_end — the steady-state censoring term of the lifecycle
    // partition.
    for i in 0..n {
        match lp.sessions[i].phase {
            Phase::Active | Phase::Recomposing => {
                lp.accrue(i, end_us);
                lp.counters.active_at_end += 1;
            }
            Phase::PendingOpen => lp.counters.active_at_end += 1,
            Phase::Created | Phase::Done => {}
        }
    }

    let admission_stats = lp.admission.as_ref().map(|q| q.stats()).unwrap_or_default();
    let outcomes: Vec<SessionOutcome> = lp.sessions.into_iter().map(|s| s.outcome).collect();
    EngineRun {
        report: SessionsReport {
            outcomes,
            counters: lp.counters,
            admission: admission_stats,
            end_us,
        },
        request_outcomes: lp.request_outcomes,
        batch_results: lp.batch_results,
        open_decisions: lp.open_decisions,
    }
}

impl<W: SessionWorld + Sync, S: TelemetrySink> Loop<'_, '_, W, S> {
    fn handle(&mut self, t: u64, ev: Ev) {
        match ev {
            Ev::World(k) => {
                self.world.apply_world_event(k);
                self.world_changed = true;
            }
            Ev::Open(i) => self.open(t, i),
            Ev::Pump => {
                self.pumps.remove(&t);
                if let Some(q) = self.admission.as_mut() {
                    q.drain_until(t);
                }
                self.surface_decisions(t);
                self.schedule_pump(t);
            }
            Ev::Tick(i) => self.tick(t, i),
            Ev::Close(i) => {
                if matches!(self.sessions[i].phase, Phase::Active | Phase::Recomposing) {
                    self.close(t, i, CloseReason::Completed);
                }
            }
        }
    }

    fn open(&mut self, t: u64, i: usize) {
        let request = &self.requests[i];
        self.counters.opened += 1;
        let sess = &mut self.sessions[i];
        sess.outcome.opened = true;
        sess.outcome.opened_us = t;
        sess.phase = Phase::PendingOpen;
        // The root span opens here (request id = session index) and its
        // counters persist in TraceState across every later step, so
        // the whole session is one monotone per-request sequence.
        let mut trace = RequestTrace::new(self.sink, i as u64, request.arrival.arrival_us);
        if self.config.session_spans {
            trace.emit(
                ROOT_SPAN,
                EventKind::SessionOpened {
                    hold_us: request.hold_us,
                },
            );
        }
        sess.trace = Some(trace.save());
        match self.admission.as_mut() {
            Some(q) => {
                let ticket = q.offer(request.arrival);
                debug_assert_eq!(ticket, self.tickets.len());
                self.tickets.push((i, false));
                self.surface_decisions(t);
                self.schedule_pump(t);
            }
            None => self.jobs.push(Job {
                session: i,
                start_rung: DegradationRung::Full,
                kind: JobKind::Open,
                gen: 0,
            }),
        }
    }

    /// Schedule a pump at the admission queue's next virtual
    /// completion, if none is already pending there.
    fn schedule_pump(&mut self, t: u64) {
        let Some(q) = self.admission.as_ref() else {
            return;
        };
        if let Some(finish) = q.next_finish_us() {
            debug_assert!(finish > t, "completions never land in the past");
            if finish > t && self.pumps.insert(finish) {
                self.queue.schedule(SimTime(finish), Ev::Pump);
            }
        }
    }

    /// Turn decisions the admission queue just made into compose jobs
    /// (admitted) or closes (shed).
    fn surface_decisions(&mut self, t: u64) {
        let Some(q) = self.admission.as_mut() else {
            return;
        };
        let newly = q.take_newly_decided();
        for ticket in newly {
            let (i, recompose) = self.tickets[ticket];
            if self.sessions[i].phase == Phase::Done {
                continue;
            }
            let decision = self
                .admission
                .as_ref()
                .expect("admission present")
                .decision(ticket)
                .expect("newly decided ticket has a decision");
            if recompose {
                if decision.admitted {
                    self.jobs.push(Job {
                        session: i,
                        // Never climb back above the session's current
                        // rung mid-stream; brown-out can push further
                        // down. (Controller up-switches go through
                        // `JobKind::Switch` instead, which skips this
                        // clamp deliberately.)
                        start_rung: self.sessions[i].rung.max(decision.start_rung),
                        kind: JobKind::Recompose,
                        gen: 0,
                    });
                } else {
                    // The queue refused the re-composition: the session
                    // starves.
                    if let (Some(state), Some(reason)) = (self.sessions[i].trace, decision.shed) {
                        let mut trace = RequestTrace::resume(self.sink, state);
                        trace.advance_to(t);
                        trace.emit(
                            ROOT_SPAN,
                            EventKind::RequestShed {
                                reason: reason.label(),
                            },
                        );
                        self.sessions[i].trace = Some(trace.save());
                    }
                    self.close(t, i, CloseReason::Starved);
                }
            } else {
                self.open_decisions[i] = Some(decision);
                if decision.admitted {
                    // Replicates the admitted-request trace prologue of
                    // serve_batch_with_admission_traced byte for byte.
                    if let Some(state) = self.sessions[i].trace {
                        let mut trace = RequestTrace::resume(self.sink, state);
                        let admission_span = trace.open_span(ROOT_SPAN, "admission");
                        trace.emit(
                            admission_span,
                            EventKind::RequestAdmitted {
                                queue_wait_us: decision.queue_wait_us,
                                rung: decision.start_rung.label(),
                            },
                        );
                        trace.advance_to(decision.start_us);
                        self.sessions[i].trace = Some(trace.save());
                    }
                    debug_assert_eq!(decision.start_us, t, "admissions start now");
                    self.jobs.push(Job {
                        session: i,
                        start_rung: decision.start_rung,
                        kind: JobKind::Open,
                        gen: 0,
                    });
                } else {
                    self.shed_open(t, i, decision);
                }
            }
        }
    }

    /// The admission queue refused a session's open.
    fn shed_open(&mut self, t: u64, i: usize, decision: AdmissionDecision) {
        let reason = decision.shed.expect("refused decisions carry a reason");
        let arrival_us = self.requests[i].arrival.arrival_us;
        if let Some(state) = self.sessions[i].trace {
            // Same event sequence as the shed arm of
            // serve_batch_with_admission_traced.
            let mut trace = RequestTrace::resume(self.sink, state);
            let admission_span = trace.open_span(ROOT_SPAN, "admission");
            trace.advance_to(arrival_us.saturating_add(decision.queue_wait_us));
            trace.emit(
                admission_span,
                EventKind::RequestShed {
                    reason: reason.label(),
                },
            );
            if self.config.session_spans {
                trace.emit(ROOT_SPAN, EventKind::SessionClosed { reason: "shed" });
            }
            self.sessions[i].trace = Some(trace.save());
        }
        self.request_outcomes[i] = Some(RequestOutcome {
            shed: true,
            error: Some(format!("shed: {reason}")),
            ..unserved(0, 0, false, None)
        });
        let sess = &mut self.sessions[i];
        sess.outcome.shed = Some(reason);
        sess.outcome.closed_us = Some(t);
        sess.phase = Phase::Done;
        self.counters.shed += 1;
    }

    fn tick(&mut self, t: u64, i: usize) {
        if !matches!(self.sessions[i].phase, Phase::Active | Phase::Recomposing) {
            return; // stale tick of a closed session
        }
        self.sessions[i].outcome.epochs += 1;
        if self.config.session_spans {
            if let Some(state) = self.sessions[i].trace {
                let mut trace = RequestTrace::resume(self.sink, state);
                trace.advance_to(t);
                trace.open_span(ROOT_SPAN, "epoch");
                self.sessions[i].trace = Some(trace.save());
            }
        }
        // Buffer-aware sessions integrate up to the tick with the old
        // delivery rate, then resample it; `abr: None` keeps exactly
        // the pre-buffer accrual call pattern.
        if self.sessions[i].abr.is_some() {
            self.accrue(i, t);
            self.resample_fill(i);
        }
        // A tick re-checks liveness even without a world event: worlds
        // whose state decays between scheduled mutations (lease clocks)
        // surface breakage here at the latest.
        if self.sessions[i].phase == Phase::Active {
            if !self.plan_ok(i) {
                self.begin_recompose(t, i);
            } else {
                self.sla_tick(t, i);
                self.maybe_switch(t, i);
            }
        }
        if self.sessions[i].phase != Phase::Done {
            self.schedule_tick(t, i);
        }
    }

    fn schedule_tick(&mut self, t: u64, i: usize) {
        let tick = self.config.tick_us;
        if tick == 0 {
            return;
        }
        // Saturating guard: at the top of the u64 range the next tick
        // would not advance time, and scheduling it would spin forever.
        let next = t.saturating_add(tick);
        if next > t {
            self.queue.schedule(SimTime(next), Ev::Tick(i));
        }
    }

    /// World state changed at `t`: every streaming session re-checks
    /// its plan, in session-index order.
    fn check_liveness(&mut self, t: u64) {
        for i in 0..self.sessions.len() {
            if self.sessions[i].phase != Phase::Active {
                continue;
            }
            // Buffer-aware sessions close the accrual interval before
            // the mutation changes their delivery rate.
            if self.sessions[i].abr.is_some() {
                self.accrue(i, t);
                self.resample_fill(i);
            }
            if !self.plan_ok(i) {
                self.begin_recompose(t, i);
            }
        }
    }

    /// Mode-dependent plan liveness. Reactive mode (and the no-buffer
    /// engine) treat a bandwidth squeeze as plan death
    /// ([`SessionWorld::plan_alive`]); the static-ladder and BOLA modes
    /// only die on hard faults ([`SessionWorld::plan_routable`]) — a
    /// squeeze degrades delivery and drains the buffer instead.
    fn plan_ok(&self, i: usize) -> bool {
        let Some(plan) = self.sessions[i].plan.as_ref() else {
            return false;
        };
        match self.config.abr.map(|a| a.mode) {
            Some(AbrMode::StaticLadder) | Some(AbrMode::Bola) => self.world.plan_routable(plan),
            Some(AbrMode::Reactive) | None => self.world.plan_alive(plan),
        }
    }

    /// Re-read the plan's achieved delivery rate from the world
    /// (capped at the configured maximum fill speed). Goes through the
    /// per-session channel so brokered worlds answer with the session's
    /// granted rate; the default implementation falls straight back to
    /// the shared-fate `delivery_ppm`.
    fn resample_fill(&mut self, i: usize) {
        let Some(cfg) = self.config.abr else {
            return;
        };
        let demand = self.requests[i].demand_bps;
        let plan_gen = self.sessions[i].plan_gen;
        let fill = self.sessions[i]
            .plan
            .as_ref()
            .map(|p| {
                self.world
                    .session_delivery_ppm(i as u64, plan_gen, p, demand)
                    .min(cfg.max_fill_ppm)
            })
            .unwrap_or(0);
        if let Some(abr) = self.sessions[i].abr.as_mut() {
            abr.fill_ppm = fill;
        }
    }

    /// The broker reallocated at `t`: every streaming buffer-aware
    /// session closes its accrual interval at the old fill and
    /// re-samples against its new grant. The next tick's controller
    /// decision then sees the brokered rate — grant updates trigger
    /// rung reevaluation, never re-composition.
    fn react_to_grants(&mut self, t: u64) {
        let epoch = self.world.grant_epoch();
        if epoch == self.last_grant_epoch {
            return;
        }
        self.last_grant_epoch = epoch;
        if self.config.abr.is_none() {
            return;
        }
        for i in 0..self.sessions.len() {
            if self.sessions[i].phase != Phase::Active || self.sessions[i].abr.is_none() {
                continue;
            }
            let before = self.sessions[i].abr.as_ref().map(|a| a.fill_ppm);
            self.accrue(i, t);
            self.resample_fill(i);
            let after = self.sessions[i].abr.as_ref().map(|a| a.fill_ppm);
            if before != after {
                let sess = &mut self.sessions[i];
                sess.outcome.grant_updates = sess.outcome.grant_updates.saturating_add(1);
                if self.config.session_spans {
                    if let Some(state) = sess.trace {
                        let mut trace = RequestTrace::resume(self.sink, state);
                        trace.advance_to(t);
                        trace.emit(
                            ROOT_SPAN,
                            EventKind::GrantUpdated {
                                fill_ppm: after.unwrap_or(0),
                            },
                        );
                        sess.trace = Some(trace.save());
                    }
                }
            }
        }
    }

    /// BOLA mode only: ask the controller whether to re-compose onto a
    /// different rung. Make-before-break — the session keeps streaming
    /// on its current plan while the switch composes, and the job
    /// carries the plan generation so a stale result is discarded.
    fn maybe_switch(&mut self, t: u64, i: usize) {
        let Some(cfg) = self.config.abr else {
            return;
        };
        if cfg.mode != AbrMode::Bola {
            return;
        }
        if self.sessions[i].evading {
            // An SLA evasion is already composing this session a new
            // chain; a concurrent controller switch would be stale on
            // arrival anyway.
            return;
        }
        let rung = self.sessions[i].rung;
        let Some(abr) = self.sessions[i].abr.as_mut() else {
            return;
        };
        if abr.switching {
            return;
        }
        let Some(target) = abr.controller.decide(t, rung, &cfg, &abr.buffer) else {
            return;
        };
        abr.switching = true;
        let gen = abr.gen;
        self.jobs.push(Job {
            session: i,
            start_rung: target,
            kind: JobKind::Switch,
            gen,
        });
    }

    /// Drift-aware SLA pass for one streaming session's tick: sample
    /// observed QoS for every service in its plan, feed the watchdog,
    /// probate on violation, probe probated services back to health,
    /// and evade the chain while any of its services stays flagged.
    fn sla_tick(&mut self, t: u64, i: usize) {
        let Some(watchdog) = self.watchdog.as_mut() else {
            return; // sla: None, or Binary mode — no estimators
        };
        let Some(plan) = self.sessions[i].plan.as_ref() else {
            return;
        };
        let services: Vec<ServiceId> = plan.steps.iter().filter_map(|s| s.service).collect();
        let mut violations: Vec<(ServiceId, u64)> = Vec::new();
        let mut flagged_in_plan = false;
        for id in services {
            // Worlds only report on *current* incarnations; a stale id
            // (the plan outlived a crash/revive) yields no sample.
            let Some(obs) = self.world.observe_service(id) else {
                continue;
            };
            match watchdog.observe(id, obs, t) {
                SlaVerdict::Violation { observed_ppm } => {
                    violations.push((id, observed_ppm));
                    flagged_in_plan = true;
                }
                SlaVerdict::Degraded => {
                    if watchdog.is_flagged(id) {
                        flagged_in_plan = true;
                    }
                }
                SlaVerdict::Healthy => {
                    // Half-open probing: a flagged service delivering a
                    // healthy sample earns one probe credit; enough
                    // distinct-instant credits clear its probation, and
                    // the estimator restarts cold for the next episode.
                    if watchdog.is_flagged(id) && self.world.probe_service(id, t) {
                        watchdog.clear(id);
                    }
                }
            }
        }
        for (id, observed_ppm) in violations {
            self.world.probate_service(id, observed_ppm, t);
            let sess = &mut self.sessions[i];
            sess.outcome.sla_violations = sess.outcome.sla_violations.saturating_add(1);
            if self.config.session_spans {
                if let Some(state) = sess.trace {
                    let mut trace = RequestTrace::resume(self.sink, state);
                    trace.advance_to(t);
                    trace.emit(
                        ROOT_SPAN,
                        EventKind::SlaViolation {
                            service: id.index() as u32,
                            observed_ppm,
                        },
                    );
                    sess.trace = Some(trace.save());
                }
            }
        }
        if flagged_in_plan {
            self.maybe_evade(t, i);
        }
    }

    /// Issue a make-before-break evasion off a flagged chain, rate
    /// limited by the evade dwell. The composer sees the probated
    /// service's penalty and steers the new chain around it when an
    /// alternative exists.
    fn maybe_evade(&mut self, t: u64, i: usize) {
        let Some(sla) = self.config.sla else {
            return;
        };
        let sess = &self.sessions[i];
        if sess.evading {
            return;
        }
        if sess.abr.as_ref().map(|a| a.switching).unwrap_or(false) {
            return; // let the in-flight switch land first
        }
        if let Some(last) = sess.last_evade_us {
            if t.saturating_sub(last) < sla.evade_dwell_us {
                return;
            }
        }
        // The dwell clock starts at *issuance*, not adoption: when the
        // penalized composer still picks the same chain (no
        // alternative exists) the session must not re-compose every
        // tick.
        let start_rung = sess.rung;
        let gen = sess.plan_gen;
        let sess = &mut self.sessions[i];
        sess.evading = true;
        sess.last_evade_us = Some(t);
        self.jobs.push(Job {
            session: i,
            start_rung,
            kind: JobKind::Evade,
            gen,
        });
    }

    /// An evasion composition came back: adopt it only if the plan
    /// generation still matches, the session still streams, and the
    /// new chain actually differs (different services or hosts).
    /// Anything else is discarded — the session never goes dark over
    /// an evasion.
    fn apply_evade(&mut self, t: u64, job: Job, outcome: RequestOutcome) {
        let i = job.session;
        self.sessions[i].evading = false;
        if self.sessions[i].plan_gen != job.gen || self.sessions[i].phase != Phase::Active {
            return;
        }
        let Some(new_plan) = outcome.plan.as_ref() else {
            return; // composed nothing: keep streaming on the old plan
        };
        let same_chain = self.sessions[i]
            .plan
            .as_ref()
            .map(|old| {
                old.steps.len() == new_plan.steps.len()
                    && old
                        .steps
                        .iter()
                        .zip(&new_plan.steps)
                        .all(|(a, b)| a.service == b.service && a.host == b.host)
            })
            .unwrap_or(false);
        if same_chain {
            return; // no alternative chain exists yet; dwell limits retries
        }
        let from = self.sessions[i].rung;
        let to = outcome.rung.expect("served outcomes carry a rung");
        // Close the interval on the sagging chain, then go live on the
        // replacement without a dark gap (make-before-break).
        self.accrue(i, t);
        self.adopt_plan(t, i, &outcome);
        if self.sessions[i].abr.is_some() {
            self.resample_fill(i);
        }
        let sess = &mut self.sessions[i];
        sess.outcome.evasions = sess.outcome.evasions.saturating_add(1);
        let buffer_us = sess.abr.as_ref().map(|a| a.buffer.level_us()).unwrap_or(0);
        if self.config.session_spans {
            if let Some(state) = sess.trace {
                let mut trace = RequestTrace::resume(self.sink, state);
                trace.advance_to(t);
                trace.emit(
                    ROOT_SPAN,
                    EventKind::SlaEvaded {
                        from: from.label(),
                        to: to.label(),
                        buffer_us,
                    },
                );
                sess.trace = Some(trace.save());
            }
        }
    }

    /// The session's plan died at `t`: go dark and ask for another
    /// composition (through admission when configured).
    fn begin_recompose(&mut self, t: u64, i: usize) {
        self.accrue(i, t);
        // With SLA detection on (either mode), a dying plan counts as a
        // hard failure against every service in it — the world's
        // circuit breaker attributes bluntly, which is exactly the
        // binary baseline's behaviour. The `sla: None` path reports
        // nothing, preserving the pre-SLA code paths bit for bit.
        if self.config.sla.is_some() {
            let services: Vec<ServiceId> = self.sessions[i]
                .plan
                .as_ref()
                .map(|p| p.steps.iter().filter_map(|s| s.service).collect())
                .unwrap_or_default();
            for id in services {
                self.world.report_service_failure(id, t);
            }
        }
        {
            let sess = &mut self.sessions[i];
            sess.plan = None;
            sess.satisfaction = 0.0;
        }
        // The dead plan's pinned flow no longer exists; release its
        // grant so survivors absorb it while the repair composes.
        self.world.deregister_session_flow(i as u64);
        let attempt = self.sessions[i].outcome.recompositions.saturating_add(1);
        if let Some(state) = self.sessions[i].trace {
            let mut trace = RequestTrace::resume(self.sink, state);
            trace.advance_to(t);
            let span = trace.open_span(ROOT_SPAN, "recompose");
            trace.emit(span, EventKind::Recomposed { attempt });
            self.sessions[i].trace = Some(trace.save());
        }
        if self.sessions[i].outcome.recompositions >= self.config.max_recompositions {
            self.close(t, i, CloseReason::GaveUp);
            return;
        }
        self.sessions[i].outcome.recompositions = attempt;
        self.sessions[i].phase = Phase::Recomposing;
        match self.admission.as_mut() {
            Some(q) => {
                // Re-compositions inherit the session's class and cost
                // but drop the deadline budget: mid-stream repair is
                // best-effort, only QueueFull can refuse it.
                let arrival = self.requests[i].arrival;
                let ticket = q.offer(ArrivalMeta {
                    arrival_us: t,
                    priority: arrival.priority,
                    service_cost_us: arrival.service_cost_us,
                    deadline_budget_us: None,
                });
                debug_assert_eq!(ticket, self.tickets.len());
                self.tickets.push((i, true));
                self.surface_decisions(t);
                self.schedule_pump(t);
            }
            None => self.jobs.push(Job {
                session: i,
                start_rung: self.sessions[i].rung,
                kind: JobKind::Recompose,
                gen: 0,
            }),
        }
    }

    /// Integrate session-time since the last accrual point: lit on the
    /// current rung while a plan is live, dark otherwise. With a buffer
    /// model attached, the same interval also fills/drains the playout
    /// buffer — at the session's sampled delivery rate while lit, dry
    /// while dark — and accounts stalled playback.
    fn accrue(&mut self, i: usize, t: u64) {
        let mut stall_entered_us = None;
        {
            let sess = &mut self.sessions[i];
            if sess.outcome.started_us.is_none() {
                return;
            }
            let dt = t.saturating_sub(sess.last_accrual_us);
            sess.last_accrual_us = t;
            if dt == 0 {
                return;
            }
            if sess.plan.is_some() {
                sess.outcome.lit_us = sess.outcome.lit_us.saturating_add(dt);
                sess.outcome.satisfaction_us += sess.satisfaction * dt as f64;
                let slot = &mut sess.outcome.rung_us[sess.rung as usize];
                *slot = slot.saturating_add(dt);
            } else {
                sess.outcome.dark_us = sess.outcome.dark_us.saturating_add(dt);
            }
            if let Some(abr) = sess.abr.as_mut() {
                let fill = if sess.plan.is_some() { abr.fill_ppm } else { 0 };
                let adv = abr.buffer.advance(dt, fill);
                if adv.stalled_us > 0 {
                    sess.outcome.rebuffer_us =
                        sess.outcome.rebuffer_us.saturating_add(adv.stalled_us);
                    if adv.entered_stall {
                        sess.outcome.rebuffer_events =
                            sess.outcome.rebuffer_events.saturating_add(1);
                        stall_entered_us = Some(adv.stalled_us);
                    }
                }
                sess.outcome.buffer_peak_us =
                    sess.outcome.buffer_peak_us.max(abr.buffer.level_us());
            }
        }
        if let Some(stalled_us) = stall_entered_us {
            if self.config.session_spans {
                if let Some(state) = self.sessions[i].trace {
                    let mut trace = RequestTrace::resume(self.sink, state);
                    trace.advance_to(t);
                    trace.emit(ROOT_SPAN, EventKind::Rebuffered { stalled_us });
                    self.sessions[i].trace = Some(trace.save());
                }
            }
        }
    }

    fn close(&mut self, t: u64, i: usize, reason: CloseReason) {
        self.accrue(i, t);
        // Departures are preemption-free: the broker redistributes the
        // released grant without lowering any survivor.
        self.world.deregister_session_flow(i as u64);
        let sess = &mut self.sessions[i];
        sess.phase = Phase::Done;
        sess.outcome.closed_us = Some(t);
        sess.outcome.close = Some(reason);
        if self.config.session_spans {
            if let Some(state) = sess.trace {
                let mut trace = RequestTrace::resume(self.sink, state);
                trace.advance_to(t);
                trace.emit(
                    ROOT_SPAN,
                    EventKind::SessionClosed {
                        reason: reason.label(),
                    },
                );
                sess.trace = Some(trace.save());
            }
        }
        match reason {
            CloseReason::Completed => self.counters.completed += 1,
            CloseReason::FailedOpen => self.counters.failed_open += 1,
            CloseReason::GaveUp => self.counters.gave_up += 1,
            CloseReason::Starved => self.counters.starved += 1,
        }
    }

    /// Fan the instant's compositions out across the worker pool.
    /// Every job is pure in (request, world snapshot, saved trace), so
    /// the result vector — indexed like `jobs` — is identical for any
    /// worker count.
    fn run_jobs(
        &self,
        jobs: &[Job],
        backend: &Backend<'_>,
        graph_store: &GraphStore,
    ) -> Vec<Option<(JobOut, TraceState)>> {
        let prepared: Vec<(Job, TraceState)> = jobs
            .iter()
            .map(|job| {
                let state = self.sessions[job.session]
                    .trace
                    .expect("jobs only exist for opened sessions");
                (*job, state)
            })
            .collect();
        let workers = self
            .config
            .resilient
            .workers
            .max(1)
            .min(prepared.len().max(1));
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<(JobOut, TraceState)>> = prepared.iter().map(|_| None).collect();
        let world: &W = &*self.world;
        let requests = self.requests;
        let config = &self.config.resilient;
        let sink = self.sink;
        let mut collected: Vec<(usize, (JobOut, TraceState))> = Vec::with_capacity(prepared.len());
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let prepared = &prepared;
                    scope.spawn(move || {
                        let composer = world.composer();
                        let mut local = Vec::new();
                        loop {
                            let slot = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&(job, state)) = prepared.get(slot) else {
                                return local;
                            };
                            let request = &requests[job.session];
                            let mut trace = RequestTrace::resume(sink, state);
                            let out = match backend {
                                Backend::Cached { cache, options } => {
                                    let result = catch_unwind(AssertUnwindSafe(|| {
                                        cache.compose_traced(
                                            &composer,
                                            &request.request.profiles,
                                            request.request.sender_host,
                                            request.request.receiver_host,
                                            options,
                                            &mut trace,
                                        )
                                    }))
                                    .unwrap_or_else(|payload| {
                                        Err(CoreError::WorkerPanic(panic_message(payload)))
                                    });
                                    JobOut::Batch(result)
                                }
                                Backend::Resilient => JobOut::Outcome(serve_one(
                                    &composer,
                                    graph_store,
                                    &request.request,
                                    job.session,
                                    config,
                                    job.start_rung,
                                    &mut trace,
                                )),
                            };
                            local.push((slot, (out, trace.save())));
                        }
                    })
                })
                .collect();
            for handle in handles {
                if let Ok(local) = handle.join() {
                    collected.extend(local);
                }
            }
        });
        for (slot, result) in collected {
            slots[slot] = Some(result);
        }
        slots
    }

    /// Apply one composition result back onto its session.
    fn apply(&mut self, t: u64, job: Job, result: Option<(JobOut, TraceState)>, cached: bool) {
        let i = job.session;
        if self.sessions[i].phase == Phase::Done {
            return; // decided after the session already closed
        }
        let Some((out, state)) = result else {
            // The worker thread died outside composition; account for
            // the loss the way the batch paths do. A lost *switch* or
            // *evasion* changes nothing — make-before-break keeps the
            // session on its current plan.
            if job.kind == JobKind::Switch {
                if let Some(abr) = self.sessions[i].abr.as_mut() {
                    abr.switching = false;
                }
                return;
            }
            if job.kind == JobKind::Evade {
                self.sessions[i].evading = false;
                return;
            }
            if cached {
                self.batch_results[i] = Some(Err(CoreError::WorkerPanic(
                    "worker thread lost before reporting".to_string(),
                )));
            } else if job.kind == JobKind::Open {
                self.request_outcomes[i] = Some(unserved(
                    0,
                    0,
                    false,
                    Some("worker thread lost before reporting".to_string()),
                ));
            }
            if job.kind == JobKind::Recompose {
                self.accrue(i, t);
                self.close(t, i, CloseReason::Starved);
            } else {
                self.close(t, i, CloseReason::FailedOpen);
            }
            return;
        };
        self.sessions[i].trace = Some(state);
        match out {
            JobOut::Batch(result) => {
                let served = matches!(&result, Ok(Some(_)));
                self.batch_results[i] = Some(result);
                // Cached-backend sessions are always degenerate: close
                // at the open instant.
                self.sessions[i].outcome.started_us = Some(t);
                self.sessions[i].last_accrual_us = t;
                self.close(
                    t,
                    i,
                    if served {
                        CloseReason::Completed
                    } else {
                        CloseReason::FailedOpen
                    },
                );
            }
            JobOut::Outcome(mut outcome) => {
                if job.kind == JobKind::Open && self.admission.is_some() {
                    // serve_batch_with_admission stamps the brown-out
                    // rung onto every admitted outcome.
                    outcome.brownout_rung = Some(job.start_rung);
                }
                self.sessions[i].outcome.attempts = self.sessions[i]
                    .outcome
                    .attempts
                    .saturating_add(outcome.attempts);
                let served = outcome.plan.is_some();
                if job.kind == JobKind::Switch {
                    self.apply_switch(t, job, outcome);
                    return;
                }
                if job.kind == JobKind::Evade {
                    self.apply_evade(t, job, outcome);
                    return;
                }
                if job.kind == JobKind::Recompose {
                    // Close the dark interval *before* the new plan
                    // goes live, so the repair latency accrues as dark
                    // time.
                    self.accrue(i, t);
                    if served {
                        self.adopt_plan(t, i, &outcome);
                        self.sessions[i].phase = Phase::Active;
                        if self.sessions[i].abr.is_some() {
                            self.resample_fill(i);
                        }
                    } else {
                        self.close(t, i, CloseReason::Starved);
                    }
                    return;
                }
                if served {
                    self.adopt_plan(t, i, &outcome);
                }
                self.request_outcomes[i] = Some(outcome);
                if !served {
                    self.close(t, i, CloseReason::FailedOpen);
                    return;
                }
                let sess = &mut self.sessions[i];
                sess.outcome.started_us = Some(t);
                sess.last_accrual_us = t;
                sess.phase = Phase::Active;
                let hold = self.requests[i].hold_us;
                if hold == 0 {
                    self.close(t, i, CloseReason::Completed);
                    return;
                }
                // Attach the buffer model: startup latency is modeled
                // as pre-buffered media, so sessions open with credit.
                if let Some(cfg) = self.config.abr {
                    let buffer = PlayoutBuffer::new(cfg.startup_buffer_us, cfg.buffer_capacity_us);
                    let sess = &mut self.sessions[i];
                    sess.outcome.buffer_peak_us = buffer.level_us();
                    sess.abr = Some(AbrSess {
                        buffer,
                        controller: BolaController::new(),
                        fill_ppm: 0,
                        gen: 0,
                        switching: false,
                    });
                    self.resample_fill(i);
                }
                let close_at = t.saturating_add(hold);
                self.queue.schedule(SimTime(close_at), Ev::Close(i));
                self.schedule_tick(t, i);
            }
        }
    }

    /// A controller switch came back: adopt it only if it still
    /// matches the plan generation it was issued against, actually
    /// changed rung, and the session is still streaming. Anything else
    /// is discarded — the session never goes dark over a switch.
    fn apply_switch(&mut self, t: u64, job: Job, outcome: RequestOutcome) {
        let i = job.session;
        let stale = self.sessions[i]
            .abr
            .as_ref()
            .map(|a| a.gen != job.gen)
            .unwrap_or(true);
        if let Some(abr) = self.sessions[i].abr.as_mut() {
            abr.switching = false;
        }
        if stale || self.sessions[i].phase != Phase::Active {
            return;
        }
        let from = self.sessions[i].rung;
        let to = match (&outcome.plan, outcome.rung) {
            (Some(_), Some(rung)) => rung,
            // The switch composed nothing: stay on the current plan.
            _ => return,
        };
        if to == from {
            // The ladder fell back to the rung we already stream on
            // (an up-switch that was not feasible): not a switch.
            return;
        }
        // Close the interval on the old rung, then go live on the new
        // plan without a dark gap (make-before-break).
        self.accrue(i, t);
        self.adopt_plan(t, i, &outcome);
        self.resample_fill(i);
        let mut buffer_us = 0;
        if let Some(abr) = self.sessions[i].abr.as_mut() {
            abr.controller.committed(t, from);
            buffer_us = abr.buffer.level_us();
        }
        self.sessions[i].outcome.switches = self.sessions[i].outcome.switches.saturating_add(1);
        if self.config.session_spans {
            if let Some(state) = self.sessions[i].trace {
                let mut trace = RequestTrace::resume(self.sink, state);
                trace.advance_to(t);
                trace.emit(
                    ROOT_SPAN,
                    EventKind::RungSwitch {
                        from: from.label(),
                        to: to.label(),
                        buffer_us,
                    },
                );
                self.sessions[i].trace = Some(trace.save());
            }
        }
    }

    /// A composition served: install the plan, record the rung
    /// transition.
    fn adopt_plan(&mut self, t: u64, i: usize, outcome: &RequestOutcome) {
        let rung = outcome.rung.expect("served outcomes carry a rung");
        let sess = &mut self.sessions[i];
        sess.plan = outcome.plan.clone();
        sess.rung = rung;
        sess.satisfaction = outcome.satisfaction;
        sess.outcome.final_rung = Some(rung);
        sess.outcome.rung_history.push((t, rung));
        sess.plan_gen = sess.plan_gen.wrapping_add(1);
        if let Some(abr) = sess.abr.as_mut() {
            abr.gen = abr.gen.wrapping_add(1);
        }
        // Adoption is the admission-commit point: pin the plan's demand
        // with the world's broker (a re-pin after a rung switch lowers
        // or raises the registered window in place). No-op without a
        // broker.
        if let Some(plan) = outcome.plan.as_ref() {
            let weight = priority_weight(self.requests[i].arrival.priority);
            self.world
                .register_session_flow(i as u64, plan, self.requests[i].demand_bps, weight);
        }
    }
}
