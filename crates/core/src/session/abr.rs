//! Buffer-aware mid-stream adaptation: a deterministic playout-buffer
//! model and a BOLA-style Lyapunov controller over the
//! [`DegradationRung`] ladder.
//!
//! The paper picks one quality operating point at admission; under
//! squeezed-bandwidth chaos the session engine either rides a too-high
//! rung into starvation or gets yanked down by reactive
//! re-composition. This module closes the loop the way adaptive
//! streaming players do (BOLA; the `PSMAbrAlgorithm` TLA+ spec in
//! SNIPPETS.md):
//!
//! * every session owns a [`PlayoutBuffer`] — integer microseconds of
//!   media, filled at the rung's *achieved* throughput through netsim
//!   (a parts-per-million fill rate sampled from the
//!   [`SessionWorld`](super::SessionWorld)) and drained by playback at
//!   one microsecond of media per virtual microsecond;
//! * per progress tick a [`BolaController`] scores each ladder rung by
//!   `(utility + gamma_b · buffer_headroom) / rung_cost` and decides
//!   *when* to re-compose and *which* rung to request, replacing the
//!   static rung chosen at open.
//!
//! Everything is integer fixed-point on the virtual clock: no wall
//! time, no accumulating float state, so runs are bitwise identical
//! across machines and worker counts, and the TLA+ invariants — buffer
//! bounds, switch-rate bounds, no A→B→A oscillation inside the dwell
//! window — are enforced by construction and pinned by the
//! `abr_invariants` proptest suite.

use crate::engine::DegradationRung;

/// One million: the fixed-point unit of fill rates (`fill_ppm`) and of
/// the controller's utility scale.
pub const PPM: u64 = 1_000_000;

/// How the session engine adapts mid-stream when a buffer model is
/// attached ([`SessionEngineConfig::abr`](super::SessionEngineConfig)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbrMode {
    /// No controller: the session keeps requesting the rung assigned
    /// at open on every (hard-fault) re-composition. Bandwidth
    /// shortfall never kills the plan — it drains the buffer, and the
    /// rebuffer time shows what riding a too-high rung costs.
    StaticLadder,
    /// PR 6 semantics with the buffer model attached for observation:
    /// a bandwidth squeeze breaks plan liveness and triggers a
    /// reactive re-composition continuing *down* from the current rung
    /// (never climbing back). The buffer absorbs the dark gap.
    Reactive,
    /// The BOLA controller: bandwidth shortfall drains the buffer, the
    /// per-tick score decides when to re-compose and which rung to
    /// request — down-switches before the buffer runs dry, up-switches
    /// when headroom returns.
    Bola,
}

impl AbrMode {
    /// Stable machine-readable name (used by the X17 scorecard).
    pub fn label(self) -> &'static str {
        match self {
            AbrMode::StaticLadder => "static",
            AbrMode::Reactive => "reactive",
            AbrMode::Bola => "bola",
        }
    }
}

/// Tuning for the buffer model and the BOLA controller. The defaults
/// put the rung-crossing thresholds at 1 s buffer spacings on a 4 s
/// buffer (see [`BolaController::target_rung`]).
#[derive(Debug, Clone, Copy)]
pub struct AbrConfig {
    /// Which adaptation policy runs on top of the buffer model.
    pub mode: AbrMode,
    /// Playout-buffer capacity, microseconds of media. Fill beyond it
    /// is discarded (the sender pauses), so the level never exceeds it.
    pub buffer_capacity_us: u64,
    /// Buffer credit granted when the opening plan is adopted —
    /// startup latency is modeled as pre-buffered media, so it does not
    /// count as a rebuffer stall.
    pub startup_buffer_us: u64,
    /// Weight of buffer headroom in the rung score, fixed-point: one
    /// unit of `gamma_b_ppm` adds `headroom_us` to the utility
    /// numerator per [`PPM`] of configured gamma.
    pub gamma_b_ppm: u64,
    /// Per-rung utility (quality value), indexed like
    /// [`DegradationRung::LADDER`]. Must make `utility/cost` strictly
    /// decreasing down the ladder so a full buffer prefers `Full`.
    pub rung_utility: [u64; 4],
    /// Per-rung relative bitrate cost (percent of the `Full` demand),
    /// indexed like [`DegradationRung::LADDER`].
    pub rung_cost_pct: [u64; 4],
    /// Minimum virtual time between controller switch *attempts* — the
    /// anti-oscillation dwell window. At most one switch can commit per
    /// dwell window, which is the TLA+ switch-rate bound.
    pub switch_dwell_us: u64,
    /// Cap on the buffer fill rate, parts-per-million of real time
    /// (how much faster than playback the source may push when the
    /// network has surplus headroom).
    pub max_fill_ppm: u64,
}

impl Default for AbrConfig {
    fn default() -> AbrConfig {
        AbrConfig {
            mode: AbrMode::Bola,
            buffer_capacity_us: 4_000_000,
            startup_buffer_us: 3_500_000,
            // gamma = 1 utility unit per microsecond of headroom; with
            // the utilities below the Full↔Relaxed↔Weighted↔Drop
            // crossings land at 1s / 2s / 3s of headroom (i.e. 3s / 2s
            // / 1s of buffer level) on the 4s capacity.
            gamma_b_ppm: PPM,
            rung_utility: [7_000_000, 4_600_000, 2_714_000, 1_000_000],
            rung_cost_pct: [100, 70, 50, 35],
            switch_dwell_us: 1_000_000,
            max_fill_ppm: 4 * PPM,
        }
    }
}

impl AbrConfig {
    /// The default tuning under a specific mode.
    pub fn with_mode(mode: AbrMode) -> AbrConfig {
        AbrConfig {
            mode,
            ..AbrConfig::default()
        }
    }
}

/// What one [`PlayoutBuffer::advance`] interval did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BufferAdvance {
    /// Playback time delivered, microseconds.
    pub played_us: u64,
    /// Playback time stalled (buffer dry), microseconds.
    pub stalled_us: u64,
    /// The interval crossed from playing into a stall.
    pub entered_stall: bool,
}

/// The deterministic playout buffer: integer microseconds of media on
/// the virtual clock. Invariant (TLA+ `BufferBounds`, enforced by
/// construction): `0 <= level_us <= capacity_us` after every advance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlayoutBuffer {
    level_us: u64,
    capacity_us: u64,
    stalled: bool,
}

impl PlayoutBuffer {
    /// A buffer at `level_us` (clamped to capacity).
    pub fn new(level_us: u64, capacity_us: u64) -> PlayoutBuffer {
        PlayoutBuffer {
            level_us: level_us.min(capacity_us),
            capacity_us,
            stalled: false,
        }
    }

    /// Current level, microseconds of media.
    pub fn level_us(&self) -> u64 {
        self.level_us
    }

    /// Capacity, microseconds of media.
    pub fn capacity_us(&self) -> u64 {
        self.capacity_us
    }

    /// Room left before the buffer is full, microseconds.
    pub fn headroom_us(&self) -> u64 {
        self.capacity_us.saturating_sub(self.level_us)
    }

    /// Whether playback is currently stalled (last advance ended dry).
    pub fn stalled(&self) -> bool {
        self.stalled
    }

    /// Advance `dt_us` of virtual time with media arriving at
    /// `fill_ppm` (parts-per-million of real time; [`PPM`] = exactly
    /// real-time). Playback consumes one microsecond of media per
    /// microsecond of virtual time while any is available; time with
    /// an empty buffer stalls. Fill beyond capacity is discarded.
    pub fn advance(&mut self, dt_us: u64, fill_ppm: u64) -> BufferAdvance {
        if dt_us == 0 {
            return BufferAdvance::default();
        }
        // u128 intermediate: dt up to the full u64 range times fill.
        let arrived = ((dt_us as u128 * fill_ppm as u128) / PPM as u128).min(u64::MAX as u128);
        let available = (self.level_us as u128 + arrived).min(u64::MAX as u128) as u64;
        let played = dt_us.min(available);
        let stalled = dt_us - played;
        let entered_stall = stalled > 0 && !self.stalled;
        self.stalled = stalled > 0;
        self.level_us = (available - played).min(self.capacity_us);
        BufferAdvance {
            played_us: played,
            stalled_us: stalled,
            entered_stall,
        }
    }
}

/// The per-session BOLA controller state: dwell bookkeeping and the
/// oscillation guard. The scoring itself is stateless
/// ([`BolaController::target_rung`]).
#[derive(Debug, Clone, Copy)]
pub struct BolaController {
    /// Last switch *attempt* (commit or not); gates the dwell window.
    last_attempt_us: Option<u64>,
    /// `(rung, left_at_us)` of the last committed switch's origin: the
    /// controller never returns to it within two dwell windows (the
    /// TLA+ no-A→B→A guard).
    left: Option<(DegradationRung, u64)>,
}

impl Default for BolaController {
    fn default() -> BolaController {
        BolaController::new()
    }
}

impl BolaController {
    /// A fresh controller (no dwell history).
    pub fn new() -> BolaController {
        BolaController {
            last_attempt_us: None,
            left: None,
        }
    }

    /// The rung maximizing `(utility + gamma_b · headroom) / cost` for
    /// the current buffer state — pure, no dwell gating. Ties prefer
    /// the less degraded rung.
    ///
    /// Shape: at zero headroom (full buffer) the score reduces to
    /// `utility/cost`, which the config keeps decreasing down the
    /// ladder, so `Full` wins; as headroom grows the shared
    /// `gamma_b · headroom` term is divided by smaller costs, so
    /// progressively lower rungs take over — the classic BOLA
    /// threshold structure on buffer level.
    pub fn target_rung(config: &AbrConfig, buffer: &PlayoutBuffer) -> DegradationRung {
        let headroom = buffer.headroom_us() as i128;
        let gamma = config.gamma_b_ppm as i128;
        let mut best = DegradationRung::Full;
        let mut best_num: i128 = 0;
        let mut best_cost: i128 = 1;
        for (index, rung) in DegradationRung::LADDER.iter().enumerate() {
            let cost = config.rung_cost_pct[index].max(1) as i128;
            let num = config.rung_utility[index] as i128 + (gamma * headroom) / PPM as i128;
            if index == 0 || num * best_cost > best_num * cost {
                best = *rung;
                best_num = num;
                best_cost = cost;
            }
        }
        best
    }

    /// Per-tick decision: the rung to request a re-composition for, or
    /// `None` to stay. Applies the dwell window (at most one attempt
    /// per `switch_dwell_us`) and the oscillation guard (no return to
    /// the rung a committed switch left within `2 × switch_dwell_us`).
    pub fn decide(
        &mut self,
        now_us: u64,
        current: DegradationRung,
        config: &AbrConfig,
        buffer: &PlayoutBuffer,
    ) -> Option<DegradationRung> {
        if let Some(last) = self.last_attempt_us {
            if now_us.saturating_sub(last) < config.switch_dwell_us {
                return None;
            }
        }
        let target = Self::target_rung(config, buffer);
        if target == current {
            return None;
        }
        if let Some((left_rung, left_at)) = self.left {
            if target == left_rung
                && now_us.saturating_sub(left_at) < config.switch_dwell_us.saturating_mul(2)
            {
                return None;
            }
        }
        self.last_attempt_us = Some(now_us);
        Some(target)
    }

    /// Record a committed switch away from `from` at `now_us` (feeds
    /// the oscillation guard).
    pub fn committed(&mut self, now_us: u64, from: DegradationRung) {
        self.left = Some((from, now_us));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_never_exceeds_capacity_or_goes_negative() {
        let mut buffer = PlayoutBuffer::new(1_000_000, 4_000_000);
        // Massive surplus fill: level caps at capacity.
        buffer.advance(10_000_000, 8 * PPM);
        assert_eq!(buffer.level_us(), 4_000_000);
        // Starvation: level floors at zero, the shortfall stalls.
        let adv = buffer.advance(10_000_000, 0);
        assert_eq!(buffer.level_us(), 0);
        assert_eq!(adv.played_us, 4_000_000);
        assert_eq!(adv.stalled_us, 6_000_000);
        assert!(adv.entered_stall);
        // Staying dry is not a second stall entry.
        let again = buffer.advance(1_000_000, 0);
        assert!(!again.entered_stall);
        assert_eq!(again.stalled_us, 1_000_000);
    }

    #[test]
    fn realtime_fill_holds_the_level() {
        let mut buffer = PlayoutBuffer::new(2_000_000, 4_000_000);
        let adv = buffer.advance(3_000_000, PPM);
        assert_eq!(buffer.level_us(), 2_000_000, "fill == drain");
        assert_eq!(adv.played_us, 3_000_000);
        assert_eq!(adv.stalled_us, 0);
    }

    #[test]
    fn default_scoring_crossings_land_at_one_second_spacings() {
        let config = AbrConfig::default();
        let at = |level_us: u64| {
            BolaController::target_rung(&config, &PlayoutBuffer::new(level_us, 4_000_000))
        };
        assert_eq!(at(4_000_000), DegradationRung::Full);
        assert_eq!(at(3_200_000), DegradationRung::Full);
        assert_eq!(at(2_500_000), DegradationRung::RelaxedFloor);
        assert_eq!(at(1_500_000), DegradationRung::WeightedCombiner);
        assert_eq!(at(500_000), DegradationRung::DropSecondary);
        assert_eq!(at(0), DegradationRung::DropSecondary);
    }

    #[test]
    fn dwell_window_gates_attempts() {
        let config = AbrConfig::default();
        let mut controller = BolaController::new();
        let empty = PlayoutBuffer::new(0, 4_000_000);
        assert_eq!(
            controller.decide(0, DegradationRung::Full, &config, &empty),
            Some(DegradationRung::DropSecondary)
        );
        // Within the dwell window nothing is even attempted.
        assert_eq!(
            controller.decide(500_000, DegradationRung::Full, &config, &empty),
            None
        );
        assert_eq!(
            controller.decide(1_000_000, DegradationRung::Full, &config, &empty),
            Some(DegradationRung::DropSecondary)
        );
    }

    #[test]
    fn oscillation_guard_blocks_a_b_a_inside_two_dwells() {
        let config = AbrConfig::default();
        let mut controller = BolaController::new();
        let full = PlayoutBuffer::new(4_000_000, 4_000_000);
        let empty = PlayoutBuffer::new(0, 4_000_000);
        // Committed switch Full → Drop at t=0.
        assert_eq!(
            controller.decide(0, DegradationRung::Full, &config, &empty),
            Some(DegradationRung::DropSecondary)
        );
        controller.committed(0, DegradationRung::Full);
        // Buffer recovered: the score wants Full again, but returning
        // to the rung we just left is blocked for two dwell windows.
        assert_eq!(
            controller.decide(1_000_000, DegradationRung::DropSecondary, &config, &full),
            None
        );
        assert_eq!(
            controller.decide(2_000_000, DegradationRung::DropSecondary, &config, &full),
            Some(DegradationRung::Full)
        );
    }
}
