//! # qosc-core
//!
//! The primary contribution of *"A QoS-based Service Composition for
//! Content Adaptation"* (El-Khatib, Bochmann & El-Saddik, ICDE 2007):
//!
//! * [`graph`] — construction of the directed adaptation graph from the
//!   content profile (sender outputs), device profile (receiver
//!   decoders), the service registry (intermediary services) and the
//!   network (edge bandwidth/price) — Sections 4.2 and 4.3 — plus
//!   reachability pruning and Graphviz export,
//! * [`select`] — the QoS selection algorithm of Section 4.4 / Figure 4:
//!   a greedy label-setting search that grows a set `VT` of considered
//!   services, keeps a candidate set `CS`, and at each round settles the
//!   candidate whose constrained-optimal configuration yields the highest
//!   user satisfaction. It emits a full round-by-round
//!   [`SelectionTrace`](select::SelectionTrace) whose rows are exactly
//!   the columns of the paper's Table 1,
//! * [`baseline`] — comparison algorithms: the exhaustive exact optimum
//!   (ground truth for the Figure-5 optimality argument), fewest-hops,
//!   widest-path, cheapest-path and a random walk,
//! * [`Composer`] — the facade that takes profiles + registry + network
//!   and returns an executable [`AdaptationPlan`].
//!
//! ## Semantics pinned down
//!
//! The paper leaves a few operational details open; we fix them as
//! follows (and the Table-1 reproduction validates the fixes):
//!
//! * **States, not bare vertices.** A trans-coding service with several
//!   output formats is searched as one state per `(vertex, output
//!   format)` pair, so committing to one output format for the chain
//!   cannot hide a better chain through another output format of the
//!   same service. For single-output services (the paper's example) this
//!   coincides with the paper's per-service sets.
//! * **Equa. 2.** When a candidate is evaluated via an edge carrying
//!   format `f`, the optimizer maximizes satisfaction over the
//!   candidate's output domain capped by the parent's delivered
//!   parameters, subject to `bitrate_f(x) ≤ available(edge)` and the
//!   remaining budget.
//! * **Quality monotonicity.** A child's satisfaction label is clamped
//!   to its parent's ("each trans-coding service can only reduce the
//!   quality", Section 4.4) — automatic when media axes persist, enforced
//!   explicitly across kind-changing conversions. This is what makes the
//!   greedy search exact (Figure 5); the property is verified against
//!   the exhaustive baseline by property test.

pub mod admission;
pub mod baseline;
pub mod bundle;
pub mod cache;
pub mod composer;
pub mod engine;
pub mod graph;
pub mod plan;
pub mod select;
pub mod session;
pub mod sharded_compose;

pub use admission::{
    plan_admission, AdmissionConfig, AdmissionDecision, AdmissionPlan, AdmissionQueue,
    AdmissionStats, ArrivalMeta, PriorityClass, ShedReason,
};
pub use bundle::{compose_bundle, BundleComposition, BundleStream};
pub use cache::{CacheStats, CompositionCache, ShardedCompositionCache};
pub use composer::{Composer, Composition, StoredComposition};
pub use engine::{
    degrade_profiles, serve_batch, serve_batch_resilient, serve_batch_resilient_traced,
    serve_batch_traced, serve_batch_with_admission, serve_batch_with_admission_traced,
    AdmittedBatch, BatchCounters, CompositionRequest, DegradationRung, EngineConfig,
    RequestOutcome, ResilientBatch, ResilientEngineConfig, RetryPolicy,
};
pub use graph::{
    build_filtered, graphs_equivalent, AdaptationGraph, BuildInput, Edge, EdgeId, GraphScope,
    GraphStore, GraphStoreStats, Vertex, VertexId, VertexKind,
};
pub use plan::{AdaptationPlan, PlanStep};
pub use select::{
    arena_reuse_total, select_chain, select_chain_with_penalties, SelectOptions, SelectedChain,
    SelectionOutcome, SelectionTrace, TieBreak,
};
pub use session::{
    run_sessions, serve_batch_resilient_sessions, serve_batch_resilient_sessions_traced,
    serve_batch_sessions, serve_batch_sessions_traced, serve_batch_with_admission_sessions,
    serve_batch_with_admission_sessions_traced, AbrConfig, AbrMode, BolaController, BufferAdvance,
    CloseReason, PlayoutBuffer, SessionCounters, SessionEngineConfig, SessionOutcome,
    SessionRequest, SessionWorld, SessionsReport, SlaConfig, SlaMode, StaticWorld,
};
pub use sharded_compose::{ShardedComposer, TwoLevelComposition};

/// Errors produced by this crate.
#[derive(Debug)]
pub enum CoreError {
    /// Propagated media/format error.
    Media(qosc_media::MediaError),
    /// Propagated profile error.
    Profile(qosc_profiles::ProfileError),
    /// Propagated network error.
    Net(qosc_netsim::NetError),
    /// Propagated service error.
    Service(qosc_services::ServiceError),
    /// A vertex or edge id was used with the wrong graph.
    StaleId(String),
    /// The sender offers no variants or the receiver no decoders.
    DegenerateEndpoints(String),
    /// The exhaustive baseline exceeded its exploration budget.
    SearchBudgetExceeded {
        /// Paths explored before giving up.
        explored: usize,
    },
    /// A composition worker panicked while serving one request; the
    /// payload is the rendered panic message. Only that request fails.
    WorkerPanic(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Media(e) => write!(f, "media error: {e}"),
            CoreError::Profile(e) => write!(f, "profile error: {e}"),
            CoreError::Net(e) => write!(f, "network error: {e}"),
            CoreError::Service(e) => write!(f, "service error: {e}"),
            CoreError::StaleId(detail) => write!(f, "stale id: {detail}"),
            CoreError::DegenerateEndpoints(detail) => {
                write!(f, "degenerate endpoints: {detail}")
            }
            CoreError::SearchBudgetExceeded { explored } => {
                write!(
                    f,
                    "exhaustive search budget exceeded after {explored} paths"
                )
            }
            CoreError::WorkerPanic(msg) => write!(f, "worker panic: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Media(e) => Some(e),
            CoreError::Profile(e) => Some(e),
            CoreError::Net(e) => Some(e),
            CoreError::Service(e) => Some(e),
            _ => None,
        }
    }
}

impl From<qosc_media::MediaError> for CoreError {
    fn from(e: qosc_media::MediaError) -> CoreError {
        CoreError::Media(e)
    }
}
impl From<qosc_profiles::ProfileError> for CoreError {
    fn from(e: qosc_profiles::ProfileError) -> CoreError {
        CoreError::Profile(e)
    }
}
impl From<qosc_netsim::NetError> for CoreError {
    fn from(e: qosc_netsim::NetError) -> CoreError {
        CoreError::Net(e)
    }
}
impl From<qosc_services::ServiceError> for CoreError {
    fn from(e: qosc_services::ServiceError) -> CoreError {
        CoreError::Service(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
