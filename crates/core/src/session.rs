//! Steady-state session serving on the virtual clock.
//!
//! The paper composes one adaptation chain per request; the repo's
//! north star — sustained streaming traffic — is *overlapping
//! long-lived sessions* whose chains must survive mid-stream churn.
//! This module turns the batch-shaped engine into a continuous
//! discrete-event serving loop:
//!
//! * a session **opens** at its virtual arrival, flows through the
//!   [`AdmissionQueue`](crate::admission::AdmissionQueue) (same
//!   decisions as [`plan_admission`](crate::plan_admission), made
//!   incrementally), and composes its chain through the shared
//!   [`GraphStore`](crate::GraphStore) at the rung brown-out assigned,
//! * while **active** it accrues session-time on its current
//!   [`DegradationRung`], ticking a progress epoch every
//!   [`tick_us`](SessionEngineConfig::tick_us),
//! * **world events** (chaos faults, lease expiry — anything the
//!   [`SessionWorld`] applies) that invalidate a live plan trigger a
//!   **re-composition**: one more pass through admission and the
//!   composer, continuing from the session's current rung,
//! * the session **closes** when its holding time elapses
//!   (`completed`), when its open never produced a plan
//!   (`failed_open`), when a re-composition finds nothing (`starved`),
//!   or when it exhausts
//!   [`max_recompositions`](SessionEngineConfig::max_recompositions)
//!   (`gave_up`).
//!
//! Everything runs on the deterministic
//! [`EventQueue`](qosc_netsim::EventQueue): same inputs → bitwise
//! identical outcomes on any machine at any worker count (compositions
//! of one virtual instant fan out across workers, but every result is
//! a pure function of the request and the world snapshot).
//!
//! ## Batch adapters
//!
//! [`serve_batch_sessions`], [`serve_batch_resilient_sessions`] and
//! [`serve_batch_with_admission_sessions`] re-express the existing
//! batch entry points as degenerate zero-duration sessions and produce
//! **bitwise identical** plans, outcomes, counters and telemetry logs
//! (the `batch_adapter_equivalence` integration test pins this), so
//! every committed scorecard is reproducible through the session
//! engine path.
//!
//! Naming note: `qosc_pipeline::session` replays one *frame-level*
//! streaming session through an already-composed chain; this module is
//! the *serving* loop that owns many concurrent session lifecycles and
//! decides when chains are (re-)composed.

pub mod abr;
pub mod event_loop;

use crate::admission::{AdmissionConfig, AdmissionStats, ArrivalMeta, PriorityClass, ShedReason};
use crate::cache::ShardedCompositionCache;
use crate::composer::Composer;
use crate::engine::{
    unserved, AdmittedBatch, CompositionRequest, DegradationRung, EngineConfig, RequestOutcome,
    ResilientBatch, ResilientEngineConfig,
};
use crate::plan::AdaptationPlan;
use crate::AdmissionPlan;
use qosc_media::FormatRegistry;
use qosc_netsim::Network;
use qosc_services::{QosEstimatorConfig, QosObservation, ServiceId, ServiceRegistry};
use qosc_telemetry::{MetricsRegistry, TelemetrySink};

pub use abr::{AbrConfig, AbrMode, BolaController, BufferAdvance, PlayoutBuffer};
pub use event_loop::run_sessions;

/// One long-lived session offered to the engine.
#[derive(Debug, Clone)]
pub struct SessionRequest {
    /// What to compose when the session opens (and re-compose
    /// mid-stream).
    pub request: CompositionRequest,
    /// Virtual arrival metadata — arrival time, priority class,
    /// composition cost and deadline budget for the admission queue.
    pub arrival: ArrivalMeta,
    /// Holding time: virtual microseconds the session stays active
    /// after its chain is first served. `0` is a degenerate
    /// batch-shaped session that closes at open.
    pub hold_us: u64,
    /// Bitrate the session demands at full quality, bits per second.
    /// Feeds [`SessionWorld::delivery_ppm`] as a floor on the final-hop
    /// required rate; `0` derives the demand from the plan alone.
    pub demand_bps: u64,
}

/// Why a session closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CloseReason {
    /// The holding time elapsed.
    Completed,
    /// The opening composition produced no plan at any rung.
    FailedOpen,
    /// The session exhausted
    /// [`max_recompositions`](SessionEngineConfig::max_recompositions).
    GaveUp,
    /// A mid-stream re-composition found no plan (or the admission
    /// queue refused the re-composition offer).
    Starved,
}

impl CloseReason {
    /// Stable machine-readable name.
    pub fn label(self) -> &'static str {
        match self {
            CloseReason::Completed => "completed",
            CloseReason::FailedOpen => "failed_open",
            CloseReason::GaveUp => "gave_up",
            CloseReason::Starved => "starved",
        }
    }
}

impl std::fmt::Display for CloseReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The world a session engine runs against: where compositions come
/// from, which scheduled events mutate it, and whether a served plan is
/// still viable after a mutation.
///
/// The engine never names concrete fault types — `qosc-pipeline`'s
/// `ChaosWorld` adapts chaos schedules and discovery churn onto this
/// trait without `qosc-core` depending on the pipeline crate.
pub trait SessionWorld {
    /// A composer over the world's current state.
    fn composer(&self) -> Composer<'_>;

    /// Whether `plan` still works in the current world (hosts up, links
    /// carrying the plan's rates, services still advertised). The
    /// default world never breaks a plan.
    fn plan_alive(&self, plan: &AdaptationPlan) -> bool {
        let _ = plan;
        true
    }

    /// Hard liveness: whether `plan`'s hosts are up, its services still
    /// advertised and a route still exists — ignoring *bandwidth*.
    /// Buffer-aware modes use this instead of [`plan_alive`](Self::plan_alive):
    /// a squeezed link degrades delivery (the buffer drains) rather
    /// than killing the plan outright. Defaults to `plan_alive`, so
    /// worlds without a bandwidth model behave unchanged.
    fn plan_routable(&self, plan: &AdaptationPlan) -> bool {
        self.plan_alive(plan)
    }

    /// Achieved delivery rate for `plan` under current network
    /// conditions, parts-per-million of the plan's required rate
    /// ([`abr::PPM`] = keeping up exactly; above = surplus headroom
    /// that can refill a playout buffer; below = the buffer drains).
    /// `demand_bps` floors the final-hop required rate (0 = use the
    /// plan's own edge rates). The default world always keeps up.
    fn delivery_ppm(&self, plan: &AdaptationPlan, demand_bps: u64) -> u64 {
        let _ = (plan, demand_bps);
        abr::PPM
    }

    /// Observed per-service QoS for a *currently advertised* service,
    /// normalised against what the service advertises
    /// ([`qosc_services::QOS_PPM`] on both axes = delivering exactly as
    /// advertised). Grey faults — a service that is alive, advertised
    /// and routable but quietly under-delivering — surface here and
    /// nowhere else. The default world has no observation channel.
    fn observe_service(&self, service: ServiceId) -> Option<QosObservation> {
        let _ = service;
        None
    }

    /// End-to-end observed processing latency for `plan`'s service
    /// stages, virtual microseconds. Lag-style grey faults inflate this
    /// while [`delivery_ppm`](Self::delivery_ppm) stays nominal. The
    /// default world processes instantly.
    fn observed_latency_us(&self, plan: &AdaptationPlan) -> u64 {
        let _ = plan;
        0
    }

    /// Soft-demote `service`: keep it advertised but penalise it in
    /// selection with the observed throughput ratio (`observed_ppm`,
    /// [`qosc_services::QOS_PPM`] = as advertised). Returns whether the
    /// demotion took effect. The default world has no registry to
    /// demote in.
    fn probate_service(&mut self, service: ServiceId, observed_ppm: u64, now_us: u64) -> bool {
        let _ = (service, observed_ppm, now_us);
        false
    }

    /// Report a healthy observation for a probated `service` (half-open
    /// probing). Returns `true` when this probe *cleared* the
    /// probation. The default world never probates, so never clears.
    fn probe_service(&mut self, service: ServiceId, now_us: u64) -> bool {
        let _ = (service, now_us);
        false
    }

    /// Report a hard failure against `service` (plan died with this
    /// service in it) so the world's circuit breaker can count it.
    /// No-op on worlds without a breaker.
    fn report_service_failure(&mut self, service: ServiceId, now_us: u64) {
        let _ = (service, now_us);
    }

    /// Virtual times of the world's scheduled mutations, indexed by
    /// event id. At equal timestamps world events apply before any
    /// session event (the engine schedules them first).
    fn world_event_times(&self) -> &[u64] {
        &[]
    }

    /// Apply world event `index` (same indexing as
    /// [`world_event_times`](Self::world_event_times)).
    fn apply_world_event(&mut self, index: usize) {
        let _ = index;
    }

    /// Register (or re-pin, after a rung switch or re-composition) the
    /// session's bandwidth demand with the world's broker, pinned to
    /// `plan`'s route. `weight` is the priority-class weight. Worlds
    /// without a broker ignore this.
    fn register_session_flow(
        &mut self,
        session: u64,
        plan: &AdaptationPlan,
        demand_bps: u64,
        weight: u32,
    ) {
        let _ = (session, plan, demand_bps, weight);
    }

    /// Remove the session's flow on close; the broker redistributes the
    /// released bandwidth preemption-free. No-op without a broker.
    fn deregister_session_flow(&mut self, session: u64) {
        let _ = session;
    }

    /// Bumps whenever the broker's published grants change. The event
    /// loop watches this to re-evaluate ladder rungs (not re-compose)
    /// after a reallocation. Brokerless worlds stay at 0, so the watch
    /// never fires and their event sequence is untouched.
    fn grant_epoch(&self) -> u64 {
        0
    }

    /// Per-session delivery rate: like
    /// [`delivery_ppm`](Self::delivery_ppm) but allowed to consult the
    /// session's brokered grant instead of raw worst-hop headroom.
    /// `plan_gen` identifies the adopted plan instance for memoization.
    /// Defaults to the shared-fate `delivery_ppm`, so brokerless worlds
    /// behave bit-identically.
    fn session_delivery_ppm(
        &self,
        session: u64,
        plan_gen: u32,
        plan: &AdaptationPlan,
        demand_bps: u64,
    ) -> u64 {
        let _ = (session, plan_gen);
        self.delivery_ppm(plan, demand_bps)
    }
}

/// A world that never changes: composition state borrowed from a
/// scenario, no scheduled events, plans never break. The batch adapters
/// run on this.
#[derive(Debug, Clone, Copy)]
pub struct StaticWorld<'a> {
    /// Format registry.
    pub formats: &'a FormatRegistry,
    /// Service registry.
    pub services: &'a ServiceRegistry,
    /// Network.
    pub network: &'a Network,
}

impl SessionWorld for StaticWorld<'_> {
    fn composer(&self) -> Composer<'_> {
        Composer {
            formats: self.formats,
            services: self.services,
            network: self.network,
        }
    }
}

/// How the engine reacts to service-level degradation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlaMode {
    /// Classic binary circuit breaker: only *hard* failures (a plan
    /// dying with a service in it) are reported to the world's
    /// breaker. Grey faults — a service that never hard-fails but
    /// quietly under-delivers — are invisible in this mode; it exists
    /// as the baseline the drift-aware mode is measured against.
    Binary,
    /// Drift-aware detection: observed-QoS estimators per plan
    /// service, an SLA watchdog flagging sustained drift below
    /// `advertised × tolerance`, probation on violation, and proactive
    /// make-before-break evasion off the sick chain.
    DriftAware,
}

/// Grey-failure detection tuning ([`SessionEngineConfig::sla`]).
#[derive(Debug, Clone, Copy)]
pub struct SlaConfig {
    /// Detection mode.
    pub mode: SlaMode,
    /// Estimator/watchdog tuning (EWMA shift, quantile window,
    /// tolerances, dwell).
    pub estimator: QosEstimatorConfig,
    /// Minimum virtual microseconds between SLA-triggered evasions per
    /// session — a proactive re-composition dwell, mirroring the ABR
    /// switch dwell, so one sustained sag cannot thrash the composer.
    pub evade_dwell_us: u64,
}

impl Default for SlaConfig {
    fn default() -> SlaConfig {
        SlaConfig {
            mode: SlaMode::DriftAware,
            estimator: QosEstimatorConfig::default(),
            evade_dwell_us: 2_000_000,
        }
    }
}

/// Tuning for the session engine.
#[derive(Debug, Clone, Copy)]
pub struct SessionEngineConfig {
    /// Composition tuning: workers, options, retry, ladder, seed. The
    /// embedded `admission` field is ignored here — see
    /// [`admission`](Self::admission).
    pub resilient: ResilientEngineConfig,
    /// Admission policy for session opens and re-compositions. `None`
    /// admits everything at its arrival instant (the
    /// [`serve_batch`](crate::serve_batch) /
    /// [`serve_batch_resilient`](crate::serve_batch_resilient)
    /// behaviour).
    pub admission: Option<AdmissionConfig>,
    /// Progress-epoch period, virtual microseconds (`0` disables
    /// ticks). Each tick re-checks plan liveness and, with session
    /// spans on, opens an `epoch` child span.
    pub tick_us: u64,
    /// Re-compositions a session may consume before it closes as
    /// [`CloseReason::GaveUp`].
    pub max_recompositions: u32,
    /// Stop processing events after this virtual time; sessions still
    /// open are counted as
    /// [`active_at_end`](SessionCounters::active_at_end). `None` runs
    /// to quiescence.
    pub horizon_us: Option<u64>,
    /// Emit session-scoped telemetry (`session_opened`/`session_closed`
    /// events, `epoch`/`recompose` child spans). The batch adapters
    /// turn this off so traces stay bitwise identical to the
    /// pre-session paths.
    pub session_spans: bool,
    /// Buffer-aware mid-stream adaptation ([`AbrConfig`]). `None` runs
    /// the exact pre-buffer code paths — no buffer state, no extra
    /// accruals — so existing runs stay bitwise identical.
    pub abr: Option<AbrConfig>,
    /// Grey-failure detection ([`SlaConfig`]). `None` runs the exact
    /// pre-SLA code paths — no estimators, no watchdog, no probation,
    /// no failure reporting — so existing runs stay bitwise identical.
    pub sla: Option<SlaConfig>,
}

impl Default for SessionEngineConfig {
    fn default() -> SessionEngineConfig {
        SessionEngineConfig {
            resilient: ResilientEngineConfig::default(),
            admission: Some(AdmissionConfig::default()),
            tick_us: 250_000,
            max_recompositions: 8,
            horizon_us: None,
            session_spans: true,
            abr: None,
            sla: None,
        }
    }
}

/// What happened to one session.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SessionOutcome {
    /// The open event was processed (false only when the arrival lay
    /// beyond the horizon).
    pub opened: bool,
    /// Virtual open (arrival) time.
    pub opened_us: u64,
    /// Virtual time the first plan was served (`None` when the session
    /// never started streaming).
    pub started_us: Option<u64>,
    /// Virtual close time (`None` while shed, pending, or active at
    /// the end of the run).
    pub closed_us: Option<u64>,
    /// Why it closed (`None` when shed or still open at the end).
    pub close: Option<CloseReason>,
    /// The admission queue refused the session's open.
    pub shed: Option<ShedReason>,
    /// Mid-stream re-compositions consumed (triggers, whether or not
    /// the re-composition then served).
    pub recompositions: u32,
    /// Progress epochs ticked while active.
    pub epochs: u32,
    /// Composition attempts across open and all re-compositions.
    pub attempts: u32,
    /// Rung serving the session when it ended (`None` when it never
    /// served).
    pub final_rung: Option<DegradationRung>,
    /// `(virtual_time_us, rung)` at open and at every re-composition
    /// that served, in order.
    pub rung_history: Vec<(u64, DegradationRung)>,
    /// Active microseconds with a live plan.
    pub lit_us: u64,
    /// Active microseconds dark (plan invalidated, re-composition not
    /// yet served).
    pub dark_us: u64,
    /// Time-weighted satisfaction integral, `∫ satisfaction dt` in
    /// microsecond units (dark time integrates 0).
    pub satisfaction_us: f64,
    /// Active microseconds by serving rung, indexed by
    /// [`DegradationRung::LADDER`].
    pub rung_us: [u64; 4],
    /// Playback time stalled on an empty buffer, microseconds (0
    /// without a buffer model).
    pub rebuffer_us: u64,
    /// Distinct stall entries (transitions from playing to stalled).
    pub rebuffer_events: u32,
    /// Controller-committed mid-stream rung switches (BOLA mode only;
    /// reactive re-compositions and intra-composition ladder descents
    /// are counted by `recompositions`/`rung_history` as before).
    pub switches: u32,
    /// Highest buffer level observed, microseconds of playout (0
    /// without a buffer model).
    pub buffer_peak_us: u64,
    /// SLA violations the watchdog flagged against this session's plan
    /// services (0 without SLA detection).
    pub sla_violations: u32,
    /// Proactive make-before-break re-compositions committed to evade
    /// an SLA-violating chain (0 without SLA detection).
    pub evasions: u32,
    /// Broker reallocations that changed this session's observed fill
    /// rate mid-stream (0 without a bandwidth broker).
    pub grant_updates: u32,
}

impl SessionOutcome {
    /// Total active (streaming) time, microseconds.
    pub fn active_us(&self) -> u64 {
        self.lit_us.saturating_add(self.dark_us)
    }

    /// Fraction of active time with a live plan (1.0 for a session that
    /// never went dark; 0.0 for one that never streamed).
    pub fn availability(&self) -> f64 {
        let total = self.active_us();
        if total == 0 {
            return 0.0;
        }
        self.lit_us as f64 / total as f64
    }

    /// Time-weighted mean satisfaction over active time (dark time
    /// counts as zero).
    pub fn mean_satisfaction(&self) -> f64 {
        let total = self.active_us();
        if total == 0 {
            return 0.0;
        }
        self.satisfaction_us / total as f64
    }
}

/// Partition of every session the engine processed. `opened` splits
/// exactly into closes + sheds + still-active:
/// `opened == completed + failed_open + gave_up + starved + shed +
/// active_at_end` (the `session_lifecycle` property suite pins this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionCounters {
    /// Sessions handed to the engine.
    pub offered: usize,
    /// Open events processed (arrival within the horizon).
    pub opened: usize,
    /// Closed: holding time elapsed.
    pub completed: usize,
    /// Closed: open composed nothing.
    pub failed_open: usize,
    /// Closed: re-composition budget exhausted.
    pub gave_up: usize,
    /// Closed: a re-composition found nothing.
    pub starved: usize,
    /// Refused by admission at open.
    pub shed: usize,
    /// Open (active, re-composing, or still queued in admission) when
    /// the run ended.
    pub active_at_end: usize,
}

impl SessionCounters {
    /// All closes together.
    pub fn closed(&self) -> usize {
        self.completed + self.failed_open + self.gave_up + self.starved
    }

    /// Whether the partition is exact.
    pub fn partitions_exactly(&self) -> bool {
        self.opened == self.closed() + self.shed + self.active_at_end
    }
}

/// The result of one session-engine run.
#[derive(Debug, Clone)]
pub struct SessionsReport {
    /// One outcome per offered session, in offer order.
    pub outcomes: Vec<SessionOutcome>,
    /// The lifecycle partition.
    pub counters: SessionCounters,
    /// Admission aggregates (zeros when admission was `None`).
    pub admission: AdmissionStats,
    /// Virtual end of the run: the horizon, or the last event time.
    pub end_us: u64,
}

impl SessionsReport {
    /// Total re-compositions triggered across all sessions.
    pub fn recompositions(&self) -> u64 {
        self.outcomes.iter().map(|o| o.recompositions as u64).sum()
    }

    /// Active microseconds by serving rung, summed over sessions.
    pub fn session_us_by_rung(&self) -> [u64; 4] {
        let mut sums = [0u64; 4];
        for outcome in &self.outcomes {
            for (sum, us) in sums.iter_mut().zip(outcome.rung_us) {
                *sum = sum.saturating_add(us);
            }
        }
        sums
    }

    /// Steady-state availability: lit session-time over total active
    /// session-time.
    pub fn availability(&self) -> f64 {
        let lit: u64 = self.outcomes.iter().map(|o| o.lit_us).sum();
        let total: u64 = self.outcomes.iter().map(|o| o.active_us()).sum();
        if total == 0 {
            return 1.0;
        }
        lit as f64 / total as f64
    }

    /// Total stalled playback time across sessions, microseconds.
    pub fn rebuffer_us(&self) -> u64 {
        self.outcomes.iter().map(|o| o.rebuffer_us).sum()
    }

    /// Total controller-committed rung switches across sessions.
    pub fn switches(&self) -> u64 {
        self.outcomes.iter().map(|o| o.switches as u64).sum()
    }

    /// Total SLA violations flagged across sessions.
    pub fn sla_violations(&self) -> u64 {
        self.outcomes.iter().map(|o| o.sla_violations as u64).sum()
    }

    /// Total SLA-triggered evasions committed across sessions.
    pub fn evasions(&self) -> u64 {
        self.outcomes.iter().map(|o| o.evasions as u64).sum()
    }

    /// Stalled time over total playback time (stalled + active), the
    /// X17 headline. 0.0 when nothing streamed.
    pub fn rebuffer_ratio(&self) -> f64 {
        let stalled = self.rebuffer_us();
        let active: u64 = self.outcomes.iter().map(|o| o.active_us()).sum();
        let total = stalled + active;
        if total == 0 {
            return 0.0;
        }
        stalled as f64 / total as f64
    }

    /// Time-weighted mean ladder index over served session-time
    /// (0.0 = everything on `Full`, 3.0 = everything on
    /// `DropSecondary`); 0.0 when nothing served.
    pub fn mean_rung_index(&self) -> f64 {
        let by_rung = self.session_us_by_rung();
        let total: u64 = by_rung.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = by_rung
            .iter()
            .enumerate()
            .map(|(i, us)| i as u64 * us)
            .sum();
        weighted as f64 / total as f64
    }

    /// Re-compositions per active session-hour (0 when nothing
    /// streamed).
    pub fn recompositions_per_session_hour(&self) -> f64 {
        let active_us: u64 = self.outcomes.iter().map(|o| o.active_us()).sum();
        if active_us == 0 {
            return 0.0;
        }
        self.recompositions() as f64 * 3.6e9 / active_us as f64
    }

    /// Mirror the session gauges into `registry`:
    /// `qosc_sessions_*_total` counters for the lifecycle partition,
    /// the `qosc_active_sessions` gauge, the
    /// `qosc_session_recompositions_total` counter and
    /// `qosc_session_seconds_total{rung="…"}` per-rung serving time.
    pub fn record_metrics(&self, registry: &MetricsRegistry) {
        let c = &self.counters;
        for (name, value) in [
            ("qosc_sessions_offered_total", c.offered),
            ("qosc_sessions_opened_total", c.opened),
            ("qosc_sessions_completed_total", c.completed),
            ("qosc_sessions_failed_open_total", c.failed_open),
            ("qosc_sessions_gave_up_total", c.gave_up),
            ("qosc_sessions_starved_total", c.starved),
            ("qosc_sessions_shed_total", c.shed),
        ] {
            registry.counter(name).store(value as u64);
        }
        registry
            .gauge("qosc_active_sessions")
            .set(c.active_at_end as i64);
        registry
            .counter("qosc_session_recompositions_total")
            .store(self.recompositions());
        registry
            .counter("qosc_session_rebuffer_seconds_total")
            .store(self.rebuffer_us() / 1_000_000);
        registry
            .counter("qosc_session_rung_switches_total")
            .store(self.switches());
        for (rung, us) in DegradationRung::LADDER
            .iter()
            .zip(self.session_us_by_rung())
        {
            registry
                .counter(&format!(
                    "qosc_session_seconds_total{{rung=\"{}\"}}",
                    rung.label()
                ))
                .store(us / 1_000_000);
        }
    }
}

// ---------------------------------------------------------------------
// Batch adapters: serve_batch* as degenerate zero-duration sessions
// ---------------------------------------------------------------------

fn degenerate(request: &CompositionRequest, arrival: ArrivalMeta) -> SessionRequest {
    SessionRequest {
        request: request.clone(),
        arrival,
        hold_us: 0,
        demand_bps: 0,
    }
}

fn zero_arrival() -> ArrivalMeta {
    ArrivalMeta {
        arrival_us: 0,
        priority: PriorityClass::Standard,
        service_cost_us: 1,
        deadline_budget_us: None,
    }
}

fn batch_config(
    resilient: ResilientEngineConfig,
    admission: Option<AdmissionConfig>,
) -> SessionEngineConfig {
    SessionEngineConfig {
        resilient,
        admission,
        tick_us: 0,
        max_recompositions: 0,
        horizon_us: None,
        session_spans: false,
        abr: None,
        sla: None,
    }
}

/// [`serve_batch`](crate::serve_batch) re-expressed through the session
/// engine: every request is a zero-duration session opening at virtual
/// time 0 with no admission. Results are bitwise identical to
/// `serve_batch`, including telemetry.
pub fn serve_batch_sessions(
    composer: &Composer<'_>,
    cache: &ShardedCompositionCache,
    requests: &[CompositionRequest],
    config: &EngineConfig,
) -> Vec<crate::Result<Option<AdaptationPlan>>> {
    serve_batch_sessions_traced(composer, cache, requests, config, &qosc_telemetry::NoopSink)
}

/// [`serve_batch_traced`](crate::serve_batch_traced) through the
/// session engine.
pub fn serve_batch_sessions_traced<S: TelemetrySink>(
    composer: &Composer<'_>,
    cache: &ShardedCompositionCache,
    requests: &[CompositionRequest],
    config: &EngineConfig,
    sink: &S,
) -> Vec<crate::Result<Option<AdaptationPlan>>> {
    let mut world = StaticWorld {
        formats: composer.formats,
        services: composer.services,
        network: composer.network,
    };
    let sessions: Vec<SessionRequest> = requests
        .iter()
        .map(|r| degenerate(r, zero_arrival()))
        .collect();
    let resilient = ResilientEngineConfig {
        workers: config.workers,
        options: config.options,
        ..ResilientEngineConfig::default()
    };
    let run = event_loop::run(
        &mut world,
        &sessions,
        &batch_config(resilient, None),
        event_loop::Backend::Cached {
            cache,
            options: config.options,
        },
        sink,
    );
    run.batch_results
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| {
                Err(crate::CoreError::WorkerPanic(
                    "worker thread lost before reporting".to_string(),
                ))
            })
        })
        .collect()
}

/// [`serve_batch_resilient`](crate::serve_batch_resilient) re-expressed
/// through the session engine; outcomes, counters and telemetry are
/// bitwise identical.
pub fn serve_batch_resilient_sessions(
    composer: &Composer<'_>,
    requests: &[CompositionRequest],
    config: &ResilientEngineConfig,
) -> ResilientBatch {
    serve_batch_resilient_sessions_traced(composer, requests, config, &qosc_telemetry::NoopSink)
}

/// [`serve_batch_resilient_traced`](crate::serve_batch_resilient_traced)
/// through the session engine.
pub fn serve_batch_resilient_sessions_traced<S: TelemetrySink>(
    composer: &Composer<'_>,
    requests: &[CompositionRequest],
    config: &ResilientEngineConfig,
    sink: &S,
) -> ResilientBatch {
    let mut world = StaticWorld {
        formats: composer.formats,
        services: composer.services,
        network: composer.network,
    };
    let sessions: Vec<SessionRequest> = requests
        .iter()
        .map(|r| degenerate(r, zero_arrival()))
        .collect();
    let run = event_loop::run(
        &mut world,
        &sessions,
        &batch_config(*config, None),
        event_loop::Backend::Resilient,
        sink,
    );
    ResilientBatch {
        outcomes: collect_outcomes(run.request_outcomes),
    }
}

/// [`serve_batch_with_admission`](crate::serve_batch_with_admission)
/// re-expressed through the session engine; outcomes, admission
/// decisions, stats and telemetry are bitwise identical.
///
/// # Panics
///
/// Panics when `requests.len() != arrivals.len()`.
pub fn serve_batch_with_admission_sessions(
    composer: &Composer<'_>,
    requests: &[CompositionRequest],
    arrivals: &[ArrivalMeta],
    config: &ResilientEngineConfig,
) -> AdmittedBatch {
    serve_batch_with_admission_sessions_traced(
        composer,
        requests,
        arrivals,
        config,
        &qosc_telemetry::NoopSink,
    )
}

/// [`serve_batch_with_admission_traced`](crate::serve_batch_with_admission_traced)
/// through the session engine.
///
/// # Panics
///
/// Panics when `requests.len() != arrivals.len()`.
pub fn serve_batch_with_admission_sessions_traced<S: TelemetrySink>(
    composer: &Composer<'_>,
    requests: &[CompositionRequest],
    arrivals: &[ArrivalMeta],
    config: &ResilientEngineConfig,
    sink: &S,
) -> AdmittedBatch {
    assert_eq!(
        requests.len(),
        arrivals.len(),
        "one ArrivalMeta per CompositionRequest"
    );
    let mut world = StaticWorld {
        formats: composer.formats,
        services: composer.services,
        network: composer.network,
    };
    let sessions: Vec<SessionRequest> = requests
        .iter()
        .zip(arrivals)
        .map(|(r, &a)| degenerate(r, a))
        .collect();
    let run = event_loop::run(
        &mut world,
        &sessions,
        &batch_config(*config, Some(config.admission)),
        event_loop::Backend::Resilient,
        sink,
    );
    let decisions = run
        .open_decisions
        .into_iter()
        .map(|d| d.expect("no horizon: every offered session is decided"))
        .collect();
    AdmittedBatch {
        batch: ResilientBatch {
            outcomes: collect_outcomes(run.request_outcomes),
        },
        admission: AdmissionPlan {
            decisions,
            stats: run.report.admission,
        },
    }
}

fn collect_outcomes(slots: Vec<Option<RequestOutcome>>) -> Vec<RequestOutcome> {
    slots
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| {
                unserved(
                    0,
                    0,
                    false,
                    Some("worker thread lost before reporting".to_string()),
                )
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_media::FormatRegistry;
    use qosc_netsim::{Network, Node, NodeId, Topology};
    use qosc_profiles::{
        ContentProfile, ContextProfile, DeviceProfile, NetworkProfile, ProfileSet, UserProfile,
    };
    use qosc_services::{catalog, ServiceRegistry, TranscoderDescriptor};

    struct Fixture {
        formats: FormatRegistry,
        services: ServiceRegistry,
        network: Network,
        server: NodeId,
        client: NodeId,
    }

    fn fixture() -> Fixture {
        let formats = FormatRegistry::with_builtins();
        let mut topo = Topology::new();
        let server = topo.add_node(Node::unconstrained("server"));
        let proxy = topo.add_node(Node::unconstrained("proxy"));
        let client = topo.add_node(Node::unconstrained("client"));
        topo.connect_simple(server, proxy, 100e6).unwrap();
        topo.connect_simple(proxy, client, 1e6).unwrap();
        let network = Network::new(topo);
        let mut services = ServiceRegistry::new();
        for spec in catalog::full_catalog() {
            services
                .register_static(TranscoderDescriptor::resolve(&spec, &formats, proxy).unwrap());
        }
        Fixture {
            formats,
            services,
            network,
            server,
            client,
        }
    }

    fn request(f: &Fixture, i: usize) -> CompositionRequest {
        CompositionRequest {
            profiles: ProfileSet {
                user: UserProfile::demo(&format!("user-{}", i % 3)),
                content: ContentProfile::demo_video("clip"),
                device: DeviceProfile::demo_pda(),
                context: ContextProfile::default(),
                network: NetworkProfile::broadband(),
            },
            sender_host: f.server,
            receiver_host: f.client,
        }
    }

    fn sessions(f: &Fixture, n: usize, hold_us: u64, spacing_us: u64) -> Vec<SessionRequest> {
        (0..n)
            .map(|i| SessionRequest {
                request: request(f, i),
                arrival: ArrivalMeta {
                    arrival_us: i as u64 * spacing_us,
                    priority: PriorityClass::Standard,
                    service_cost_us: 1_000,
                    deadline_budget_us: None,
                },
                hold_us,
                demand_bps: 0,
            })
            .collect()
    }

    #[test]
    fn static_world_sessions_complete_with_full_availability() {
        let f = fixture();
        let mut world = StaticWorld {
            formats: &f.formats,
            services: &f.services,
            network: &f.network,
        };
        let reqs = sessions(&f, 6, 2_000_000, 100_000);
        let config = SessionEngineConfig {
            admission: None,
            tick_us: 500_000,
            ..SessionEngineConfig::default()
        };
        let report = run_sessions(&mut world, &reqs, &config, &qosc_telemetry::NoopSink);
        assert_eq!(report.counters.opened, 6);
        assert_eq!(report.counters.completed, 6);
        assert!(report.counters.partitions_exactly());
        assert_eq!(report.recompositions(), 0);
        for outcome in &report.outcomes {
            assert_eq!(outcome.close, Some(CloseReason::Completed));
            assert_eq!(outcome.lit_us, 2_000_000, "holds accrue fully lit");
            assert_eq!(outcome.dark_us, 0);
            assert_eq!(outcome.epochs, 3, "ticks at +500ms, +1s, +1.5s");
            assert!(outcome.mean_satisfaction() > 0.0);
        }
        assert!((report.availability() - 1.0).abs() < 1e-12);
        // Rung accounting partitions lit time exactly.
        let by_rung: u64 = report.session_us_by_rung().iter().sum();
        assert_eq!(by_rung, 6 * 2_000_000);
    }

    #[test]
    fn sessions_through_admission_carry_decisions_and_partition() {
        let f = fixture();
        let mut world = StaticWorld {
            formats: &f.formats,
            services: &f.services,
            network: &f.network,
        };
        let reqs = sessions(&f, 8, 1_000_000, 10_000);
        let config = SessionEngineConfig {
            tick_us: 0,
            ..SessionEngineConfig::default()
        };
        let report = run_sessions(&mut world, &reqs, &config, &qosc_telemetry::NoopSink);
        assert_eq!(report.admission.offered, 8);
        assert!(report.counters.partitions_exactly());
        assert_eq!(
            report.counters.completed + report.counters.shed,
            8,
            "static world: every session either completes or is shed"
        );
    }

    #[test]
    fn horizon_censors_and_counts_active_sessions() {
        let f = fixture();
        let mut world = StaticWorld {
            formats: &f.formats,
            services: &f.services,
            network: &f.network,
        };
        // Sessions hold for 10s; the horizon cuts at 1s.
        let reqs = sessions(&f, 3, 10_000_000, 1_000);
        let config = SessionEngineConfig {
            admission: None,
            tick_us: 0,
            horizon_us: Some(1_000_000),
            ..SessionEngineConfig::default()
        };
        let report = run_sessions(&mut world, &reqs, &config, &qosc_telemetry::NoopSink);
        assert_eq!(report.counters.active_at_end, 3);
        assert!(report.counters.partitions_exactly());
        assert_eq!(report.end_us, 1_000_000);
        for outcome in &report.outcomes {
            assert!(outcome.close.is_none());
            assert_eq!(
                outcome.lit_us,
                1_000_000 - outcome.opened_us,
                "accrues exactly to the horizon"
            );
        }
    }

    #[test]
    fn zero_hold_sessions_are_degenerate_batches() {
        let f = fixture();
        let mut world = StaticWorld {
            formats: &f.formats,
            services: &f.services,
            network: &f.network,
        };
        let reqs = sessions(&f, 4, 0, 0);
        let config = SessionEngineConfig {
            admission: None,
            tick_us: 0,
            session_spans: false,
            ..SessionEngineConfig::default()
        };
        let report = run_sessions(&mut world, &reqs, &config, &qosc_telemetry::NoopSink);
        assert_eq!(report.counters.completed, 4);
        for outcome in &report.outcomes {
            assert_eq!(outcome.closed_us, Some(0));
            assert_eq!(outcome.active_us(), 0);
            assert_eq!(outcome.epochs, 0);
        }
    }
}
