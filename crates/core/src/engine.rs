//! Concurrent composition serving.
//!
//! The paper frames the composition algorithm as something an
//! infrastructure runs per request ("whenever a user requests a
//! multimedia document…", Section 4). A front-end therefore has to
//! serve many requests against one registry and one network snapshot.
//! [`serve_batch`] does exactly that: it fans a vector of
//! [`CompositionRequest`]s across a scoped worker pool in which every
//! worker shares the same [`Composer`] (immutable borrows of registry,
//! format table and network) and one [`ShardedCompositionCache`].
//!
//! Determinism: workers pull requests off a shared atomic index, so
//! *scheduling* is nondeterministic, but each request's outcome depends
//! only on the shared snapshot — composition never mutates it — and the
//! result vector is written by request index. `serve_batch` therefore
//! returns exactly what a sequential loop over the same requests would
//! return, in the same order, for any worker count. Only the cache's
//! hit/miss split may differ (a racing pair of identical cold requests
//! counts two misses instead of a miss and a hit); the total
//! `hits + misses + stale` always equals the number of requests.
//!
//! ## Fault tolerance
//!
//! [`serve_batch_resilient`] is the graceful-degradation front-end: it
//! wraps every request in `catch_unwind` (one poisoned profile turns
//! into an `Err` for that index instead of aborting the batch), enforces
//! a per-request deadline through [`SelectOptions::deadline`], retries
//! transient registry/network errors with seeded exponential backoff,
//! and — when a request is infeasible or below the user's satisfaction
//! floor — walks the **degradation ladder** of Section 3's adaptation
//! policy: relax the quality floors, fall back to the weighted
//! combination of [29], and finally drop the axes of the media kinds the
//! user listed in `degrade_first`. Each outcome reports which rung
//! served it.

use crate::admission::{plan_admission, AdmissionConfig, AdmissionPlan, ArrivalMeta};
use crate::cache::ShardedCompositionCache;
use crate::composer::Composer;
use crate::graph::GraphStore;
use crate::plan::AdaptationPlan;
use crate::select::{SelectFailure, SelectOptions};
use crate::Result;
use qosc_media::{Axis, MediaKind};
use qosc_netsim::NodeId;
use qosc_profiles::ProfileSet;
use qosc_satisfaction::{AxisPreference, SatisfactionFn, SatisfactionProfile};
use qosc_telemetry::{
    EventKind, MetricsRegistry, NoopSink, RequestTrace, TelemetrySink, ROOT_SPAN,
};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// One composition request: who is sending what to whom, under which
/// profiles.
#[derive(Debug, Clone)]
pub struct CompositionRequest {
    /// The five CC/PP profiles describing the request.
    pub profiles: ProfileSet,
    /// Node hosting the content server.
    pub sender_host: NodeId,
    /// Node hosting the receiving client.
    pub receiver_host: NodeId,
}

/// Tuning for [`serve_batch`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads to spawn (clamped to at least 1; `1` serves the
    /// batch on the spawned worker without any sharing races).
    pub workers: usize,
    /// Selection options applied to every request in the batch.
    pub options: SelectOptions,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: 1,
            options: SelectOptions::default(),
        }
    }
}

/// Render a panic payload for error reporting.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Serve a batch of requests concurrently through a shared cache.
///
/// Results arrive in request order, one per request: `Ok(Some(plan))`
/// for a solvable request, `Ok(None)` for a currently unsolvable one,
/// `Err` when profile serialization or graph construction failed for
/// that request (one request's failure does not abort the batch). A
/// request whose composition *panics* — a poisoned profile tripping an
/// internal invariant — yields [`CoreError::WorkerPanic`](crate::CoreError::WorkerPanic)
/// for its index and leaves every other request untouched.
pub fn serve_batch(
    composer: &Composer<'_>,
    cache: &ShardedCompositionCache,
    requests: &[CompositionRequest],
    config: &EngineConfig,
) -> Vec<Result<Option<AdaptationPlan>>> {
    serve_batch_traced(composer, cache, requests, config, &NoopSink)
}

/// [`serve_batch`] with every request's cache probe recorded into
/// `sink` (request id = batch index, virtual time 0 — this path has no
/// virtual clock). With [`NoopSink`] this is exactly `serve_batch`.
pub fn serve_batch_traced<S: TelemetrySink>(
    composer: &Composer<'_>,
    cache: &ShardedCompositionCache,
    requests: &[CompositionRequest],
    config: &EngineConfig,
    sink: &S,
) -> Vec<Result<Option<AdaptationPlan>>> {
    let workers = config.workers.max(1).min(requests.len().max(1));
    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, Result<Option<AdaptationPlan>>)> =
        Vec::with_capacity(requests.len());

    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        let Some(request) = requests.get(index) else {
                            return local;
                        };
                        // Per-request isolation: a panic poisons this
                        // index only, the worker moves on to the next
                        // request.
                        let mut trace = RequestTrace::new(sink, index as u64, 0);
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            cache.compose_traced(
                                composer,
                                &request.profiles,
                                request.sender_host,
                                request.receiver_host,
                                &config.options,
                                &mut trace,
                            )
                        }))
                        .unwrap_or_else(|payload| {
                            Err(crate::CoreError::WorkerPanic(panic_message(payload)))
                        });
                        local.push((index, outcome));
                    }
                })
            })
            .collect();
        for handle in handles {
            // With per-request catch_unwind a worker can only die to a
            // fault outside composition; salvage what it produced and
            // let the gap-fill below account for anything lost.
            if let Ok(local) = handle.join() {
                collected.extend(local);
            }
        }
    });

    let mut results: Vec<Option<Result<Option<AdaptationPlan>>>> =
        (0..requests.len()).map(|_| None).collect();
    for (index, outcome) in collected {
        results[index] = Some(outcome);
    }
    results
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| {
                Err(crate::CoreError::WorkerPanic(
                    "worker thread lost before reporting".to_string(),
                ))
            })
        })
        .collect()
}

// ---------------------------------------------------------------------
// Degradation ladder
// ---------------------------------------------------------------------

/// The rung of the degradation ladder that served a request, in
/// strictly-worsening order. Comparison order is quality order:
/// `Full < RelaxedFloor < …` means "less degraded".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum DegradationRung {
    /// Served as asked: the user's own floors and combiner.
    #[default]
    Full,
    /// Quality floors relaxed to zero (`min_acceptable → 0`): the user
    /// accepts *some* delivery below the stated minimum rather than
    /// nothing.
    RelaxedFloor,
    /// Floors relaxed and the combiner switched to the weighted
    /// combination of [29], so strong axes can compensate weak ones.
    WeightedCombiner,
    /// Floors relaxed, weighted combiner, and the preference axes of the
    /// media kinds the user listed in
    /// [`AdaptationPolicy::degrade_first`](qosc_profiles::AdaptationPolicy)
    /// dropped entirely (Section 3: "drop the audio quality of a
    /// sport-clip before degrading the video").
    DropSecondary,
}

impl DegradationRung {
    /// The ladder, best rung first.
    pub const LADDER: [DegradationRung; 4] = [
        DegradationRung::Full,
        DegradationRung::RelaxedFloor,
        DegradationRung::WeightedCombiner,
        DegradationRung::DropSecondary,
    ];

    /// Stable machine-readable name (used by scorecards).
    pub fn label(self) -> &'static str {
        match self {
            DegradationRung::Full => "full",
            DegradationRung::RelaxedFloor => "relaxed_floor",
            DegradationRung::WeightedCombiner => "weighted_combiner",
            DegradationRung::DropSecondary => "drop_secondary",
        }
    }
}

impl std::fmt::Display for DegradationRung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The media kind a preference axis degrades with, for the
/// `degrade_first` policy. Fidelity is kind-agnostic and never dropped.
fn axis_kind(axis: Axis) -> Option<MediaKind> {
    match axis {
        Axis::FrameRate | Axis::PixelCount | Axis::ColorDepth => Some(MediaKind::Video),
        Axis::SampleRate | Axis::Channels | Axis::SampleDepth => Some(MediaKind::Audio),
        Axis::Fidelity => None,
    }
}

/// Zero a satisfaction function's acceptability floor, keeping its shape
/// above the floor.
fn relax_floor(function: &SatisfactionFn) -> SatisfactionFn {
    match function {
        SatisfactionFn::Linear { ideal, .. } => SatisfactionFn::Linear {
            min_acceptable: 0.0,
            ideal: *ideal,
        },
        SatisfactionFn::Saturating { ideal, scale, .. } => SatisfactionFn::Saturating {
            min_acceptable: 0.0,
            ideal: *ideal,
            scale: *scale,
        },
        SatisfactionFn::Step { .. } => SatisfactionFn::Step { threshold: 0.0 },
        other => other.clone(),
    }
}

/// Rebuild `profile` with every floor relaxed, preserving weights and
/// the combiner.
fn relax_floors(profile: &SatisfactionProfile) -> SatisfactionProfile {
    let mut relaxed = SatisfactionProfile::new().with_combiner(profile.combiner.clone());
    for pref in profile.preferences() {
        relaxed.insert(AxisPreference::weighted(
            pref.axis,
            relax_floor(&pref.function),
            pref.weight,
        ));
    }
    relaxed
}

/// Rebuild `profile` without the axes belonging to the degrade-first
/// media kinds. If the policy would drop everything, the single
/// highest-weight preference survives (ties: lowest axis index) — a
/// request must keep at least one quality axis to optimize.
fn drop_secondary_axes(
    profile: &SatisfactionProfile,
    policy: &qosc_profiles::AdaptationPolicy,
) -> SatisfactionProfile {
    if policy.degrade_first.is_empty() {
        return profile.clone();
    }
    let dropped = |axis: Axis| {
        axis_kind(axis)
            .map(|kind| policy.degrade_first.contains(&kind))
            .unwrap_or(false)
    };
    let mut kept = SatisfactionProfile::new().with_combiner(profile.combiner.clone());
    let mut any = false;
    for pref in profile.preferences() {
        if !dropped(pref.axis) {
            kept.insert(AxisPreference::weighted(
                pref.axis,
                pref.function.clone(),
                pref.weight,
            ));
            any = true;
        }
    }
    if !any {
        if let Some(survivor) = profile.preferences().iter().reduce(|best, pref| {
            if pref.weight > best.weight {
                pref
            } else {
                best
            }
        }) {
            kept.insert(survivor.clone());
        }
    }
    kept
}

/// The profile set a ladder rung composes with. `Full` is the request
/// as asked; every other rung rewrites the user's satisfaction profile
/// (the context profile re-adjusts the rewritten profile exactly as it
/// would the original).
pub fn degrade_profiles(profiles: &ProfileSet, rung: DegradationRung) -> ProfileSet {
    let mut out = profiles.clone();
    if rung >= DegradationRung::RelaxedFloor {
        out.user.satisfaction = relax_floors(&out.user.satisfaction);
    }
    if rung >= DegradationRung::WeightedCombiner {
        out.user.satisfaction.use_weighted_combination();
    }
    if rung >= DegradationRung::DropSecondary {
        out.user.satisfaction = drop_secondary_axes(&out.user.satisfaction, &out.user.policy);
    }
    out
}

// ---------------------------------------------------------------------
// Resilient serving
// ---------------------------------------------------------------------

/// Retry policy for transient composition errors (registry/network
/// revalidation failures).
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Attempts per ladder rung (clamped to at least 1).
    pub max_attempts: u32,
    /// First backoff, microseconds; doubles per retry.
    pub base_backoff_us: u64,
    /// Backoff ceiling, microseconds.
    pub max_backoff_us: u64,
    /// Cap on the *accrued* backoff a single request may record across
    /// all rungs and retries ([`RequestOutcome::backoff_us`] saturates
    /// here instead of growing without bound at high attempt counts).
    pub max_total_backoff_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_us: 1_000,
            max_backoff_us: 250_000,
            max_total_backoff_us: 10_000_000,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry `attempt` (1-based): exponential with seeded
    /// half-range jitter. Pure in `(self, attempt, rng-state)`, so a
    /// seeded run reproduces its backoff schedule exactly. The doubling
    /// saturates: any attempt count (even ≥ 64, where `1 << exp` would
    /// overflow a `u64`) yields the jittered ceiling, never a wrap.
    pub fn backoff_for(&self, attempt: u32, rng: &mut SmallRng) -> u64 {
        let exp = attempt.saturating_sub(1);
        let cap = self.max_backoff_us.max(self.base_backoff_us);
        let base = if exp >= 63 {
            cap
        } else {
            self.base_backoff_us.saturating_mul(1u64 << exp).min(cap)
        };
        let jitter = if base > 1 {
            rng.random_range(0..=base / 2)
        } else {
            0
        };
        base.saturating_add(jitter)
    }

    /// Accrue `next` onto `total`, saturating at
    /// [`max_total_backoff_us`](RetryPolicy::max_total_backoff_us).
    pub fn accrue(&self, total: u64, next: u64) -> u64 {
        total.saturating_add(next).min(self.max_total_backoff_us)
    }
}

/// Tuning for [`serve_batch_resilient`].
#[derive(Debug, Clone, Copy)]
pub struct ResilientEngineConfig {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Base selection options; the per-request deadline is layered on
    /// top of these.
    pub options: SelectOptions,
    /// Per-request wall-clock budget in microseconds. `None` disables
    /// deadlines (and keeps outcomes machine-independent).
    pub deadline_budget_us: Option<u64>,
    /// Retry policy for transient errors.
    pub retry: RetryPolicy,
    /// Walk the degradation ladder on infeasible/below-floor requests.
    /// When `false` only [`DegradationRung::Full`] is tried — the binary
    /// served-or-failed behaviour of [`serve_batch`].
    pub ladder: bool,
    /// Seed for backoff jitter; request `i` derives its own stream from
    /// `seed` and `i`, so outcomes are independent of worker scheduling.
    pub seed: u64,
    /// Overload-protection policy, used by
    /// [`serve_batch_with_admission`] (ignored by
    /// [`serve_batch_resilient`], which admits unconditionally).
    pub admission: AdmissionConfig,
}

impl Default for ResilientEngineConfig {
    fn default() -> ResilientEngineConfig {
        ResilientEngineConfig {
            workers: 1,
            options: SelectOptions::default(),
            deadline_budget_us: None,
            retry: RetryPolicy::default(),
            ladder: true,
            seed: 0,
            admission: AdmissionConfig::default(),
        }
    }
}

/// What happened to one request of a resilient batch.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// The served plan, if any rung produced one above the floor.
    pub plan: Option<AdaptationPlan>,
    /// The rung that served it (`None` when unserved).
    pub rung: Option<DegradationRung>,
    /// Predicted satisfaction of the served plan under its rung's
    /// scoring (0.0 when unserved).
    pub satisfaction: f64,
    /// Composition attempts across all rungs and retries.
    pub attempts: u32,
    /// Total backoff this request accrued, microseconds (recorded, not
    /// slept — the simulation clock is not the wall clock).
    pub backoff_us: u64,
    /// The per-request deadline expired before a plan was found.
    pub deadline_exceeded: bool,
    /// The admission queue refused this request (never reached a
    /// worker; always `attempts == 0`). Only
    /// [`serve_batch_with_admission`] sheds.
    pub shed: bool,
    /// Starting rung the admission brown-out assigned (`None` outside
    /// the admission path, [`DegradationRung::Full`] when no brown-out
    /// was active).
    pub brownout_rung: Option<DegradationRung>,
    /// Terminal error or last rung-failure reason (`None` when served).
    pub error: Option<String>,
}

impl RequestOutcome {
    /// Served at full quality.
    pub fn is_served_full(&self) -> bool {
        self.plan.is_some() && self.rung == Some(DegradationRung::Full)
    }

    /// Served, but on a lower rung.
    pub fn is_degraded(&self) -> bool {
        self.plan.is_some() && self.rung.map(|r| r > DegradationRung::Full) == Some(true)
    }

    /// Refused by the admission queue.
    pub fn is_shed(&self) -> bool {
        self.shed
    }
}

/// Batch-level accounting. The five counters are disjoint and sum to
/// the batch size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchCounters {
    /// Served at [`DegradationRung::Full`].
    pub served: usize,
    /// Served at a lower rung.
    pub degraded: usize,
    /// Unserved: error, panic, or infeasible at every rung.
    pub failed: usize,
    /// Unserved because the deadline expired first.
    pub deadline_exceeded: usize,
    /// Refused by the admission queue before composing.
    pub shed: usize,
}

impl BatchCounters {
    /// Total requests accounted for.
    pub fn total(&self) -> usize {
        self.served + self.degraded + self.failed + self.deadline_exceeded + self.shed
    }

    /// Mirror this snapshot into `registry` as the
    /// `qosc_batch_{served,degraded,failed,deadline_exceeded,shed}_total`
    /// counters. The struct stays the cheap view; the registry is the
    /// unified export surface.
    pub fn record_metrics(&self, registry: &MetricsRegistry) {
        registry
            .counter("qosc_batch_served_total")
            .store(self.served as u64);
        registry
            .counter("qosc_batch_degraded_total")
            .store(self.degraded as u64);
        registry
            .counter("qosc_batch_failed_total")
            .store(self.failed as u64);
        registry
            .counter("qosc_batch_deadline_exceeded_total")
            .store(self.deadline_exceeded as u64);
        registry
            .counter("qosc_batch_shed_total")
            .store(self.shed as u64);
    }
}

/// A resilient batch: one outcome per request, in request order.
#[derive(Debug, Clone)]
pub struct ResilientBatch {
    /// Per-request outcomes.
    pub outcomes: Vec<RequestOutcome>,
}

impl ResilientBatch {
    /// Classify the outcomes. Every request lands in exactly one
    /// counter, so `counters().total() == outcomes.len()`.
    pub fn counters(&self) -> BatchCounters {
        let mut counters = BatchCounters::default();
        for outcome in &self.outcomes {
            if outcome.shed {
                counters.shed += 1;
            } else if outcome.is_served_full() {
                counters.served += 1;
            } else if outcome.is_degraded() {
                counters.degraded += 1;
            } else if outcome.deadline_exceeded {
                counters.deadline_exceeded += 1;
            } else {
                counters.failed += 1;
            }
        }
        counters
    }
}

/// Transient errors are worth retrying: the registry or network may be
/// mid-churn (a lease expiring between graph build and revalidation, a
/// route flapping back). Everything else is deterministic and retrying
/// cannot help.
fn is_transient(error: &crate::CoreError) -> bool {
    matches!(
        error,
        crate::CoreError::Service(_) | crate::CoreError::Net(_)
    )
}

pub(crate) fn unserved(
    attempts: u32,
    backoff_us: u64,
    deadline_exceeded: bool,
    error: Option<String>,
) -> RequestOutcome {
    RequestOutcome {
        plan: None,
        rung: None,
        satisfaction: 0.0,
        attempts,
        backoff_us,
        deadline_exceeded,
        shed: false,
        brownout_rung: None,
        error,
    }
}

/// Serve one request through the ladder (from `start_rung` down), with
/// retries and panic isolation. Pure in `(composer snapshot, request,
/// index, config, start_rung)` — the trace records, it never steers,
/// and the graph store only changes where the adaptation graph comes
/// from (reuse/delta instead of rebuild), never its structure.
pub(crate) fn serve_one<S: TelemetrySink>(
    composer: &Composer<'_>,
    store: &GraphStore,
    request: &CompositionRequest,
    index: usize,
    config: &ResilientEngineConfig,
    start_rung: DegradationRung,
    trace: &mut RequestTrace<'_, S>,
) -> RequestOutcome {
    // A zero budget can never be met: fail fast, deterministically,
    // before any composition attempt — never by racing the wall clock.
    if config.deadline_budget_us == Some(0) {
        trace.emit(ROOT_SPAN, EventKind::DeadlineExpired);
        return unserved(0, 0, true, Some("deadline budget is zero".to_string()));
    }
    let deadline = config
        .deadline_budget_us
        .map(|us| Instant::now() + Duration::from_micros(us));
    let mut options = config.options;
    options.deadline = deadline;
    let mut rng =
        SmallRng::seed_from_u64(config.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let start = start_rung as usize;
    let rungs: &[DegradationRung] = if config.ladder {
        &DegradationRung::LADDER[start..]
    } else {
        &DegradationRung::LADDER[start..=start]
    };

    let mut attempts = 0u32;
    let mut backoff_us = 0u64;
    let mut last_failure: Option<String> = None;
    for (position, &rung) in rungs.iter().enumerate() {
        if let Some(d) = deadline {
            if Instant::now() >= d {
                trace.emit(ROOT_SPAN, EventKind::DeadlineExpired);
                return unserved(attempts, backoff_us, true, last_failure);
            }
        }
        let rung_span = trace.open_span(ROOT_SPAN, rung.label());
        trace.emit(
            rung_span,
            EventKind::CompositionStarted { rung: rung.label() },
        );
        let profiles = degrade_profiles(&request.profiles, rung);
        let mut attempt_in_rung = 0u32;
        let composition = loop {
            attempts += 1;
            attempt_in_rung += 1;
            let result = catch_unwind(AssertUnwindSafe(|| {
                composer.compose_with_store(
                    store,
                    &profiles,
                    request.sender_host,
                    request.receiver_host,
                    &options,
                )
            }));
            match result {
                Err(payload) => {
                    // A panic is a deterministic fault in the compose
                    // path; neither retrying nor degrading can help.
                    trace.emit(
                        rung_span,
                        EventKind::CompositionFinished {
                            rung: rung.label(),
                            served: false,
                            satisfaction_micros: 0,
                            attempts,
                        },
                    );
                    return unserved(
                        attempts,
                        backoff_us,
                        false,
                        Some(format!("panic: {}", panic_message(payload))),
                    );
                }
                Ok(Err(e))
                    if is_transient(&e) && attempt_in_rung < config.retry.max_attempts.max(1) =>
                {
                    // Draw the backoff first, then accrue: the RNG call
                    // order is part of the committed scorecards.
                    let step = config.retry.backoff_for(attempt_in_rung, &mut rng);
                    backoff_us = config.retry.accrue(backoff_us, step);
                    trace.emit(
                        rung_span,
                        EventKind::Retry {
                            attempt: attempt_in_rung,
                            backoff_us: step,
                        },
                    );
                    last_failure = Some(e.to_string());
                }
                Ok(Err(e)) => {
                    // Terminal error: deterministic, or retries exhausted.
                    trace.emit(
                        rung_span,
                        EventKind::CompositionFinished {
                            rung: rung.label(),
                            served: false,
                            satisfaction_micros: 0,
                            attempts,
                        },
                    );
                    return unserved(attempts, backoff_us, false, Some(e.to_string()));
                }
                Ok(Ok(composition)) => break composition,
            }
        };
        if composition.selection.failure == Some(SelectFailure::DeadlineExceeded) {
            trace.emit(rung_span, EventKind::DeadlineExpired);
            return unserved(attempts, backoff_us, true, last_failure);
        }
        match composition.plan {
            // A zero-satisfaction plan is below the user's stated
            // minimum — delivering it serves nobody (Section 4.1's
            // floors); the next rung relaxes what "minimum" means.
            Some(plan) if plan.predicted_satisfaction > 0.0 => {
                trace.emit(
                    rung_span,
                    EventKind::CompositionFinished {
                        rung: rung.label(),
                        served: true,
                        satisfaction_micros: (plan.predicted_satisfaction * 1e6).round() as u64,
                        attempts,
                    },
                );
                return RequestOutcome {
                    satisfaction: plan.predicted_satisfaction,
                    plan: Some(plan),
                    rung: Some(rung),
                    attempts,
                    backoff_us,
                    deadline_exceeded: false,
                    shed: false,
                    brownout_rung: None,
                    error: None,
                };
            }
            Some(_) => {
                last_failure = Some(format!("below the satisfaction floor at rung {rung}"));
            }
            None => {
                last_failure = Some(
                    composition
                        .selection
                        .failure
                        .map(|f| f.to_string())
                        .unwrap_or_else(|| "no chain".to_string()),
                );
            }
        }
        trace.emit(
            rung_span,
            EventKind::CompositionFinished {
                rung: rung.label(),
                served: false,
                satisfaction_micros: 0,
                attempts,
            },
        );
        if let Some(&next_rung) = rungs.get(position + 1) {
            trace.emit(
                ROOT_SPAN,
                EventKind::RungChange {
                    from: rung.label(),
                    to: next_rung.label(),
                },
            );
        }
    }
    unserved(attempts, backoff_us, false, last_failure)
}

/// Serve a batch with panic isolation, per-request deadlines, seeded
/// retry/backoff, and the degradation ladder.
///
/// Returns exactly one [`RequestOutcome`] per request, in request
/// order, for any worker count. Composition goes straight through the
/// [`Composer`] (no cache): under churn, revalidating a cached plan and
/// reporting the rung that produced it are at odds — the resilient
/// path always reflects the current registry and network.
pub fn serve_batch_resilient(
    composer: &Composer<'_>,
    requests: &[CompositionRequest],
    config: &ResilientEngineConfig,
) -> ResilientBatch {
    serve_batch_resilient_traced(composer, requests, config, &NoopSink)
}

/// [`serve_batch_resilient`] with the full causal chain of every
/// request — ladder rungs, retries, deadline expiries — recorded into
/// `sink` (request id = batch index, virtual time 0 — this path has no
/// virtual clock). With [`NoopSink`] this is exactly
/// `serve_batch_resilient`: outcomes are bitwise identical.
pub fn serve_batch_resilient_traced<S: TelemetrySink>(
    composer: &Composer<'_>,
    requests: &[CompositionRequest],
    config: &ResilientEngineConfig,
    sink: &S,
) -> ResilientBatch {
    let workers = config.workers.max(1).min(requests.len().max(1));
    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, RequestOutcome)> = Vec::with_capacity(requests.len());
    // One graph store per batch, shared across workers: the snapshot
    // cannot move mid-batch, so every request after the first per
    // (endpoints, variants, decoders) key reuses the built graph.
    let graph_store = GraphStore::new();

    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let graph_store = &graph_store;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        let Some(request) = requests.get(index) else {
                            return local;
                        };
                        let mut trace = RequestTrace::new(sink, index as u64, 0);
                        local.push((
                            index,
                            serve_one(
                                composer,
                                graph_store,
                                request,
                                index,
                                config,
                                DegradationRung::Full,
                                &mut trace,
                            ),
                        ));
                    }
                })
            })
            .collect();
        for handle in handles {
            if let Ok(local) = handle.join() {
                collected.extend(local);
            }
        }
    });

    let mut slots: Vec<Option<RequestOutcome>> = (0..requests.len()).map(|_| None).collect();
    for (index, outcome) in collected {
        slots[index] = Some(outcome);
    }
    let outcomes = slots
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| {
                unserved(
                    0,
                    0,
                    false,
                    Some("worker thread lost before reporting".to_string()),
                )
            })
        })
        .collect();
    ResilientBatch { outcomes }
}

// ---------------------------------------------------------------------
// Admission-controlled serving
// ---------------------------------------------------------------------

/// A resilient batch served behind the admission queue: per-request
/// outcomes plus the virtual-clock [`AdmissionPlan`] that produced them.
#[derive(Debug, Clone)]
pub struct AdmittedBatch {
    /// One outcome per offered request, in request order (shed requests
    /// included, with `shed = true` and `attempts == 0`).
    pub batch: ResilientBatch,
    /// The admission decisions and queue statistics.
    pub admission: AdmissionPlan,
}

/// Serve a batch behind the overload-protection front-end of
/// [`crate::admission`]: requests are offered to a deterministic
/// virtual-clock admission queue (deadline-aware shedding, strict
/// priority classes, AIMD concurrency, brown-out), and only admitted
/// requests reach the composition workers — each starting the
/// degradation ladder at the rung brown-out assigned it.
///
/// `arrivals[i]` is the virtual-time metadata of `requests[i]`; the two
/// slices must have the same length. Admission decisions depend only on
/// `(arrivals, config.admission)` and composition outcomes only on the
/// shared snapshot, so the whole result is identical for any worker
/// count. At sub-saturation load (no queueing, no brown-out) the plans
/// of admitted requests are bitwise identical to a
/// [`serve_batch_resilient`] run: admission is a front-end, not a
/// scoring change.
///
/// # Panics
///
/// Panics when `requests.len() != arrivals.len()`.
pub fn serve_batch_with_admission(
    composer: &Composer<'_>,
    requests: &[CompositionRequest],
    arrivals: &[ArrivalMeta],
    config: &ResilientEngineConfig,
) -> AdmittedBatch {
    serve_batch_with_admission_traced(composer, requests, arrivals, config, &NoopSink)
}

/// [`serve_batch_with_admission`] with every request's chain recorded
/// into `sink`: admitted requests open at their virtual arrival time,
/// record the admission verdict under an `admission` span, advance to
/// their virtual service start, then trace the ladder exactly as
/// [`serve_batch_resilient_traced`]; shed requests record only their
/// arrival and the shed reason. With [`NoopSink`] this is exactly
/// `serve_batch_with_admission`: outcomes are bitwise identical.
///
/// # Panics
///
/// Panics when `requests.len() != arrivals.len()`.
pub fn serve_batch_with_admission_traced<S: TelemetrySink>(
    composer: &Composer<'_>,
    requests: &[CompositionRequest],
    arrivals: &[ArrivalMeta],
    config: &ResilientEngineConfig,
    sink: &S,
) -> AdmittedBatch {
    assert_eq!(
        requests.len(),
        arrivals.len(),
        "one ArrivalMeta per CompositionRequest"
    );
    let admission = plan_admission(arrivals, &config.admission);

    // Compose only the admitted indices on the worker pool.
    let admitted: Vec<usize> = (0..requests.len())
        .filter(|&i| admission.decisions[i].admitted)
        .collect();
    let workers = config.workers.max(1).min(admitted.len().max(1));
    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, RequestOutcome)> = Vec::with_capacity(admitted.len());
    // Shared per-batch graph store (see serve_batch_resilient_traced);
    // brown-out rungs rewrite only the user profile, so every rung of
    // every admitted request maps to the same graph key.
    let graph_store = GraphStore::new();

    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let admitted = &admitted;
                let admission = &admission;
                let graph_store = &graph_store;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&index) = admitted.get(slot) else {
                            return local;
                        };
                        let decision = &admission.decisions[index];
                        let rung = decision.start_rung;
                        let mut trace =
                            RequestTrace::new(sink, index as u64, arrivals[index].arrival_us);
                        let admission_span = trace.open_span(ROOT_SPAN, "admission");
                        trace.emit(
                            admission_span,
                            EventKind::RequestAdmitted {
                                queue_wait_us: decision.queue_wait_us,
                                rung: rung.label(),
                            },
                        );
                        trace.advance_to(decision.start_us);
                        let mut outcome = serve_one(
                            composer,
                            graph_store,
                            &requests[index],
                            index,
                            config,
                            rung,
                            &mut trace,
                        );
                        outcome.brownout_rung = Some(rung);
                        local.push((index, outcome));
                    }
                })
            })
            .collect();
        for handle in handles {
            if let Ok(local) = handle.join() {
                collected.extend(local);
            }
        }
    });

    let mut slots: Vec<Option<RequestOutcome>> = (0..requests.len()).map(|_| None).collect();
    for (index, outcome) in collected {
        slots[index] = Some(outcome);
    }
    let outcomes: Vec<RequestOutcome> = slots
        .into_iter()
        .enumerate()
        .map(|(index, slot)| {
            if let Some(outcome) = slot {
                return outcome;
            }
            match admission.decisions[index].shed {
                Some(reason) => {
                    let mut trace =
                        RequestTrace::new(sink, index as u64, arrivals[index].arrival_us);
                    let admission_span = trace.open_span(ROOT_SPAN, "admission");
                    trace.advance_to(
                        arrivals[index].arrival_us + admission.decisions[index].queue_wait_us,
                    );
                    trace.emit(
                        admission_span,
                        EventKind::RequestShed {
                            reason: reason.label(),
                        },
                    );
                    RequestOutcome {
                        shed: true,
                        error: Some(format!("shed: {reason}")),
                        ..unserved(0, 0, false, None)
                    }
                }
                None => unserved(
                    0,
                    0,
                    false,
                    Some("worker thread lost before reporting".to_string()),
                ),
            }
        })
        .collect();
    AdmittedBatch {
        batch: ResilientBatch { outcomes },
        admission,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_media::{AxisDomain, DomainVector, FormatRegistry, VariantSpec};
    use qosc_netsim::{Network, Node, Topology};
    use qosc_profiles::{
        AdaptationPolicy, ContentProfile, ContextProfile, ConversionSpec, DeviceProfile,
        HardwareCaps, NetworkProfile, ServiceSpec, UserProfile,
    };
    use qosc_services::{catalog, ServiceRegistry, TranscoderDescriptor};

    struct Fixture {
        formats: FormatRegistry,
        services: ServiceRegistry,
        network: Network,
        server: NodeId,
        client: NodeId,
    }

    fn fixture() -> Fixture {
        let formats = FormatRegistry::with_builtins();
        let mut topo = Topology::new();
        let server = topo.add_node(Node::unconstrained("server"));
        let proxy = topo.add_node(Node::unconstrained("proxy"));
        let client = topo.add_node(Node::unconstrained("client"));
        topo.connect_simple(server, proxy, 100e6).unwrap();
        topo.connect_simple(proxy, client, 1e6).unwrap();
        let network = Network::new(topo);
        let mut services = ServiceRegistry::new();
        for spec in catalog::full_catalog() {
            services
                .register_static(TranscoderDescriptor::resolve(&spec, &formats, proxy).unwrap());
        }
        Fixture {
            formats,
            services,
            network,
            server,
            client,
        }
    }

    fn requests(f: &Fixture, n: usize) -> Vec<CompositionRequest> {
        (0..n)
            .map(|i| CompositionRequest {
                profiles: ProfileSet {
                    user: UserProfile::demo(&format!("user-{}", i % 3)),
                    content: ContentProfile::demo_video("clip"),
                    device: DeviceProfile::demo_pda(),
                    context: ContextProfile::default(),
                    network: NetworkProfile::broadband(),
                },
                sender_host: f.server,
                receiver_host: f.client,
            })
            .collect()
    }

    /// A profile whose content domain violates the "non-empty by
    /// construction" invariant of `AxisDomain::Discrete` — composing it
    /// panics inside the optimizer.
    fn poisoned_request(f: &Fixture) -> CompositionRequest {
        let mut request = requests(f, 1).remove(0);
        request.profiles.content = ContentProfile::new(
            "poison",
            vec![VariantSpec {
                format: "video/mpeg2".to_string(),
                offered: DomainVector::new()
                    .with(qosc_media::Axis::FrameRate, AxisDomain::Discrete(vec![])),
            }],
        );
        request
    }

    #[test]
    fn batch_matches_sequential_for_any_worker_count() {
        let f = fixture();
        let composer = Composer {
            formats: &f.formats,
            services: &f.services,
            network: &f.network,
        };
        let batch = requests(&f, 12);
        let reference: Vec<_> = {
            let cache = ShardedCompositionCache::new(1);
            batch
                .iter()
                .map(|r| {
                    cache
                        .compose(
                            &composer,
                            &r.profiles,
                            r.sender_host,
                            r.receiver_host,
                            &SelectOptions::default(),
                        )
                        .unwrap()
                })
                .collect()
        };
        for workers in [1usize, 2, 4, 8] {
            let cache = ShardedCompositionCache::default();
            let config = EngineConfig {
                workers,
                ..EngineConfig::default()
            };
            let served = serve_batch(&composer, &cache, &batch, &config);
            assert_eq!(served.len(), batch.len());
            for (got, want) in served.iter().zip(&reference) {
                assert_eq!(got.as_ref().unwrap(), want, "workers={workers}");
            }
            let stats = cache.stats();
            assert_eq!(
                stats.hits + stats.misses + stats.stale,
                batch.len(),
                "exact stats at workers={workers}"
            );
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let f = fixture();
        let composer = Composer {
            formats: &f.formats,
            services: &f.services,
            network: &f.network,
        };
        let cache = ShardedCompositionCache::default();
        let served = serve_batch(&composer, &cache, &[], &EngineConfig::default());
        assert!(served.is_empty());
        assert_eq!(cache.stats(), crate::CacheStats::default());
    }

    #[test]
    fn one_panicking_request_does_not_abort_the_batch() {
        let f = fixture();
        let composer = Composer {
            formats: &f.formats,
            services: &f.services,
            network: &f.network,
        };
        let mut batch = requests(&f, 6);
        batch[2] = poisoned_request(&f);
        for workers in [1usize, 4] {
            let cache = ShardedCompositionCache::default();
            let config = EngineConfig {
                workers,
                ..EngineConfig::default()
            };
            let served = serve_batch(&composer, &cache, &batch, &config);
            assert_eq!(served.len(), batch.len(), "one result per request");
            for (i, result) in served.iter().enumerate() {
                if i == 2 {
                    match result {
                        Err(crate::CoreError::WorkerPanic(_)) => {}
                        other => panic!("index 2 should be WorkerPanic, got {other:?}"),
                    }
                } else {
                    assert!(
                        result.as_ref().unwrap().is_some(),
                        "healthy request {i} still served (workers={workers})"
                    );
                }
            }
        }
    }

    /// A tight chain whose deliverable frame rate sits below a strict
    /// quality floor: dark at `Full`, served once the floor relaxes.
    fn floor_fixture() -> (Fixture, CompositionRequest) {
        let mut formats = FormatRegistry::new();
        let linear = qosc_media::BitrateModel::LinearOnAxis {
            axis: Axis::FrameRate,
            slope: 1000.0,
        };
        formats.register(qosc_media::FormatSpec::new("A", MediaKind::Video, linear));
        formats.register(qosc_media::FormatSpec::new("B", MediaKind::Video, linear));
        let mut topo = Topology::new();
        let server = topo.add_node(Node::unconstrained("server"));
        let proxy = topo.add_node(Node::unconstrained("proxy"));
        let client = topo.add_node(Node::unconstrained("client"));
        topo.connect_simple(server, proxy, 100e6).unwrap();
        // 12 kbit/s → at slope 1000 the receiver can take at most 12 fps.
        topo.connect_simple(proxy, client, 12_000.0).unwrap();
        let network = Network::new(topo);
        let mut services = ServiceRegistry::new();
        let spec = ServiceSpec::new(
            "T",
            vec![ConversionSpec::new(
                "A",
                "B",
                DomainVector::new().with(
                    Axis::FrameRate,
                    AxisDomain::Continuous {
                        min: 0.0,
                        max: 30.0,
                    },
                ),
            )],
        );
        services.register_static(TranscoderDescriptor::resolve(&spec, &formats, proxy).unwrap());

        // The user insists on ≥ 20 fps — infeasible on this last hop.
        let satisfaction = SatisfactionProfile::new().with(AxisPreference::new(
            Axis::FrameRate,
            SatisfactionFn::Linear {
                min_acceptable: 20.0,
                ideal: 30.0,
            },
        ));
        let request = CompositionRequest {
            profiles: ProfileSet {
                user: UserProfile::new("strict", satisfaction).with_policy(AdaptationPolicy {
                    degrade_first: vec![MediaKind::Audio],
                }),
                content: ContentProfile::new(
                    "clip",
                    vec![VariantSpec {
                        format: "A".to_string(),
                        offered: DomainVector::new().with(
                            Axis::FrameRate,
                            AxisDomain::Continuous {
                                min: 0.0,
                                max: 30.0,
                            },
                        ),
                    }],
                ),
                device: DeviceProfile::new("dev", vec!["B".to_string()], HardwareCaps::desktop()),
                context: ContextProfile::default(),
                network: NetworkProfile::lan(),
            },
            sender_host: server,
            receiver_host: client,
        };
        let fixture = Fixture {
            formats,
            services,
            network,
            server,
            client,
        };
        (fixture, request)
    }

    #[test]
    fn ladder_serves_below_floor_requests_degraded() {
        let (f, request) = floor_fixture();
        let composer = Composer {
            formats: &f.formats,
            services: &f.services,
            network: &f.network,
        };
        // Without the ladder: dark.
        let strict = serve_batch_resilient(
            &composer,
            std::slice::from_ref(&request),
            &ResilientEngineConfig {
                ladder: false,
                ..ResilientEngineConfig::default()
            },
        );
        assert_eq!(strict.counters().failed, 1);

        // With the ladder: served at RelaxedFloor with the deliverable
        // 12 fps (satisfaction 12/30 under the relaxed scoring).
        let laddered = serve_batch_resilient(
            &composer,
            std::slice::from_ref(&request),
            &ResilientEngineConfig::default(),
        );
        let outcome = &laddered.outcomes[0];
        assert_eq!(outcome.rung, Some(DegradationRung::RelaxedFloor));
        assert!(outcome.plan.is_some());
        assert!(
            outcome.satisfaction > 0.3 && outcome.satisfaction < 0.5,
            "≈12/30, got {}",
            outcome.satisfaction
        );
        let counters = laddered.counters();
        assert_eq!(counters.degraded, 1);
        assert_eq!(counters.total(), 1);
    }

    #[test]
    fn counters_partition_every_mixed_batch() {
        let (floor_f, floor_request) = floor_fixture();
        drop(floor_f);
        let f = fixture();
        let composer = Composer {
            formats: &f.formats,
            services: &f.services,
            network: &f.network,
        };
        let mut batch = requests(&f, 5);
        batch.push(poisoned_request(&f));
        // A request whose endpoints belong to another topology errs
        // (degenerate endpoints / unknown formats) — a failed slot.
        batch.push(CompositionRequest {
            profiles: floor_request.profiles.clone(),
            sender_host: f.server,
            receiver_host: f.client,
        });
        for workers in [1usize, 4] {
            let served = serve_batch_resilient(
                &composer,
                &batch,
                &ResilientEngineConfig {
                    workers,
                    ..ResilientEngineConfig::default()
                },
            );
            assert_eq!(
                served.outcomes.len(),
                batch.len(),
                "one outcome per request"
            );
            let counters = served.counters();
            assert_eq!(
                counters.total(),
                batch.len(),
                "counters partition the batch (workers={workers}): {counters:?}"
            );
            assert_eq!(counters.served, 5, "healthy requests serve at Full");
            assert!(counters.failed >= 1, "the poisoned request fails");
            assert!(
                served.outcomes[5]
                    .error
                    .as_deref()
                    .unwrap_or("")
                    .contains("panic"),
                "panic surfaced as an error string"
            );
        }
    }

    #[test]
    fn zero_deadline_budget_times_every_request_out() {
        let f = fixture();
        let composer = Composer {
            formats: &f.formats,
            services: &f.services,
            network: &f.network,
        };
        let batch = requests(&f, 4);
        let served = serve_batch_resilient(
            &composer,
            &batch,
            &ResilientEngineConfig {
                deadline_budget_us: Some(0),
                ..ResilientEngineConfig::default()
            },
        );
        let counters = served.counters();
        assert_eq!(counters.deadline_exceeded, batch.len());
        assert_eq!(counters.total(), batch.len());
        for outcome in &served.outcomes {
            assert!(outcome.deadline_exceeded);
            assert!(outcome.plan.is_none());
            // Regression: a zero budget fails fast, deterministically,
            // before any composition attempt — not by racing the wall
            // clock after consuming a worker.
            assert_eq!(outcome.attempts, 0, "no composition attempt on zero budget");
            assert_eq!(outcome.backoff_us, 0);
        }
    }

    #[test]
    fn backoff_saturates_at_extreme_attempt_counts() {
        // Regression: `1u64 << exp` at attempt counts ≥ 64 must
        // saturate to the ceiling, never wrap or panic.
        let policy = RetryPolicy {
            max_attempts: 1_000,
            base_backoff_us: u64::MAX / 2,
            max_backoff_us: u64::MAX,
            max_total_backoff_us: 1_000_000,
        };
        let mut rng = SmallRng::seed_from_u64(3);
        for attempt in [63u32, 64, 65, 128, 1_000, u32::MAX] {
            let backoff = policy.backoff_for(attempt, &mut rng);
            assert!(backoff >= u64::MAX / 2, "saturates high, attempt {attempt}");
        }
        // The accrued total is capped even when single backoffs are huge.
        let mut total = 0u64;
        for attempt in 1..=128u32 {
            total = policy.accrue(total, policy.backoff_for(attempt, &mut rng));
        }
        assert_eq!(total, policy.max_total_backoff_us, "accrual saturates");

        // The default policy's schedule is identical to the pre-fix one
        // in its live range (the committed scorecards depend on it).
        let default = RetryPolicy::default();
        let mut a = SmallRng::seed_from_u64(11);
        let old: Vec<u64> = (1..=10)
            .map(|k: u32| {
                let exp = k.saturating_sub(1).min(20);
                let base = default
                    .base_backoff_us
                    .saturating_mul(1u64 << exp)
                    .min(default.max_backoff_us.max(default.base_backoff_us));
                base + if base > 1 {
                    a.random_range(0..=base / 2)
                } else {
                    0
                }
            })
            .collect();
        let mut b = SmallRng::seed_from_u64(11);
        let new: Vec<u64> = (1..=10).map(|k| default.backoff_for(k, &mut b)).collect();
        assert_eq!(old, new);
    }

    #[test]
    fn resilient_serving_is_deterministic_per_seed() {
        let (f, request) = floor_fixture();
        let composer = Composer {
            formats: &f.formats,
            services: &f.services,
            network: &f.network,
        };
        let batch = vec![request.clone(), request];
        let config = ResilientEngineConfig {
            workers: 2,
            seed: 7,
            ..ResilientEngineConfig::default()
        };
        let a = serve_batch_resilient(&composer, &batch, &config);
        let b = serve_batch_resilient(&composer, &batch, &config);
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.rung, y.rung);
            assert_eq!(x.attempts, y.attempts);
            assert_eq!(x.backoff_us, y.backoff_us);
            assert_eq!(x.satisfaction, y.satisfaction);
        }
        assert_eq!(a.counters(), b.counters());
    }

    #[test]
    fn backoff_schedule_is_seeded_and_bounded() {
        let policy = RetryPolicy::default();
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        let seq_a: Vec<u64> = (1..=5).map(|k| policy.backoff_for(k, &mut a)).collect();
        let seq_b: Vec<u64> = (1..=5).map(|k| policy.backoff_for(k, &mut b)).collect();
        assert_eq!(seq_a, seq_b, "same seed, same schedule");
        for (k, &backoff) in seq_a.iter().enumerate() {
            assert!(
                backoff <= policy.max_backoff_us + policy.max_backoff_us / 2,
                "attempt {} backoff {} within jittered ceiling",
                k + 1,
                backoff
            );
        }
        // Exponential growth before the ceiling.
        assert!(seq_a[1] >= policy.base_backoff_us * 2);
    }

    #[test]
    fn degrade_profiles_walks_the_documented_ladder() {
        let (_, request) = floor_fixture();
        let full = degrade_profiles(&request.profiles, DegradationRung::Full);
        assert_eq!(full.user.satisfaction, request.profiles.user.satisfaction);

        let relaxed = degrade_profiles(&request.profiles, DegradationRung::RelaxedFloor);
        let pref = &relaxed.user.satisfaction.preferences()[0];
        assert_eq!(
            pref.function,
            SatisfactionFn::Linear {
                min_acceptable: 0.0,
                ideal: 30.0
            }
        );

        let weighted = degrade_profiles(&request.profiles, DegradationRung::WeightedCombiner);
        assert!(matches!(
            weighted.user.satisfaction.combiner,
            qosc_satisfaction::Combiner::WeightedHarmonic { .. }
        ));

        // degrade_first = [Audio]; the only pref is a video axis, so it
        // survives the drop rung.
        let dropped = degrade_profiles(&request.profiles, DegradationRung::DropSecondary);
        assert_eq!(dropped.user.satisfaction.preferences().len(), 1);

        // An audio+video profile sheds its audio axes at DropSecondary…
        let mut av = request.profiles.clone();
        av.user.satisfaction = SatisfactionProfile::new()
            .with(AxisPreference::new(
                Axis::FrameRate,
                SatisfactionFn::Linear {
                    min_acceptable: 0.0,
                    ideal: 30.0,
                },
            ))
            .with(AxisPreference::weighted(
                Axis::SampleRate,
                SatisfactionFn::Linear {
                    min_acceptable: 0.0,
                    ideal: 44_100.0,
                },
                2.0,
            ));
        let av_dropped = degrade_profiles(&av, DegradationRung::DropSecondary);
        let axes: Vec<Axis> = av_dropped
            .user
            .satisfaction
            .preferences()
            .iter()
            .map(|p| p.axis)
            .collect();
        assert_eq!(axes, vec![Axis::FrameRate], "audio degrades first");

        // …but a policy that would drop everything keeps the
        // highest-weight preference.
        let mut all_audio = av.clone();
        all_audio.user.satisfaction = SatisfactionProfile::new().with(AxisPreference::weighted(
            Axis::SampleRate,
            SatisfactionFn::Linear {
                min_acceptable: 0.0,
                ideal: 44_100.0,
            },
            2.0,
        ));
        let survived = degrade_profiles(&all_audio, DegradationRung::DropSecondary);
        assert_eq!(
            survived.user.satisfaction.preferences().len(),
            1,
            "at least one axis always survives"
        );
    }
}
