//! Concurrent composition serving.
//!
//! The paper frames the composition algorithm as something an
//! infrastructure runs per request ("whenever a user requests a
//! multimedia document…", Section 4). A front-end therefore has to
//! serve many requests against one registry and one network snapshot.
//! [`serve_batch`] does exactly that: it fans a vector of
//! [`CompositionRequest`]s across a scoped worker pool in which every
//! worker shares the same [`Composer`] (immutable borrows of registry,
//! format table and network) and one [`ShardedCompositionCache`].
//!
//! Determinism: workers pull requests off a shared atomic index, so
//! *scheduling* is nondeterministic, but each request's outcome depends
//! only on the shared snapshot — composition never mutates it — and the
//! result vector is written by request index. `serve_batch` therefore
//! returns exactly what a sequential loop over the same requests would
//! return, in the same order, for any worker count. Only the cache's
//! hit/miss split may differ (a racing pair of identical cold requests
//! counts two misses instead of a miss and a hit); the total
//! `hits + misses + stale` always equals the number of requests.

use crate::cache::ShardedCompositionCache;
use crate::composer::Composer;
use crate::plan::AdaptationPlan;
use crate::select::SelectOptions;
use crate::Result;
use qosc_netsim::NodeId;
use qosc_profiles::ProfileSet;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One composition request: who is sending what to whom, under which
/// profiles.
#[derive(Debug, Clone)]
pub struct CompositionRequest {
    /// The five CC/PP profiles describing the request.
    pub profiles: ProfileSet,
    /// Node hosting the content server.
    pub sender_host: NodeId,
    /// Node hosting the receiving client.
    pub receiver_host: NodeId,
}

/// Tuning for [`serve_batch`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads to spawn (clamped to at least 1; `1` serves the
    /// batch on the spawned worker without any sharing races).
    pub workers: usize,
    /// Selection options applied to every request in the batch.
    pub options: SelectOptions,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: 1,
            options: SelectOptions::default(),
        }
    }
}

/// Serve a batch of requests concurrently through a shared cache.
///
/// Results arrive in request order, one per request: `Ok(Some(plan))`
/// for a solvable request, `Ok(None)` for a currently unsolvable one,
/// `Err` when profile serialization or graph construction failed for
/// that request (one request's failure does not abort the batch).
pub fn serve_batch(
    composer: &Composer<'_>,
    cache: &ShardedCompositionCache,
    requests: &[CompositionRequest],
    config: &EngineConfig,
) -> Vec<Result<Option<AdaptationPlan>>> {
    let workers = config.workers.max(1).min(requests.len().max(1));
    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, Result<Option<AdaptationPlan>>)> =
        Vec::with_capacity(requests.len());

    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        let Some(request) = requests.get(index) else {
                            return local;
                        };
                        let outcome = cache.compose(
                            composer,
                            &request.profiles,
                            request.sender_host,
                            request.receiver_host,
                            &config.options,
                        );
                        local.push((index, outcome));
                    }
                })
            })
            .collect();
        for handle in handles {
            collected.extend(handle.join().expect("composition worker panicked"));
        }
    });

    collected.sort_by_key(|(index, _)| *index);
    debug_assert_eq!(collected.len(), requests.len());
    collected.into_iter().map(|(_, outcome)| outcome).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_media::FormatRegistry;
    use qosc_netsim::{Network, Node, Topology};
    use qosc_profiles::{
        ContentProfile, ContextProfile, DeviceProfile, NetworkProfile, UserProfile,
    };
    use qosc_services::{catalog, ServiceRegistry, TranscoderDescriptor};

    struct Fixture {
        formats: FormatRegistry,
        services: ServiceRegistry,
        network: Network,
        server: NodeId,
        client: NodeId,
    }

    fn fixture() -> Fixture {
        let formats = FormatRegistry::with_builtins();
        let mut topo = Topology::new();
        let server = topo.add_node(Node::unconstrained("server"));
        let proxy = topo.add_node(Node::unconstrained("proxy"));
        let client = topo.add_node(Node::unconstrained("client"));
        topo.connect_simple(server, proxy, 100e6).unwrap();
        topo.connect_simple(proxy, client, 1e6).unwrap();
        let network = Network::new(topo);
        let mut services = ServiceRegistry::new();
        for spec in catalog::full_catalog() {
            services
                .register_static(TranscoderDescriptor::resolve(&spec, &formats, proxy).unwrap());
        }
        Fixture {
            formats,
            services,
            network,
            server,
            client,
        }
    }

    fn requests(f: &Fixture, n: usize) -> Vec<CompositionRequest> {
        (0..n)
            .map(|i| CompositionRequest {
                profiles: ProfileSet {
                    user: UserProfile::demo(&format!("user-{}", i % 3)),
                    content: ContentProfile::demo_video("clip"),
                    device: DeviceProfile::demo_pda(),
                    context: ContextProfile::default(),
                    network: NetworkProfile::broadband(),
                },
                sender_host: f.server,
                receiver_host: f.client,
            })
            .collect()
    }

    #[test]
    fn batch_matches_sequential_for_any_worker_count() {
        let f = fixture();
        let composer = Composer {
            formats: &f.formats,
            services: &f.services,
            network: &f.network,
        };
        let batch = requests(&f, 12);
        let reference: Vec<_> = {
            let cache = ShardedCompositionCache::new(1);
            batch
                .iter()
                .map(|r| {
                    cache
                        .compose(
                            &composer,
                            &r.profiles,
                            r.sender_host,
                            r.receiver_host,
                            &SelectOptions::default(),
                        )
                        .unwrap()
                })
                .collect()
        };
        for workers in [1usize, 2, 4, 8] {
            let cache = ShardedCompositionCache::default();
            let config = EngineConfig {
                workers,
                ..EngineConfig::default()
            };
            let served = serve_batch(&composer, &cache, &batch, &config);
            assert_eq!(served.len(), batch.len());
            for (got, want) in served.iter().zip(&reference) {
                assert_eq!(got.as_ref().unwrap(), want, "workers={workers}");
            }
            let stats = cache.stats();
            assert_eq!(
                stats.hits + stats.misses + stats.stale,
                batch.len(),
                "exact stats at workers={workers}"
            );
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let f = fixture();
        let composer = Composer {
            formats: &f.formats,
            services: &f.services,
            network: &f.network,
        };
        let cache = ShardedCompositionCache::default();
        let served = serve_batch(&composer, &cache, &[], &EngineConfig::default());
        assert!(served.is_empty());
        assert_eq!(cache.stats(), crate::CacheStats::default());
    }
}
