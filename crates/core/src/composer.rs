//! The composition facade.
//!
//! [`Composer`] is the front door of the framework: give it the profile
//! set of a request (user, content, device, context, network), the
//! scenario's format registry, service registry and network, and it runs
//! the full pipeline of the paper — resolve profiles → build the
//! adaptation graph (4.2–4.3) → run the QoS selection algorithm (4.4) →
//! return an executable plan.

use crate::graph::{build, AdaptationGraph, BuildInput, GraphStore};
use crate::plan::AdaptationPlan;
use crate::select::{select_chain_with_penalties, SelectOptions, SelectionOutcome};
use crate::Result;
use qosc_media::FormatRegistry;
use qosc_netsim::{Network, NodeId};
use qosc_profiles::ProfileSet;
use qosc_services::ServiceRegistry;
use std::sync::Arc;

/// The composition facade.
pub struct Composer<'a> {
    /// The scenario's format registry.
    pub formats: &'a FormatRegistry,
    /// The live service registry.
    pub services: &'a ServiceRegistry,
    /// The network.
    pub network: &'a Network,
}

/// The outcome of one composition request.
#[derive(Debug)]
pub struct Composition {
    /// The constructed adaptation graph.
    pub graph: AdaptationGraph,
    /// The raw selection outcome, including the Table-1 trace.
    pub selection: SelectionOutcome,
    /// The executable plan (when selection succeeded).
    pub plan: Option<AdaptationPlan>,
}

/// The outcome of one composition request served through a
/// [`GraphStore`]: the graph is shared rather than owned, so hot-path
/// callers skip the per-request graph construction entirely.
#[derive(Debug)]
pub struct StoredComposition {
    /// The (possibly shared) adaptation graph the selection ran on.
    pub graph: Arc<AdaptationGraph>,
    /// The raw selection outcome, including the Table-1 trace.
    pub selection: SelectionOutcome,
    /// The executable plan (when selection succeeded).
    pub plan: Option<AdaptationPlan>,
}

impl Composer<'_> {
    /// Compose an adaptation chain for one request.
    ///
    /// `sender_host` / `receiver_host` locate the endpoints in the
    /// network. The user's satisfaction profile is adjusted by the
    /// context profile before optimization, and the budget comes from
    /// the user profile (Figure 4, Step 1).
    pub fn compose(
        &self,
        profiles: &ProfileSet,
        sender_host: NodeId,
        receiver_host: NodeId,
        options: &SelectOptions,
    ) -> Result<Composition> {
        profiles.validate()?;
        let variants = profiles.content.resolve(self.formats)?;
        let decoders = profiles.device.resolve_decoders(self.formats)?;
        let receiver_caps = profiles.device.hardware.quality_caps();
        let graph = build::build(&BuildInput {
            formats: self.formats,
            services: self.services,
            network: self.network,
            variants: &variants,
            sender_host,
            receiver_host,
            decoders: &decoders,
            receiver_caps,
        })?;

        let satisfaction = profiles.effective_satisfaction();
        let budget = profiles.user.budget_or_infinite();
        // Probation penalties ride in from the registry: empty (and
        // bit-identical to the penalty-free path) unless grey-failure
        // detection has probated a service.
        let selection = select_chain_with_penalties(
            &graph,
            self.formats,
            &satisfaction,
            budget,
            options,
            self.services.selection_penalties(),
        )?;
        let plan = match &selection.chain {
            Some(chain) => Some(AdaptationPlan::from_chain(&graph, self.formats, chain)?),
            None => None,
        };
        Ok(Composition {
            graph,
            selection,
            plan,
        })
    }

    /// [`Composer::compose`], but sourcing the adaptation graph from an
    /// incremental [`GraphStore`]: the graph is reused or delta-updated
    /// when the registry epoch or network version moved, and only
    /// rebuilt from scratch when it must be. Selection sees exactly the
    /// graph a fresh build would produce, so plans, traces and
    /// tie-breaks are bitwise identical to [`Composer::compose`].
    pub fn compose_with_store(
        &self,
        store: &GraphStore,
        profiles: &ProfileSet,
        sender_host: NodeId,
        receiver_host: NodeId,
        options: &SelectOptions,
    ) -> Result<StoredComposition> {
        profiles.validate()?;
        let variants = profiles.content.resolve(self.formats)?;
        let decoders = profiles.device.resolve_decoders(self.formats)?;
        let receiver_caps = profiles.device.hardware.quality_caps();
        let graph = store.graph_for(&BuildInput {
            formats: self.formats,
            services: self.services,
            network: self.network,
            variants: &variants,
            sender_host,
            receiver_host,
            decoders: &decoders,
            receiver_caps,
        })?;

        let satisfaction = profiles.effective_satisfaction();
        let budget = profiles.user.budget_or_infinite();
        let selection = select_chain_with_penalties(
            &graph,
            self.formats,
            &satisfaction,
            budget,
            options,
            self.services.selection_penalties(),
        )?;
        let plan = match &selection.chain {
            Some(chain) => Some(AdaptationPlan::from_chain(&graph, self.formats, chain)?),
            None => None,
        };
        Ok(StoredComposition {
            graph,
            selection,
            plan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_media::{Axis, AxisDomain, DomainVector, VariantSpec};
    use qosc_netsim::{Node, Topology};
    use qosc_profiles::{
        ContentProfile, ContextProfile, DeviceProfile, HardwareCaps, NetworkProfile, UserProfile,
    };
    use qosc_services::{catalog, TranscoderDescriptor};

    /// End-to-end: a PDA requests an MPEG-2 video through a proxy running
    /// the realistic catalog.
    #[test]
    fn composes_mpeg2_to_h263_for_pda() {
        let formats = FormatRegistry::with_builtins();
        let mut topo = Topology::new();
        let server = topo.add_node(Node::unconstrained("content-server"));
        let proxy = topo.add_node(Node::unconstrained("proxy"));
        let pda = topo.add_node(Node::unconstrained("pda"));
        topo.connect_simple(server, proxy, 100e6).unwrap();
        topo.connect_simple(proxy, pda, 500e3).unwrap();
        let network = Network::new(topo);

        let mut services = qosc_services::ServiceRegistry::new();
        for spec in catalog::full_catalog() {
            services
                .register_static(TranscoderDescriptor::resolve(&spec, &formats, proxy).unwrap());
        }

        let profiles = ProfileSet {
            user: UserProfile::demo("alice"),
            content: ContentProfile::demo_video("news"),
            device: DeviceProfile::demo_pda(),
            context: ContextProfile::default(),
            network: NetworkProfile::cellular(),
        };

        let composer = Composer {
            formats: &formats,
            services: &services,
            network: &network,
        };
        let composition = composer
            .compose(&profiles, server, pda, &SelectOptions::default())
            .unwrap();

        let plan = composition.plan.expect("chain exists via mpeg2-to-h263");
        let names: Vec<&str> = plan.steps.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.first().copied(), Some("sender"));
        assert_eq!(names.last().copied(), Some("receiver"));
        assert!(
            names.contains(&"mpeg2-to-h263"),
            "expected the H.263 down-coder on the chain, got {names:?}"
        );
        assert!(plan.predicted_satisfaction > 0.0);
        // The PDA's 500 kbit/s last hop must be respected.
        assert!(plan.steps.last().unwrap().input_bps <= 500e3);
        assert!(!composition.selection.trace.rows.is_empty());
    }

    #[test]
    fn impossible_request_terminates_failure() {
        let formats = FormatRegistry::with_builtins();
        let mut topo = Topology::new();
        let server = topo.add_node(Node::unconstrained("server"));
        let client = topo.add_node(Node::unconstrained("client"));
        topo.connect_simple(server, client, 1e6).unwrap();
        let network = Network::new(topo);
        let services = qosc_services::ServiceRegistry::new(); // no services at all

        // Device decodes only AMR audio; content is MPEG-2 video.
        let device = DeviceProfile::new(
            "odd-device",
            vec!["audio/amr".to_string()],
            HardwareCaps::pda(),
        );
        let profiles = ProfileSet {
            user: UserProfile::demo("bob"),
            content: ContentProfile::demo_video("news"),
            device,
            context: ContextProfile::default(),
            network: NetworkProfile::cellular(),
        };
        let composer = Composer {
            formats: &formats,
            services: &services,
            network: &network,
        };
        let composition = composer
            .compose(&profiles, server, client, &SelectOptions::default())
            .unwrap();
        assert!(composition.plan.is_none());
        assert!(composition.selection.failure.is_some());
    }

    #[test]
    fn context_adjustment_flows_through() {
        // Pure smoke: a noisy context must not break composition.
        let formats = FormatRegistry::with_builtins();
        let mut topo = Topology::new();
        let a = topo.add_node(Node::unconstrained("a"));
        let b = topo.add_node(Node::unconstrained("b"));
        topo.connect_simple(a, b, 10e6).unwrap();
        let network = Network::new(topo);
        let mut services = qosc_services::ServiceRegistry::new();
        for spec in catalog::full_catalog() {
            services.register_static(TranscoderDescriptor::resolve(&spec, &formats, a).unwrap());
        }
        let content = ContentProfile::new(
            "page",
            vec![VariantSpec {
                format: "text/html".to_string(),
                offered: DomainVector::new().with(
                    Axis::Fidelity,
                    AxisDomain::Continuous {
                        min: 5.0,
                        max: 100.0,
                    },
                ),
            }],
        );
        let device = DeviceProfile::new(
            "wap-phone",
            vec!["text/wml".to_string()],
            HardwareCaps::pda(),
        );
        let mut user = UserProfile::demo("carol");
        user.satisfaction = qosc_satisfaction::SatisfactionProfile::new().with(
            qosc_satisfaction::AxisPreference::new(
                Axis::Fidelity,
                qosc_satisfaction::SatisfactionFn::Linear {
                    min_acceptable: 0.0,
                    ideal: 60.0,
                },
            ),
        );
        let profiles = ProfileSet {
            user,
            content,
            device,
            context: ContextProfile::noisy_commute(),
            network: NetworkProfile::cellular(),
        };
        let composer = Composer {
            formats: &formats,
            services: &services,
            network: &network,
        };
        let composition = composer
            .compose(&profiles, a, b, &SelectOptions::default())
            .unwrap();
        let plan = composition.plan.expect("html-to-wml reaches the phone");
        assert!(plan.steps.iter().any(|s| s.name == "html-to-wml"));
    }
}
