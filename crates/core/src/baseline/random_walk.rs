//! A seeded random feasible chain.
//!
//! The weakest baseline: walk from the sender, at each step picking a
//! uniformly random feasible extension, restarting on dead ends. Shows
//! how much of the greedy algorithm's satisfaction comes from *choosing*
//! rather than merely *reaching*.

use crate::baseline::{chain_from_labels, BaselineResult};
use crate::graph::EdgeId;
use crate::select::label::{ExtendContext, Label};
use crate::Result;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Options for the random walk.
#[derive(Debug, Clone, Copy)]
pub struct RandomWalkOptions {
    /// RNG seed (runs are reproducible).
    pub seed: u64,
    /// Restarts before giving up.
    pub max_restarts: usize,
    /// Step cap per walk (cycle guard).
    pub max_steps: usize,
}

impl Default for RandomWalkOptions {
    fn default() -> RandomWalkOptions {
        RandomWalkOptions {
            seed: 0,
            max_restarts: 64,
            max_steps: 256,
        }
    }
}

/// Walk randomly until the receiver is reached or the restart budget is
/// spent. Returns the first successful chain.
pub fn random_walk(
    ctx: &ExtendContext<'_>,
    options: RandomWalkOptions,
) -> Result<Option<BaselineResult>> {
    let receiver = match ctx.graph.receiver() {
        Some(r) => r,
        None => return Ok(None),
    };
    let sender_labels = ctx.sender_labels()?;
    if sender_labels.is_empty() {
        return Ok(None);
    }
    let mut rng = SmallRng::seed_from_u64(options.seed);
    let mut explored = 0usize;

    for _ in 0..options.max_restarts {
        let start = sender_labels[rng.random_range(0..sender_labels.len())];
        let mut labels: Vec<Label> = vec![start];
        let mut edges: Vec<EdgeId> = Vec::new();
        let mut visited = vec![labels[0].state.vertex];

        for _ in 0..options.max_steps {
            let current = *labels.last().expect("non-empty");
            if current.state.vertex == receiver {
                let chain = chain_from_labels(ctx.graph, &labels)?;
                return Ok(Some(BaselineResult {
                    chain,
                    edges,
                    explored,
                }));
            }
            // Collect feasible extensions.
            let mut moves: Vec<(EdgeId, Label)> = Vec::new();
            for &edge_id in ctx.graph.out_edges(current.state.vertex) {
                let edge = ctx.graph.edge(edge_id)?;
                if edge.format != current.state.output_format || visited.contains(&edge.to) {
                    continue;
                }
                explored += 1;
                for label in ctx.extend(&current, edge_id)? {
                    moves.push((edge_id, label));
                }
            }
            if moves.is_empty() {
                break; // dead end → restart
            }
            let (edge_id, label) = moves.swap_remove(rng.random_range(0..moves.len()));
            visited.push(label.state.vertex);
            edges.push(edge_id);
            labels.push(label);
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build::build;
    use crate::graph::BuildInput;
    use qosc_media::{
        Axis, AxisDomain, BitrateModel, ContentVariant, DomainVector, FormatRegistry, FormatSpec,
        MediaKind, ParamVector,
    };
    use qosc_netsim::{Network, Node, Topology};
    use qosc_profiles::{ConversionSpec, ServiceSpec};
    use qosc_satisfaction::{OptimizeOptions, SatisfactionProfile};
    use qosc_services::{ServiceRegistry, TranscoderDescriptor};

    fn fixture() -> (FormatRegistry, crate::graph::AdaptationGraph) {
        let mut formats = FormatRegistry::new();
        let linear = BitrateModel::LinearOnAxis {
            axis: Axis::FrameRate,
            slope: 1000.0,
        };
        let fa = formats.register(FormatSpec::new("A", MediaKind::Video, linear));
        let fb = formats.register(FormatSpec::new("B", MediaKind::Video, linear));
        let mut topo = Topology::new();
        let s = topo.add_node(Node::unconstrained("s"));
        let m1 = topo.add_node(Node::unconstrained("m1"));
        let m2 = topo.add_node(Node::unconstrained("m2"));
        let r = topo.add_node(Node::unconstrained("r"));
        for (a, b) in [(s, m1), (s, m2), (m1, r), (m2, r)] {
            topo.connect_simple(a, b, 1e9).unwrap();
        }
        let network = Network::new(topo);
        let mut services = ServiceRegistry::new();
        let cap = |c: f64| {
            DomainVector::new().with(Axis::FrameRate, AxisDomain::Continuous { min: 0.0, max: c })
        };
        for (name, host, c) in [("T1", m1, 20.0), ("T2", m2, 30.0)] {
            let spec = ServiceSpec::new(name, vec![ConversionSpec::new("A", "B", cap(c))]);
            services.register_static(TranscoderDescriptor::resolve(&spec, &formats, host).unwrap());
        }
        let variants = vec![ContentVariant::new(fa, cap(30.0))];
        let graph = build(&BuildInput {
            formats: &formats,
            services: &services,
            network: &network,
            variants: &variants,
            sender_host: s,
            receiver_host: r,
            decoders: &[fb],
            receiver_caps: ParamVector::new(),
        })
        .unwrap();
        (formats, graph)
    }

    #[test]
    fn random_walk_reaches_receiver_deterministically() {
        let (formats, graph) = fixture();
        let profile = SatisfactionProfile::paper_table1();
        let ctx = ExtendContext {
            graph: &graph,
            formats: &formats,
            profile: &profile,
            budget: f64::INFINITY,
            optimizer: OptimizeOptions::default(),
            penalties: &[],
        };
        let a = random_walk(&ctx, RandomWalkOptions::default())
            .unwrap()
            .unwrap();
        let b = random_walk(&ctx, RandomWalkOptions::default())
            .unwrap()
            .unwrap();
        assert_eq!(a.chain.names(), b.chain.names(), "same seed, same walk");
        assert_eq!(a.chain.names().first().copied(), Some("sender"));
        assert_eq!(a.chain.names().last().copied(), Some("receiver"));
    }

    #[test]
    fn different_seeds_can_pick_different_branches() {
        let (formats, graph) = fixture();
        let profile = SatisfactionProfile::paper_table1();
        let ctx = ExtendContext {
            graph: &graph,
            formats: &formats,
            profile: &profile,
            budget: f64::INFINITY,
            optimizer: OptimizeOptions::default(),
            penalties: &[],
        };
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..16 {
            let result = random_walk(
                &ctx,
                RandomWalkOptions {
                    seed,
                    ..RandomWalkOptions::default()
                },
            )
            .unwrap()
            .unwrap();
            seen.insert(result.chain.names().join(","));
        }
        assert!(seen.len() > 1, "sixteen seeds should explore both branches");
    }
}
