//! Baseline path-selection algorithms.
//!
//! The paper argues that composing by *user satisfaction* beats composing
//! by classic network metrics. These baselines make that claim
//! measurable:
//!
//! * [`exhaustive`] — the exact optimum by enumerating every simple,
//!   format-distinct chain (ground truth for the Figure-5 optimality
//!   argument; exponential, test/bench sized graphs only),
//! * [`structural::fewest_hops`] — shortest chain by hop count,
//! * [`structural::widest_path`] — maximize the bottleneck bandwidth,
//! * [`structural::cheapest_path`] — minimize a structural price proxy,
//! * [`random_walk`] — a seeded random feasible chain.
//!
//! Every baseline *labels* its chosen chain with the same
//! [`ExtendContext`](crate::select::label::ExtendContext) the greedy
//! algorithm uses, so satisfactions are directly comparable.

pub mod exhaustive;
pub mod random_walk;
pub mod structural;

use crate::graph::{AdaptationGraph, EdgeId};
use crate::select::label::{ExtendContext, Label};
use crate::select::{ChainStep, SelectedChain};
use crate::Result;

/// The result of a baseline run.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// The labelled chain.
    pub chain: SelectedChain,
    /// Edges of the chain, in order.
    pub edges: Vec<EdgeId>,
    /// How many states/paths the algorithm explored.
    pub explored: usize,
}

/// Label a concrete chain of edges from the sender, returning the chain
/// of labels, or `None` if some step is infeasible (bandwidth/budget) or
/// the edges do not connect.
pub fn label_edge_path(ctx: &ExtendContext<'_>, edges: &[EdgeId]) -> Result<Option<Vec<Label>>> {
    let first = match edges.first() {
        Some(&e) => ctx.graph.edge(e)?,
        None => return Ok(None),
    };
    let sender_labels = ctx.sender_labels()?;
    let mut current = match sender_labels
        .into_iter()
        .find(|l| l.state.output_format == first.format)
    {
        Some(l) => l,
        None => return Ok(None),
    };
    let mut labels = vec![current];
    for (i, &edge_id) in edges.iter().enumerate() {
        let edge = ctx.graph.edge(edge_id)?;
        if edge.from != current.state.vertex || edge.format != current.state.output_format {
            return Ok(None); // disconnected chain
        }
        let extensions = ctx.extend(&current, edge_id)?;
        // Pick the extension whose output format matches the next edge,
        // or (at the last step) the best extension into the target.
        let next_format = edges.get(i + 1).map(|&e| ctx.graph.edge(e)).transpose()?;
        let chosen = match next_format {
            Some(next_edge) => extensions
                .into_iter()
                .find(|l| l.state.output_format == next_edge.format),
            None => extensions.into_iter().max_by(|a, b| {
                a.satisfaction
                    .partial_cmp(&b.satisfaction)
                    .expect("satisfactions are finite")
            }),
        };
        current = match chosen {
            Some(l) => l,
            None => return Ok(None),
        };
        labels.push(current);
    }
    Ok(Some(labels))
}

/// Materialize a [`SelectedChain`] from a chain of labels.
pub fn chain_from_labels(graph: &AdaptationGraph, labels: &[Label]) -> Result<SelectedChain> {
    let mut steps = Vec::with_capacity(labels.len());
    for label in labels {
        steps.push(ChainStep {
            vertex: label.state.vertex,
            name: graph.vertex(label.state.vertex)?.name.clone(),
            output_format: label.state.output_format,
            params: label.params,
            satisfaction: label.satisfaction,
            accumulated_cost: label.accumulated_cost,
        });
    }
    let last = labels.last().expect("labelled chains are non-empty");
    Ok(SelectedChain {
        satisfaction: last.satisfaction,
        total_cost: last.accumulated_cost,
        steps,
    })
}
