//! Structural baselines: pick a chain by a network metric, then label it.
//!
//! These are the algorithms the paper implicitly compares against when it
//! notes that its optimization criterion "is the user's satisfaction, and
//! not the available bandwidth or the number of hops" (Section 4.4).
//! Each runs over the same `(vertex, output format)` state graph the
//! greedy search uses, but ranks paths by a network metric; the chosen
//! chain is then labelled with the shared semantics, so its satisfaction
//! is directly comparable. A structurally chosen chain may turn out
//! infeasible (bandwidth/budget) — that is part of the comparison.

use crate::baseline::{chain_from_labels, label_edge_path, BaselineResult};
use crate::graph::{EdgeId, VertexId};
use crate::select::label::ExtendContext;
use crate::Result;
use std::collections::{BTreeMap, VecDeque};

type State = (VertexId, qosc_media::FormatId);

/// Fewest-hops chain (BFS over states), labelled. Returns `None` when the
/// receiver is structurally unreachable or the shortest chain is
/// infeasible under the QoS constraints.
pub fn fewest_hops(ctx: &ExtendContext<'_>) -> Result<Option<BaselineResult>> {
    let graph = ctx.graph;
    let receiver = match graph.receiver() {
        Some(r) => r,
        None => return Ok(None),
    };
    let mut parents: BTreeMap<State, (State, EdgeId)> = BTreeMap::new();
    let mut visited: Vec<State> = Vec::new();
    let mut queue: VecDeque<State> = VecDeque::new();
    for label in ctx.sender_labels()? {
        let state = (label.state.vertex, label.state.output_format);
        if !visited.contains(&state) {
            visited.push(state);
            queue.push_back(state);
        }
    }
    let mut explored = 0usize;
    let mut target: Option<State> = None;
    'bfs: while let Some((vertex, format)) = queue.pop_front() {
        for &edge_id in graph.out_edges(vertex) {
            let edge = graph.edge(edge_id)?;
            if edge.format != format {
                continue;
            }
            explored += 1;
            for conversion in graph.vertex(edge.to)?.conversions_from(format) {
                let next: State = (edge.to, conversion.output);
                if visited.contains(&next) {
                    continue;
                }
                visited.push(next);
                parents.insert(next, ((vertex, format), edge_id));
                if edge.to == receiver {
                    target = Some(next);
                    break 'bfs;
                }
                queue.push_back(next);
            }
        }
    }
    finish(ctx, parents, target, explored)
}

/// Widest chain: maximize the bottleneck `available_bps` along the chain
/// (a max-min Dijkstra over states), labelled.
pub fn widest_path(ctx: &ExtendContext<'_>) -> Result<Option<BaselineResult>> {
    best_first(
        ctx,
        |width, edge_bps| width.min(edge_bps),
        f64::INFINITY,
        |a, b| a > b,
    )
}

/// Cheapest chain by the structural price proxy
/// `Σ (price_flat + price_per_mbit)` along the edges, labelled.
pub fn cheapest_path(ctx: &ExtendContext<'_>) -> Result<Option<BaselineResult>> {
    best_first(ctx, |cost, edge_price| cost + edge_price, 0.0, |a, b| a < b)
}

/// Generic best-first structural search over states. `combine` folds the
/// metric along a path; `better` orders two metric values.
fn best_first(
    ctx: &ExtendContext<'_>,
    combine: fn(f64, f64) -> f64,
    initial: f64,
    better: fn(f64, f64) -> bool,
) -> Result<Option<BaselineResult>> {
    let graph = ctx.graph;
    let receiver = match graph.receiver() {
        Some(r) => r,
        None => return Ok(None),
    };
    let mut best_metric: BTreeMap<State, f64> = BTreeMap::new();
    let mut parents: BTreeMap<State, (State, EdgeId)> = BTreeMap::new();
    let mut settled: Vec<State> = Vec::new();
    for label in ctx.sender_labels()? {
        best_metric.insert((label.state.vertex, label.state.output_format), initial);
    }
    let mut explored = 0usize;
    let mut target: Option<State> = None;
    loop {
        // Pick the unsettled state with the best metric (linear scan —
        // baseline graphs are test/bench sized).
        let current = best_metric
            .iter()
            .filter(|(s, _)| !settled.contains(s))
            .max_by(|(_, a), (_, b)| {
                if better(**a, **b) {
                    std::cmp::Ordering::Greater
                } else if better(**b, **a) {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .map(|(s, m)| (*s, *m));
        let ((vertex, format), metric) = match current {
            Some(c) => c,
            None => break,
        };
        settled.push((vertex, format));
        if vertex == receiver {
            target = Some((vertex, format));
            break;
        }
        for &edge_id in graph.out_edges(vertex) {
            let edge = graph.edge(edge_id)?;
            if edge.format != format {
                continue;
            }
            explored += 1;
            let edge_value = match () {
                // widest uses bandwidth; cheapest uses the price proxy.
                _ if initial.is_infinite() => edge.available_bps,
                _ => edge.price_flat + edge.price_per_mbit,
            };
            let candidate_metric = combine(metric, edge_value);
            for conversion in graph.vertex(edge.to)?.conversions_from(format) {
                let next: State = (edge.to, conversion.output);
                if settled.contains(&next) {
                    continue;
                }
                let improves = match best_metric.get(&next) {
                    Some(&existing) => better(candidate_metric, existing),
                    None => true,
                };
                if improves {
                    best_metric.insert(next, candidate_metric);
                    parents.insert(next, ((vertex, format), edge_id));
                }
            }
        }
    }
    finish(ctx, parents, target, explored)
}

/// Reconstruct edges from the parent table and label the chain.
fn finish(
    ctx: &ExtendContext<'_>,
    parents: BTreeMap<State, (State, EdgeId)>,
    target: Option<State>,
    explored: usize,
) -> Result<Option<BaselineResult>> {
    let target = match target {
        Some(t) => t,
        None => return Ok(None),
    };
    let mut edges = Vec::new();
    let mut cursor = target;
    while let Some((parent, edge)) = parents.get(&cursor) {
        edges.push(*edge);
        cursor = *parent;
    }
    edges.reverse();
    let labels = match label_edge_path(ctx, &edges)? {
        Some(l) => l,
        None => return Ok(None), // structurally fine, QoS-infeasible
    };
    let chain = chain_from_labels(ctx.graph, &labels)?;
    Ok(Some(BaselineResult {
        chain,
        edges,
        explored,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build::build;
    use crate::graph::{AdaptationGraph, BuildInput};
    use qosc_media::{
        Axis, AxisDomain, BitrateModel, ContentVariant, DomainVector, FormatRegistry, FormatSpec,
        MediaKind, ParamVector,
    };
    use qosc_netsim::{Link, Network, Node, Topology};
    use qosc_profiles::{ConversionSpec, ServiceSpec};
    use qosc_satisfaction::{OptimizeOptions, SatisfactionProfile};
    use qosc_services::{ServiceRegistry, TranscoderDescriptor};

    /// Two routes to the receiver:
    /// * direct:   sender —A→ receiver        (1 hop, narrow 10 kbit/s link)
    /// * indirect: sender —A→ T —B→ receiver  (2 hops, wide links, cap 30)
    fn fixture() -> (FormatRegistry, AdaptationGraph) {
        let mut formats = FormatRegistry::new();
        let linear = BitrateModel::LinearOnAxis {
            axis: Axis::FrameRate,
            slope: 1000.0,
        };
        let fa = formats.register(FormatSpec::new("A", MediaKind::Video, linear));
        let fb = formats.register(FormatSpec::new("B", MediaKind::Video, linear));
        let mut topo = Topology::new();
        let s = topo.add_node(Node::unconstrained("s"));
        let m = topo.add_node(Node::unconstrained("m"));
        let r = topo.add_node(Node::unconstrained("r"));
        // Narrow, pricey direct link.
        topo.connect(Link {
            a: s,
            b: r,
            capacity_bps: 10_000.0,
            delay_us: 100,
            loss: 0.0,
            price_per_mbit: 0.0,
            price_flat: 5.0,
        })
        .unwrap();
        // Wide cheap two-hop route. Delays chosen so routing prefers the
        // direct link for s→r (100 < 2 × 1000), keeping the two
        // adaptation-graph paths on distinct network routes.
        topo.connect(Link {
            a: s,
            b: m,
            capacity_bps: 1e9,
            delay_us: 1_000,
            loss: 0.0,
            price_per_mbit: 0.0,
            price_flat: 1.0,
        })
        .unwrap();
        topo.connect(Link {
            a: m,
            b: r,
            capacity_bps: 1e9,
            delay_us: 1_000,
            loss: 0.0,
            price_per_mbit: 0.0,
            price_flat: 1.0,
        })
        .unwrap();
        let network = Network::new(topo);
        let mut services = ServiceRegistry::new();
        let cap = |c: f64| {
            DomainVector::new().with(Axis::FrameRate, AxisDomain::Continuous { min: 0.0, max: c })
        };
        let spec = ServiceSpec::new("T", vec![ConversionSpec::new("A", "B", cap(30.0))]);
        services.register_static(TranscoderDescriptor::resolve(&spec, &formats, m).unwrap());
        let variants = vec![ContentVariant::new(fa, cap(30.0))];
        let graph = build(&BuildInput {
            formats: &formats,
            services: &services,
            network: &network,
            variants: &variants,
            sender_host: s,
            receiver_host: r,
            decoders: &[fa, fb],
            receiver_caps: ParamVector::new(),
        })
        .unwrap();
        (formats, graph)
    }

    fn ctx<'a>(
        formats: &'a FormatRegistry,
        graph: &'a AdaptationGraph,
        profile: &'a SatisfactionProfile,
    ) -> ExtendContext<'a> {
        ExtendContext {
            graph,
            formats,
            profile,
            budget: f64::INFINITY,
            optimizer: OptimizeOptions::default(),
            penalties: &[],
        }
    }

    #[test]
    fn fewest_hops_takes_the_narrow_direct_path() {
        let (formats, graph) = fixture();
        let profile = SatisfactionProfile::paper_table1();
        let result = fewest_hops(&ctx(&formats, &graph, &profile))
            .unwrap()
            .expect("direct path is feasible");
        assert_eq!(result.chain.names(), vec!["sender", "receiver"]);
        // 10 kbit/s → 10 fps → satisfaction 1/3: hop count is a bad metric.
        assert!((result.chain.satisfaction - 1.0 / 3.0).abs() < 1e-4);
    }

    #[test]
    fn widest_path_takes_the_wide_route() {
        let (formats, graph) = fixture();
        let profile = SatisfactionProfile::paper_table1();
        let result = widest_path(&ctx(&formats, &graph, &profile))
            .unwrap()
            .expect("wide route feasible");
        assert_eq!(result.chain.names(), vec!["sender", "T", "receiver"]);
        assert!((result.chain.satisfaction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cheapest_path_minimizes_price_proxy() {
        let (formats, graph) = fixture();
        let profile = SatisfactionProfile::paper_table1();
        let result = cheapest_path(&ctx(&formats, &graph, &profile))
            .unwrap()
            .expect("cheap route feasible");
        // Proxy: direct = 5, via T = 1 + 1 = 2 → the indirect route wins.
        assert_eq!(result.chain.names(), vec!["sender", "T", "receiver"]);
        assert!((result.chain.total_cost - 2.0).abs() < 1e-9);
    }
}
