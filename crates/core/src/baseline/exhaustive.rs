//! The exhaustive exact optimum.
//!
//! Enumerates every simple (vertex-distinct), format-distinct chain from
//! the sender to the receiver, labels each with the shared extension
//! semantics, and returns the chain with the maximum final satisfaction
//! (ties: lower cost, then fewer hops). Exponential — this is the ground
//! truth the Figure-5 optimality property is verified against, not a
//! production algorithm.

use crate::baseline::{chain_from_labels, BaselineResult};
use crate::graph::{AdaptationGraph, EdgeId, VertexId};
use crate::select::label::{ExtendContext, Label};
use crate::{CoreError, Result};

/// Options for the exhaustive search.
#[derive(Debug, Clone, Copy)]
pub struct ExhaustiveOptions {
    /// Enforce the paper's formats-distinct-along-a-path rule.
    pub formats_distinct: bool,
    /// Abort after exploring this many extensions (safety valve).
    pub max_expansions: usize,
}

impl Default for ExhaustiveOptions {
    fn default() -> ExhaustiveOptions {
        ExhaustiveOptions {
            formats_distinct: true,
            max_expansions: 2_000_000,
        }
    }
}

struct Search<'a, 'b> {
    ctx: &'a ExtendContext<'b>,
    receiver: VertexId,
    options: ExhaustiveOptions,
    expansions: usize,
    best: Option<(Vec<Label>, Vec<EdgeId>)>,
}

/// Run the exhaustive search. Returns `None` when no feasible chain
/// exists; errors if the expansion budget trips.
pub fn exhaustive_optimum(
    ctx: &ExtendContext<'_>,
    options: ExhaustiveOptions,
) -> Result<Option<BaselineResult>> {
    let receiver = match ctx.graph.receiver() {
        Some(r) => r,
        None => return Ok(None),
    };
    let mut search = Search {
        ctx,
        receiver,
        options,
        expansions: 0,
        best: None,
    };
    for sender_label in ctx.sender_labels()? {
        let mut on_path = vec![sender_label.state.vertex];
        let mut formats_seen = Vec::new();
        let mut labels = vec![sender_label];
        let mut edges = Vec::new();
        search.dfs(&mut labels, &mut edges, &mut on_path, &mut formats_seen)?;
    }
    match search.best {
        Some((labels, edges)) => {
            let chain = chain_from_labels(ctx.graph, &labels)?;
            Ok(Some(BaselineResult {
                chain,
                edges,
                explored: search.expansions,
            }))
        }
        None => Ok(None),
    }
}

impl Search<'_, '_> {
    fn dfs(
        &mut self,
        labels: &mut Vec<Label>,
        edges: &mut Vec<EdgeId>,
        on_path: &mut Vec<VertexId>,
        formats_seen: &mut Vec<qosc_media::FormatId>,
    ) -> Result<()> {
        let current = *labels.last().expect("path starts at the sender");
        let graph: &AdaptationGraph = self.ctx.graph;
        for &edge_id in graph.out_edges(current.state.vertex) {
            let edge = graph.edge(edge_id)?;
            if edge.format != current.state.output_format {
                continue;
            }
            if on_path.contains(&edge.to) {
                continue; // simple paths only
            }
            if self.options.formats_distinct && formats_seen.contains(&edge.format) {
                continue;
            }
            self.expansions += 1;
            if self.expansions > self.options.max_expansions {
                return Err(CoreError::SearchBudgetExceeded {
                    explored: self.expansions,
                });
            }
            for extension in self.ctx.extend(&current, edge_id)? {
                labels.push(extension);
                edges.push(edge_id);
                if extension.state.vertex == self.receiver {
                    self.consider(labels, edges);
                } else {
                    on_path.push(edge.to);
                    formats_seen.push(edge.format);
                    self.dfs(labels, edges, on_path, formats_seen)?;
                    formats_seen.pop();
                    on_path.pop();
                }
                edges.pop();
                labels.pop();
            }
        }
        Ok(())
    }

    fn consider(&mut self, labels: &[Label], edges: &[EdgeId]) {
        let candidate = labels.last().expect("non-empty");
        let better = match &self.best {
            None => true,
            Some((best_labels, best_edges)) => {
                let best = best_labels.last().expect("non-empty");
                candidate.satisfaction > best.satisfaction
                    || (candidate.satisfaction == best.satisfaction
                        && (candidate.accumulated_cost < best.accumulated_cost
                            || (candidate.accumulated_cost == best.accumulated_cost
                                && edges.len() < best_edges.len())))
            }
        };
        if better {
            self.best = Some((labels.to_vec(), edges.to_vec()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build::build;
    use crate::graph::BuildInput;
    use crate::select::{select_chain, SelectOptions};
    use qosc_media::{
        Axis, AxisDomain, BitrateModel, ContentVariant, DomainVector, FormatRegistry, FormatSpec,
        MediaKind, ParamVector,
    };
    use qosc_netsim::{Network, Node, Topology};
    use qosc_profiles::{ConversionSpec, ServiceSpec};
    use qosc_satisfaction::{OptimizeOptions, SatisfactionProfile};
    use qosc_services::{ServiceRegistry, TranscoderDescriptor};

    /// A diamond with caps 30/20 on the two middle services.
    fn diamond() -> (FormatRegistry, crate::graph::AdaptationGraph) {
        let mut formats = FormatRegistry::new();
        let linear = BitrateModel::LinearOnAxis {
            axis: Axis::FrameRate,
            slope: 1000.0,
        };
        let fa = formats.register(FormatSpec::new("A", MediaKind::Video, linear));
        let fb = formats.register(FormatSpec::new("B", MediaKind::Video, linear));
        let mut topo = Topology::new();
        let s = topo.add_node(Node::unconstrained("s"));
        let m1 = topo.add_node(Node::unconstrained("m1"));
        let m2 = topo.add_node(Node::unconstrained("m2"));
        let r = topo.add_node(Node::unconstrained("r"));
        for (a, b) in [(s, m1), (s, m2), (m1, r), (m2, r)] {
            topo.connect_simple(a, b, 1e9).unwrap();
        }
        let network = Network::new(topo);
        let mut services = ServiceRegistry::new();
        let cap = |c: f64| {
            DomainVector::new().with(Axis::FrameRate, AxisDomain::Continuous { min: 0.0, max: c })
        };
        for (name, host, c) in [("T1", m1, 20.0), ("T2", m2, 30.0)] {
            let spec = ServiceSpec::new(name, vec![ConversionSpec::new("A", "B", cap(c))]);
            services.register_static(TranscoderDescriptor::resolve(&spec, &formats, host).unwrap());
        }
        let variants = vec![ContentVariant::new(fa, cap(30.0))];
        let graph = build(&BuildInput {
            formats: &formats,
            services: &services,
            network: &network,
            variants: &variants,
            sender_host: s,
            receiver_host: r,
            decoders: &[fb],
            receiver_caps: ParamVector::new(),
        })
        .unwrap();
        (formats, graph)
    }

    #[test]
    fn exhaustive_matches_greedy_on_diamond() {
        let (formats, graph) = diamond();
        let profile = SatisfactionProfile::paper_table1();
        let ctx = ExtendContext {
            graph: &graph,
            formats: &formats,
            profile: &profile,
            budget: f64::INFINITY,
            optimizer: OptimizeOptions::default(),
            penalties: &[],
        };
        let exact = exhaustive_optimum(&ctx, ExhaustiveOptions::default())
            .unwrap()
            .expect("feasible");
        let greedy = select_chain(
            &graph,
            &formats,
            &profile,
            f64::INFINITY,
            &SelectOptions::default(),
        )
        .unwrap()
        .chain
        .expect("feasible");
        assert_eq!(exact.chain.satisfaction, greedy.satisfaction);
        assert_eq!(exact.chain.names(), vec!["sender", "T2", "receiver"]);
        assert!(exact.explored >= 2, "both branches explored");
    }

    #[test]
    fn expansion_budget_trips() {
        let (formats, graph) = diamond();
        let profile = SatisfactionProfile::paper_table1();
        let ctx = ExtendContext {
            graph: &graph,
            formats: &formats,
            profile: &profile,
            budget: f64::INFINITY,
            optimizer: OptimizeOptions::default(),
            penalties: &[],
        };
        let err = exhaustive_optimum(
            &ctx,
            ExhaustiveOptions {
                formats_distinct: true,
                max_expansions: 1,
            },
        );
        assert!(matches!(err, Err(CoreError::SearchBudgetExceeded { .. })));
    }
}
