//! Admission control and overload protection.
//!
//! `serve_batch_resilient` survives *faults*; this module makes the
//! front-end survive *load*. Past saturation an unprotected queue
//! grows without bound, every request times out after consuming a
//! worker, and goodput collapses batch-wide. The admission queue in
//! front of the composition engine keeps goodput flat instead:
//!
//! * **Deadline-aware shedding** — a request whose *predicted* queue
//!   wait already exceeds its `deadline_budget_us` is rejected
//!   immediately (shed) instead of timing out after consuming a worker.
//!   Work we know we cannot finish in time is refused at the door.
//! * **Priority classes** — [`PriorityClass::Interactive`] /
//!   `Standard` / `Background` with strict-priority dequeue and
//!   per-class bounded queues, so background traffic can never starve
//!   interactive requests.
//! * **Adaptive concurrency** — an AIMD limiter on observed composition
//!   latency versus deadline headroom: deadline-met completions
//!   additively widen the limit, a deadline miss multiplicatively
//!   shrinks it. Clocked on recorded virtual time (like the engine's
//!   recorded-not-slept backoff), so the limit trajectory is
//!   machine-independent.
//! * **Brown-out** — sustained queue pressure lowers the starting
//!   [`DegradationRung`] for admitted requests: serve more users
//!   slightly degraded instead of fewer users at full quality. A
//!   degraded composition is also cheaper (its virtual service cost is
//!   scaled down), which is what actually drains the queue. Pressure
//!   receding steps the rung back up.
//!
//! Everything runs on a **virtual clock**: arrivals carry virtual
//! timestamps and virtual service costs (microseconds of simulated
//! composition work), and [`plan_admission`] is a sequential
//! discrete-event simulation over them — pure in `(arrivals, config)`,
//! so decisions, queue waits and the AIMD trajectory are byte-identical
//! across runs, machines, and worker counts. The *plans* of admitted
//! requests are then computed by the real composer on a worker pool;
//! admission is a front-end, not a scoring change.

use crate::engine::DegradationRung;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Scheduling class of an offered request, best first. Strict-priority
/// dequeue: a queued `Interactive` request always starts before a
/// queued `Standard` one, which always starts before `Background`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PriorityClass {
    /// A user is waiting on the response; tight deadline.
    Interactive,
    /// Ordinary foreground traffic.
    Standard,
    /// Prefetch/batch traffic; loose or no deadline, first to wait.
    Background,
}

impl PriorityClass {
    /// All classes, best first.
    pub const ALL: [PriorityClass; 3] = [
        PriorityClass::Interactive,
        PriorityClass::Standard,
        PriorityClass::Background,
    ];

    /// Queue index (0 = highest priority).
    pub fn index(self) -> usize {
        match self {
            PriorityClass::Interactive => 0,
            PriorityClass::Standard => 1,
            PriorityClass::Background => 2,
        }
    }

    /// Stable machine-readable name (used by scorecards).
    pub fn label(self) -> &'static str {
        match self {
            PriorityClass::Interactive => "interactive",
            PriorityClass::Standard => "standard",
            PriorityClass::Background => "background",
        }
    }
}

impl std::fmt::Display for PriorityClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Virtual-time metadata of one offered request. Parallel to the
/// `CompositionRequest` slice handed to
/// [`serve_batch_with_admission`](crate::engine::serve_batch_with_admission).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivalMeta {
    /// Virtual arrival time, microseconds.
    pub arrival_us: u64,
    /// Scheduling class.
    pub priority: PriorityClass,
    /// Predicted composition cost at full quality, virtual
    /// microseconds. Brown-out scales it down per rung.
    pub service_cost_us: u64,
    /// End-to-end budget: the request is *good* only if its virtual
    /// finish lands within `arrival_us + budget`. `None` = best-effort.
    pub deadline_budget_us: Option<u64>,
}

/// Why a request was refused at (or timed out inside) the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Its class queue was at capacity.
    QueueFull,
    /// The predicted queue wait alone already exceeded its deadline
    /// budget — finishing in time was impossible at arrival.
    PredictedLate,
    /// Admitted, but the deadline lapsed while still queued (the
    /// prediction was optimistic); dropped at dequeue without consuming
    /// a worker.
    QueueTimeout,
}

impl ShedReason {
    /// Stable machine-readable name.
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::PredictedLate => "predicted_late",
            ShedReason::QueueTimeout => "queue_timeout",
        }
    }
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Tuning for the admission front-end. All-integer so the simulation
/// is exactly reproducible; `Copy` so it rides inside
/// [`ResilientEngineConfig`](crate::engine::ResilientEngineConfig).
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Refuse requests whose predicted queue wait exceeds their budget.
    pub deadline_shed: bool,
    /// Strict-priority dequeue with per-class queues. When `false`
    /// every class shares one FIFO (capacity ×3).
    pub priority: bool,
    /// Lower the starting rung under sustained queue pressure.
    pub brownout: bool,
    /// Run the AIMD limiter. When `false` the limit stays at
    /// `initial_limit`.
    pub adaptive: bool,
    /// Bounded queue capacity per class (`usize::MAX` = unbounded, the
    /// unprotected baseline).
    pub queue_capacity: usize,
    /// Knee of the virtual latency curve: running more compositions
    /// than this inflates their service time (`overload_penalty_pct`).
    pub virtual_cores: u32,
    /// Concurrency limit at t=0.
    pub initial_limit: u32,
    /// AIMD floor.
    pub min_limit: u32,
    /// AIMD ceiling.
    pub max_limit: u32,
    /// Additive increase applied after `aimd_window` deadline-met
    /// completions.
    pub aimd_increase: u32,
    /// Deadline-met completions per additive increase.
    pub aimd_window: u32,
    /// Multiplicative decrease on a deadline miss: `limit := limit *
    /// pct / 100`.
    pub aimd_decrease_pct: u32,
    /// Minimum virtual time between two decreases (one burst of misses
    /// is one signal, not ten).
    pub aimd_cooldown_us: u64,
    /// Service-time inflation, percent per running composition above
    /// `virtual_cores`.
    pub overload_penalty_pct: u32,
    /// Queue occupancy (percent of total capacity) that arms a
    /// brown-out step down.
    pub brownout_enter_pct: u32,
    /// Occupancy at or below which recovery arms a step up.
    pub brownout_exit_pct: u32,
    /// Consecutive arrivals the occupancy must hold beyond a watermark
    /// before the rung steps ("sustained", not one burst).
    pub brownout_dwell: u32,
    /// Virtual service-cost multiplier per rung, percent, indexed by
    /// [`DegradationRung::LADDER`] — degraded compositions are cheaper,
    /// which is what drains the queue.
    pub rung_cost_pct: [u32; 4],
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            deadline_shed: true,
            priority: true,
            brownout: true,
            adaptive: true,
            queue_capacity: 64,
            virtual_cores: 4,
            initial_limit: 4,
            min_limit: 1,
            max_limit: 16,
            aimd_increase: 1,
            aimd_window: 8,
            aimd_decrease_pct: 50,
            aimd_cooldown_us: 50_000,
            overload_penalty_pct: 20,
            brownout_enter_pct: 50,
            brownout_exit_pct: 15,
            brownout_dwell: 8,
            rung_cost_pct: [100, 85, 70, 55],
        }
    }
}

impl AdmissionConfig {
    /// The unprotected baseline: one unbounded FIFO, fixed concurrency,
    /// no shedding, no brown-out — what `serve_batch_resilient` does
    /// implicitly today.
    pub fn unprotected() -> AdmissionConfig {
        AdmissionConfig {
            deadline_shed: false,
            priority: false,
            brownout: false,
            adaptive: false,
            queue_capacity: usize::MAX,
            ..AdmissionConfig::default()
        }
    }

    /// Deadline shedding + bounded queue + adaptive limit, one class.
    pub fn shed_only() -> AdmissionConfig {
        AdmissionConfig {
            priority: false,
            brownout: false,
            ..AdmissionConfig::default()
        }
    }

    /// Shedding plus strict-priority classes, no brown-out.
    pub fn shed_priority() -> AdmissionConfig {
        AdmissionConfig {
            brownout: false,
            ..AdmissionConfig::default()
        }
    }

    /// Everything on (the default).
    pub fn protected() -> AdmissionConfig {
        AdmissionConfig::default()
    }

    fn class_of(&self, priority: PriorityClass) -> usize {
        if self.priority {
            priority.index()
        } else {
            0
        }
    }

    fn per_queue_capacity(&self) -> usize {
        if self.priority {
            self.queue_capacity
        } else {
            self.queue_capacity.saturating_mul(3)
        }
    }

    fn rung_cost(&self, cost_us: u64, rung: DegradationRung) -> u64 {
        let pct = self.rung_cost_pct[rung as usize].max(1) as u64;
        cost_us.max(1).saturating_mul(pct) / 100
    }
}

/// What the admission queue decided for one offered request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionDecision {
    /// The request reached a worker (a composition will run).
    pub admitted: bool,
    /// Why it did not, when it did not.
    pub shed: Option<ShedReason>,
    /// Virtual time spent queued before starting (or before the
    /// queue-timeout drop).
    pub queue_wait_us: u64,
    /// Virtual service start (admitted only).
    pub start_us: u64,
    /// Virtual completion (admitted only).
    pub finish_us: u64,
    /// `finish - arrival` (admitted only; 0 when shed at arrival).
    pub latency_us: u64,
    /// Degradation rung the composition starts at — `Full` unless
    /// brown-out was active when the request started.
    pub start_rung: DegradationRung,
    /// Concurrency limit in force at start.
    pub limit_at_start: u32,
    /// The virtual finish landed within the deadline budget (always
    /// `true` for best-effort requests that were admitted).
    pub deadline_met: bool,
}

impl AdmissionDecision {
    fn shed(reason: ShedReason, queue_wait_us: u64) -> AdmissionDecision {
        AdmissionDecision {
            admitted: false,
            shed: Some(reason),
            queue_wait_us,
            start_us: 0,
            finish_us: 0,
            latency_us: 0,
            start_rung: DegradationRung::Full,
            limit_at_start: 0,
            deadline_met: false,
        }
    }
}

/// Aggregates over one admission plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionStats {
    /// Requests offered.
    pub offered: usize,
    /// Requests that reached a worker.
    pub admitted: usize,
    /// Shed: class queue at capacity.
    pub shed_queue_full: usize,
    /// Shed: predicted wait exceeded the budget at arrival.
    pub shed_predicted_late: usize,
    /// Shed: deadline lapsed while queued.
    pub shed_queue_timeout: usize,
    /// Admitted but finished past the budget.
    pub deadline_misses: usize,
    /// Deepest total queue observed.
    pub peak_queue_depth: usize,
    /// Most compositions running at once.
    pub peak_in_flight: u32,
    /// Concurrency limit after the last event.
    pub final_limit: u32,
    /// Lowest limit the AIMD controller reached.
    pub min_limit_seen: u32,
    /// Multiplicative decreases taken.
    pub limit_decreases: u32,
    /// Brown-out steps down taken.
    pub brownout_steps: u32,
    /// Worst starting rung handed to any admitted request.
    pub peak_rung: DegradationRung,
}

impl AdmissionStats {
    /// All sheds together.
    pub fn shed_total(&self) -> usize {
        self.shed_queue_full + self.shed_predicted_late + self.shed_queue_timeout
    }
}

/// One decision per offered request (by index), plus aggregates.
#[derive(Debug, Clone)]
pub struct AdmissionPlan {
    /// Indexed like the input arrivals.
    pub decisions: Vec<AdmissionDecision>,
    /// Aggregates.
    pub stats: AdmissionStats,
}

// ---------------------------------------------------------------------
// The simulation
// ---------------------------------------------------------------------

/// The incremental admission simulator: offer arrivals one at a time
/// (in nondecreasing virtual-arrival order), drain virtual completions
/// up to any point in time, and collect decisions as they are made.
///
/// [`plan_admission`] is a thin batch wrapper over this type; the
/// session engine drives it event-by-event instead, interleaving offers
/// (session opens, mid-stream re-compositions) with the rest of its
/// event loop. Both drivers produce identical decisions for identical
/// offer sequences: the simulation's state transitions happen only at
/// offers and at virtual completion instants, so *when* `drain_until`
/// is called (one final sweep vs. many small ones) cannot change the
/// outcome.
#[derive(Debug)]
pub struct AdmissionQueue {
    config: AdmissionConfig,
    arrivals: Vec<ArrivalMeta>,
    decisions: Vec<Option<AdmissionDecision>>,
    /// Tickets decided since the last [`take_newly_decided`]
    /// (in decision order).
    newly_decided: Vec<usize>,
    /// Per-class FIFO of request indices (class 0 only when
    /// `!config.priority`).
    queues: [VecDeque<usize>; 3],
    /// `(finish_us, seq, index)` of running compositions, min-first.
    running: BinaryHeap<Reverse<(u64, u64, usize)>>,
    in_flight: u32,
    limit: u32,
    successes: u32,
    last_decrease_us: Option<u64>,
    /// Brown-out state: current rung index into the ladder plus dwell
    /// counters.
    rung: usize,
    above: u32,
    below: u32,
    seq: u64,
    stats: AdmissionStats,
}

impl AdmissionQueue {
    /// An empty queue. Offers are accepted incrementally; callers must
    /// offer in nondecreasing `arrival_us` order (the virtual clock
    /// never rewinds).
    pub fn new(config: AdmissionConfig) -> AdmissionQueue {
        let limit = config
            .initial_limit
            .max(config.min_limit)
            .min(config.max_limit.max(1))
            .max(1);
        AdmissionQueue {
            config,
            arrivals: Vec::new(),
            decisions: Vec::new(),
            newly_decided: Vec::new(),
            queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            running: BinaryHeap::new(),
            in_flight: 0,
            limit,
            successes: 0,
            last_decrease_us: None,
            rung: 0,
            above: 0,
            below: 0,
            seq: 0,
            stats: AdmissionStats {
                offered: 0,
                final_limit: limit,
                min_limit_seen: limit,
                ..AdmissionStats::default()
            },
        }
    }

    /// Record a decision for `index` and remember it for
    /// [`take_newly_decided`].
    fn decide(&mut self, index: usize, decision: AdmissionDecision) {
        debug_assert!(self.decisions[index].is_none(), "one decision per offer");
        self.decisions[index] = Some(decision);
        self.newly_decided.push(index);
    }

    /// The decision for ticket `index`, once made.
    pub fn decision(&self, index: usize) -> Option<AdmissionDecision> {
        self.decisions.get(index).copied().flatten()
    }

    /// Tickets decided since the last call, in decision order. Sheds at
    /// arrival surface immediately after the `offer` that caused them;
    /// queued requests surface from the `drain_until`/`offer` call whose
    /// virtual completions started (or timed out) them.
    pub fn take_newly_decided(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.newly_decided)
    }

    /// Aggregates so far.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }

    /// Earliest pending virtual completion, if any composition is
    /// running — the next instant at which queued work can start (the
    /// session engine schedules its admission-pump events here).
    pub fn next_finish_us(&self) -> Option<u64> {
        self.running.peek().map(|&Reverse((finish, _, _))| finish)
    }

    /// Offers still queued without a decision (a running request is
    /// already decided — its decision was made when it started).
    pub fn undecided(&self) -> usize {
        self.decisions.iter().filter(|d| d.is_none()).count()
    }

    fn queued_total(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    fn current_rung(&self) -> DegradationRung {
        DegradationRung::LADDER[self.rung]
    }

    /// Complete every running composition with `finish <= t`, freeing
    /// slots and starting queued work at each completion instant.
    pub fn drain_until(&mut self, t: u64) {
        while let Some(&Reverse((finish, _, index))) = self.running.peek() {
            if finish > t {
                return;
            }
            self.running.pop();
            self.in_flight -= 1;
            self.aimd_on_completion(index, finish);
            self.start_queued(finish);
        }
    }

    fn aimd_on_completion(&mut self, index: usize, now_us: u64) {
        if !self.config.adaptive {
            return;
        }
        let met = self.decisions[index]
            .as_ref()
            .map(|d| d.deadline_met)
            .unwrap_or(true);
        if met {
            // Probe upward only while the limit is binding (slots were
            // saturated or work is waiting) — an idle system gives no
            // evidence that more concurrency would be safe.
            let binding = self.queued_total() > 0 || self.in_flight + 1 >= self.limit;
            if binding {
                self.successes += 1;
            }
            if self.successes >= self.config.aimd_window.max(1) {
                self.successes = 0;
                self.limit = self
                    .limit
                    .saturating_add(self.config.aimd_increase)
                    .min(self.config.max_limit.max(1));
            }
        } else {
            self.successes = 0;
            let cooled = self
                .last_decrease_us
                .map(|t0| now_us.saturating_sub(t0) >= self.config.aimd_cooldown_us)
                .unwrap_or(true);
            if cooled {
                let shrunk = (self.limit as u64 * self.config.aimd_decrease_pct.min(100) as u64
                    / 100) as u32;
                self.limit = shrunk.max(self.config.min_limit.max(1));
                self.last_decrease_us = Some(now_us);
                self.stats.limit_decreases += 1;
                self.stats.min_limit_seen = self.stats.min_limit_seen.min(self.limit);
            }
        }
        self.stats.final_limit = self.limit;
    }

    /// Brown-out controller, ticked once per arrival: occupancy held
    /// beyond a watermark for `brownout_dwell` consecutive arrivals
    /// steps the rung.
    fn tick_brownout(&mut self) {
        if !self.config.brownout || self.config.queue_capacity == usize::MAX {
            return;
        }
        let capacity = self.per_capacity_total();
        let occupancy_pct = (self.queued_total().saturating_mul(100) / capacity.max(1)) as u32;
        if occupancy_pct >= self.config.brownout_enter_pct {
            self.above += 1;
            self.below = 0;
            if self.above >= self.config.brownout_dwell.max(1)
                && self.rung + 1 < DegradationRung::LADDER.len()
            {
                self.rung += 1;
                self.above = 0;
                self.stats.brownout_steps += 1;
                self.stats.peak_rung = self.stats.peak_rung.max(self.current_rung());
            }
        } else if occupancy_pct <= self.config.brownout_exit_pct {
            self.below += 1;
            self.above = 0;
            if self.below >= self.config.brownout_dwell.max(1) && self.rung > 0 {
                self.rung -= 1;
                self.below = 0;
            }
        } else {
            self.above = 0;
            self.below = 0;
        }
    }

    fn per_capacity_total(&self) -> usize {
        self.config.queue_capacity.saturating_mul(3)
    }

    /// Predicted start time for a new arrival of `class` at `now`,
    /// assuming no further arrivals and the current limit: assign every
    /// queued request ahead of it to the earliest-freeing slot, then
    /// read off the earliest remaining slot.
    fn predict_start(&self, now: u64, class: usize) -> u64 {
        let limit = self.limit.max(1) as usize;
        let mut finishes: Vec<u64> = self
            .running
            .iter()
            .map(|&Reverse((finish, _, _))| finish)
            .collect();
        finishes.sort_unstable();
        // With in_flight > limit (the limit just shrank) the earliest
        // completions only bring us back down to the limit; drop them.
        let excess = finishes.len().saturating_sub(limit);
        let mut slots: BinaryHeap<Reverse<u64>> =
            finishes[excess..].iter().map(|&f| Reverse(f)).collect();
        while slots.len() < limit {
            slots.push(Reverse(now));
        }
        let rung = self.current_rung();
        let ahead = self.queues[..=class.min(2)]
            .iter()
            .flat_map(|q| q.iter())
            .copied();
        for index in ahead {
            let Some(Reverse(free_at)) = slots.pop() else {
                break;
            };
            let start = free_at.max(now);
            let cost = self
                .config
                .rung_cost(self.arrivals[index].service_cost_us, rung);
            slots.push(Reverse(start.saturating_add(cost)));
        }
        slots
            .peek()
            .map(|&Reverse(free_at)| free_at.max(now))
            .unwrap_or(now)
    }

    /// Start queued work while slots are free, highest class first,
    /// dropping requests whose deadline lapsed in the queue.
    fn start_queued(&mut self, now: u64) {
        while self.in_flight < self.limit {
            let Some(index) = self
                .queues
                .iter_mut()
                .find(|q| !q.is_empty())
                .and_then(VecDeque::pop_front)
            else {
                return;
            };
            let arrival = self.arrivals[index];
            let waited = now.saturating_sub(arrival.arrival_us);
            // Dropping a queue-lapsed request is part of deadline-aware
            // shedding; the unprotected baseline burns a worker on it
            // and finishes late.
            if self.config.deadline_shed {
                if let Some(budget) = arrival.deadline_budget_us {
                    if waited > budget {
                        self.decide(
                            index,
                            AdmissionDecision::shed(ShedReason::QueueTimeout, waited),
                        );
                        self.stats.shed_queue_timeout += 1;
                        continue;
                    }
                }
            }
            self.start(index, now);
        }
    }

    fn start(&mut self, index: usize, now: u64) {
        let arrival = self.arrivals[index];
        let rung = if self.config.brownout {
            self.current_rung()
        } else {
            DegradationRung::Full
        };
        let base = self.config.rung_cost(arrival.service_cost_us, rung);
        self.in_flight += 1;
        let excess = self
            .in_flight
            .saturating_sub(self.config.virtual_cores.max(1)) as u64;
        let penalty_pct = 100 + self.config.overload_penalty_pct as u64 * excess;
        let cost = base.saturating_mul(penalty_pct) / 100;
        let finish = now.saturating_add(cost.max(1));
        let latency = finish.saturating_sub(arrival.arrival_us);
        let met = arrival
            .deadline_budget_us
            .map(|budget| latency <= budget)
            .unwrap_or(true);
        if !met {
            self.stats.deadline_misses += 1;
        }
        self.stats.peak_in_flight = self.stats.peak_in_flight.max(self.in_flight);
        self.stats.admitted += 1;
        self.stats.peak_rung = self.stats.peak_rung.max(rung);
        self.decide(
            index,
            AdmissionDecision {
                admitted: true,
                shed: None,
                queue_wait_us: now.saturating_sub(arrival.arrival_us),
                start_us: now,
                finish_us: finish,
                latency_us: latency,
                start_rung: rung,
                limit_at_start: self.limit,
                deadline_met: met,
            },
        );
        self.seq += 1;
        self.running.push(Reverse((finish, self.seq, index)));
    }

    /// Offer one arrival and return its ticket (offer ordinal). The
    /// decision may already be available (shed at arrival, or started
    /// on an idle slot) or may land later, at a virtual completion
    /// inside a future `offer`/`drain_until`; poll
    /// [`take_newly_decided`](Self::take_newly_decided) either way.
    pub fn offer(&mut self, meta: ArrivalMeta) -> usize {
        debug_assert!(
            self.arrivals
                .last()
                .is_none_or(|prev| prev.arrival_us <= meta.arrival_us),
            "offers must arrive in nondecreasing virtual time"
        );
        let index = self.arrivals.len();
        self.arrivals.push(meta);
        self.decisions.push(None);
        self.stats.offered += 1;

        let arrival = self.arrivals[index];
        let now = arrival.arrival_us;
        self.drain_until(now);
        self.tick_brownout();
        let class = self.config.class_of(arrival.priority);
        if self.queues[class].len() >= self.config.per_queue_capacity() {
            self.decide(index, AdmissionDecision::shed(ShedReason::QueueFull, 0));
            self.stats.shed_queue_full += 1;
            return index;
        }
        if self.config.deadline_shed {
            if let Some(budget) = arrival.deadline_budget_us {
                let predicted_wait = self.predict_start(now, class).saturating_sub(now);
                if predicted_wait > budget {
                    self.decide(index, AdmissionDecision::shed(ShedReason::PredictedLate, 0));
                    self.stats.shed_predicted_late += 1;
                    return index;
                }
            }
        }
        self.queues[class].push_back(index);
        self.stats.peak_queue_depth = self.stats.peak_queue_depth.max(self.queued_total());
        self.start_queued(now);
        index
    }
}

/// Run the admission queue over `arrivals` (any order; processed by
/// ascending `arrival_us`, ties by index) and return one decision per
/// request. Pure and integer-only: identical inputs yield identical
/// plans on any machine.
pub fn plan_admission(arrivals: &[ArrivalMeta], config: &AdmissionConfig) -> AdmissionPlan {
    let mut order: Vec<usize> = (0..arrivals.len()).collect();
    order.sort_by_key(|&i| (arrivals[i].arrival_us, i));

    let mut queue = AdmissionQueue::new(*config);
    let mut ticket_of = vec![usize::MAX; arrivals.len()];
    for index in order {
        ticket_of[index] = queue.offer(arrivals[index]);
    }
    queue.drain_until(u64::MAX);

    let decisions: Vec<AdmissionDecision> = ticket_of
        .iter()
        .map(|&ticket| {
            queue
                .decision(ticket)
                .expect("every offered request gets a decision")
        })
        .collect();
    let stats = queue.stats();
    debug_assert_eq!(stats.admitted + stats.shed_total(), stats.offered);
    AdmissionPlan { decisions, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(
        arrival_us: u64,
        priority: PriorityClass,
        cost: u64,
        budget: Option<u64>,
    ) -> ArrivalMeta {
        ArrivalMeta {
            arrival_us,
            priority,
            service_cost_us: cost,
            deadline_budget_us: budget,
        }
    }

    #[test]
    fn empty_offer_list_is_fine() {
        let plan = plan_admission(&[], &AdmissionConfig::default());
        assert!(plan.decisions.is_empty());
        assert_eq!(plan.stats.offered, 0);
        assert_eq!(plan.stats.admitted, 0);
    }

    #[test]
    fn idle_queue_admits_immediately() {
        let arrivals = [meta(100, PriorityClass::Standard, 5_000, Some(50_000))];
        let plan = plan_admission(&arrivals, &AdmissionConfig::default());
        let d = &plan.decisions[0];
        assert!(d.admitted);
        assert_eq!(d.queue_wait_us, 0);
        assert_eq!(d.start_us, 100);
        assert_eq!(d.finish_us, 5_100);
        assert!(d.deadline_met);
        assert_eq!(d.start_rung, DegradationRung::Full);
    }

    #[test]
    fn strict_priority_dequeues_interactive_first() {
        // One slot; three arrivals land while it is busy. Background
        // arrived first but interactive starts first.
        let config = AdmissionConfig {
            initial_limit: 1,
            min_limit: 1,
            max_limit: 1,
            adaptive: false,
            brownout: false,
            deadline_shed: false,
            ..AdmissionConfig::default()
        };
        let arrivals = [
            meta(0, PriorityClass::Standard, 10_000, None),
            meta(1, PriorityClass::Background, 10_000, None),
            meta(2, PriorityClass::Interactive, 10_000, None),
        ];
        let plan = plan_admission(&arrivals, &config);
        assert!(plan.decisions.iter().all(|d| d.admitted));
        assert!(
            plan.decisions[2].start_us < plan.decisions[1].start_us,
            "interactive jumps the queued background request"
        );
    }

    #[test]
    fn fifo_without_priority_preserves_arrival_order() {
        let config = AdmissionConfig {
            initial_limit: 1,
            max_limit: 1,
            adaptive: false,
            priority: false,
            brownout: false,
            deadline_shed: false,
            ..AdmissionConfig::default()
        };
        let arrivals = [
            meta(0, PriorityClass::Background, 10_000, None),
            meta(1, PriorityClass::Interactive, 10_000, None),
        ];
        let plan = plan_admission(&arrivals, &config);
        assert!(plan.decisions[0].start_us < plan.decisions[1].start_us);
    }

    #[test]
    fn hopeless_requests_are_shed_at_arrival() {
        // One busy slot for 100ms; the second request has a 1ms budget:
        // its predicted wait alone (≈100ms) is hopeless.
        let config = AdmissionConfig {
            initial_limit: 1,
            max_limit: 1,
            adaptive: false,
            brownout: false,
            ..AdmissionConfig::default()
        };
        let arrivals = [
            meta(0, PriorityClass::Standard, 100_000, None),
            meta(10, PriorityClass::Standard, 5_000, Some(1_000)),
        ];
        let plan = plan_admission(&arrivals, &config);
        assert!(plan.decisions[0].admitted);
        assert_eq!(plan.decisions[1].shed, Some(ShedReason::PredictedLate));
        assert_eq!(plan.stats.shed_predicted_late, 1);
    }

    #[test]
    fn full_queue_sheds() {
        let config = AdmissionConfig {
            initial_limit: 1,
            max_limit: 1,
            adaptive: false,
            brownout: false,
            deadline_shed: false,
            queue_capacity: 1,
            ..AdmissionConfig::default()
        };
        // Slot busy, queue holds one, the third is refused.
        let arrivals = [
            meta(0, PriorityClass::Standard, 100_000, None),
            meta(1, PriorityClass::Standard, 100_000, None),
            meta(2, PriorityClass::Standard, 100_000, None),
        ];
        let plan = plan_admission(&arrivals, &config);
        assert_eq!(plan.decisions[2].shed, Some(ShedReason::QueueFull));
        assert_eq!(plan.stats.shed_queue_full, 1);
    }

    #[test]
    fn queue_timeout_drops_without_consuming_a_worker() {
        // The standard request is admitted on an honest prediction
        // (≈50ms wait, 60ms budget), but an interactive request then
        // jumps the queue and pushes its real wait past the budget: it
        // is dropped at dequeue time, not started late.
        let config = AdmissionConfig {
            initial_limit: 1,
            max_limit: 1,
            adaptive: false,
            brownout: false,
            ..AdmissionConfig::default()
        };
        let arrivals = [
            meta(0, PriorityClass::Standard, 50_000, None),
            meta(10, PriorityClass::Standard, 5_000, Some(60_000)),
            meta(20, PriorityClass::Interactive, 50_000, None),
        ];
        let plan = plan_admission(&arrivals, &config);
        assert!(plan.decisions[2].admitted, "interactive jumps ahead");
        assert_eq!(plan.decisions[1].shed, Some(ShedReason::QueueTimeout));
        assert!(plan.decisions[1].queue_wait_us > 60_000);

        // The unprotected baseline never sheds: everything is admitted
        // and burns a worker, however late.
        let unprotected = AdmissionConfig {
            initial_limit: 1,
            max_limit: 1,
            ..AdmissionConfig::unprotected()
        };
        let plan = plan_admission(&arrivals, &unprotected);
        assert_eq!(plan.stats.shed_total(), 0);
        assert!(plan.decisions.iter().all(|d| d.admitted));
    }

    #[test]
    fn aimd_backs_off_on_misses_and_recovers_on_hits() {
        let config = AdmissionConfig {
            initial_limit: 8,
            min_limit: 1,
            max_limit: 8,
            virtual_cores: 2,
            brownout: false,
            deadline_shed: false,
            aimd_cooldown_us: 0,
            ..AdmissionConfig::default()
        };
        // A burst of impossible deadlines: every completion is a miss.
        let misses: Vec<ArrivalMeta> = (0..16)
            .map(|i| meta(i, PriorityClass::Standard, 50_000, Some(1)))
            .collect();
        let plan = plan_admission(&misses, &config);
        assert!(plan.stats.limit_decreases > 0, "misses shrink the limit");
        assert!(plan.stats.min_limit_seen < 8);
        assert!(plan.stats.final_limit >= config.min_limit);

        // Comfortable deadlines: the limit never shrinks.
        let hits: Vec<ArrivalMeta> = (0..64)
            .map(|i| meta(i * 30_000, PriorityClass::Standard, 10_000, Some(1_000_000)))
            .collect();
        let plan = plan_admission(&hits, &config);
        assert_eq!(plan.stats.limit_decreases, 0);
        assert_eq!(
            plan.stats.final_limit, 8,
            "additive growth is capped at max"
        );
    }

    #[test]
    fn brownout_steps_down_under_pressure_and_back_up() {
        let config = AdmissionConfig {
            initial_limit: 1,
            max_limit: 1,
            adaptive: false,
            deadline_shed: false,
            queue_capacity: 4,
            brownout_dwell: 2,
            brownout_enter_pct: 25,
            brownout_exit_pct: 10,
            ..AdmissionConfig::default()
        };
        // Flood a single slot so the queue stays deep, then trickle.
        let mut arrivals: Vec<ArrivalMeta> = (0..10)
            .map(|i| meta(i, PriorityClass::Standard, 40_000, None))
            .collect();
        // Late stragglers arrive after the flood drained: enough of
        // them to walk the rung back up (each step needs `dwell`
        // consecutive low-occupancy arrivals).
        for i in 0..8u64 {
            arrivals.push(meta(
                2_000_000 + i * 100_000,
                PriorityClass::Standard,
                1_000,
                None,
            ));
        }
        let plan = plan_admission(&arrivals, &config);
        assert!(
            plan.stats.brownout_steps > 0,
            "pressure steps the rung down"
        );
        assert!(plan.stats.peak_rung > DegradationRung::Full);
        let flooded = plan.decisions[..10]
            .iter()
            .filter(|d| d.admitted && d.start_rung > DegradationRung::Full)
            .count();
        assert!(flooded > 0, "some flooded requests start degraded");
        let last = plan.decisions.last().unwrap();
        assert!(last.admitted);
        assert_eq!(
            last.start_rung,
            DegradationRung::Full,
            "pressure drained, rung recovered"
        );
    }

    #[test]
    fn plans_are_deterministic() {
        let arrivals: Vec<ArrivalMeta> = (0..200)
            .map(|i| {
                meta(
                    (i as u64 * 7_919) % 500_000,
                    PriorityClass::ALL[i % 3],
                    5_000 + (i as u64 % 11) * 3_000,
                    if i % 4 == 0 { None } else { Some(120_000) },
                )
            })
            .collect();
        let config = AdmissionConfig::default();
        let a = plan_admission(&arrivals, &config);
        let b = plan_admission(&arrivals, &config);
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn incremental_queue_matches_the_batch_planner() {
        // Drive the AdmissionQueue offer-by-offer with extra drains
        // interleaved at arbitrary points: drain granularity must not
        // change a single decision or stat versus the batch wrapper.
        let arrivals: Vec<ArrivalMeta> = (0..300)
            .map(|i| {
                meta(
                    (i as u64 * 7_919) % 400_000,
                    PriorityClass::ALL[(i * 5) % 3],
                    3_000 + (i as u64 % 13) * 2_500,
                    if i % 3 == 0 { None } else { Some(90_000) },
                )
            })
            .collect();
        for config in [
            AdmissionConfig::unprotected(),
            AdmissionConfig::shed_only(),
            AdmissionConfig::protected(),
        ] {
            let batch = plan_admission(&arrivals, &config);
            let mut order: Vec<usize> = (0..arrivals.len()).collect();
            order.sort_by_key(|&i| (arrivals[i].arrival_us, i));
            let mut queue = AdmissionQueue::new(config);
            let mut tickets = vec![usize::MAX; arrivals.len()];
            let mut decided = Vec::new();
            for (k, &i) in order.iter().enumerate() {
                if k % 3 == 0 {
                    queue.drain_until(arrivals[i].arrival_us);
                }
                tickets[i] = queue.offer(arrivals[i]);
                // Extra drains are sound only up to the next offer's
                // arrival (the virtual clock of the simulation must not
                // run ahead of arrivals still to be offered) — the same
                // rule the session event loop obeys.
                if k % 5 == 0 {
                    let next_arrival = order
                        .get(k + 1)
                        .map_or(u64::MAX, |&j| arrivals[j].arrival_us);
                    if let Some(finish) = queue.next_finish_us() {
                        queue.drain_until(finish.min(next_arrival));
                    }
                }
                decided.extend(queue.take_newly_decided());
            }
            queue.drain_until(u64::MAX);
            decided.extend(queue.take_newly_decided());
            assert_eq!(queue.stats(), batch.stats);
            for (i, &ticket) in tickets.iter().enumerate() {
                assert_eq!(
                    queue.decision(ticket),
                    Some(batch.decisions[i]),
                    "decision for arrival {i} diverged"
                );
            }
            // Every ticket is reported exactly once via the
            // newly-decided channel.
            decided.sort_unstable();
            assert_eq!(decided, (0..arrivals.len()).collect::<Vec<_>>());
            assert_eq!(queue.undecided(), 0);
        }
    }

    #[test]
    fn every_request_gets_exactly_one_decision() {
        let arrivals: Vec<ArrivalMeta> = (0..500)
            .map(|i| {
                meta(
                    (i as u64 * 104_729) % 300_000,
                    PriorityClass::ALL[(i * 7) % 3],
                    2_000 + (i as u64 % 23) * 1_500,
                    Some(40_000 + (i as u64 % 5) * 20_000),
                )
            })
            .collect();
        for config in [
            AdmissionConfig::unprotected(),
            AdmissionConfig::shed_only(),
            AdmissionConfig::shed_priority(),
            AdmissionConfig::protected(),
        ] {
            let plan = plan_admission(&arrivals, &config);
            assert_eq!(plan.decisions.len(), arrivals.len());
            assert_eq!(
                plan.stats.admitted + plan.stats.shed_total(),
                arrivals.len()
            );
            for d in &plan.decisions {
                assert_eq!(d.admitted, d.shed.is_none());
                if d.admitted {
                    assert!(d.finish_us > d.start_us);
                    assert!(d.latency_us >= d.queue_wait_us);
                }
            }
        }
    }
}
