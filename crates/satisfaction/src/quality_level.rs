//! Mapping a single user-level quality knob to parameter values —
//! the paper's reference [28] (Richards et al., *"Mapping user level QoS
//! from a single parameter"*).
//!
//! End users don't think in frame rates and sample depths; they think
//! "good quality" or "battery saver". Richards et al. collapse the
//! per-parameter satisfaction functions into one dial: a target
//! satisfaction level `q ∈ [0, 1]` maps to the cheapest parameter vector
//! whose *every* axis reaches satisfaction `q` (so the combined harmonic
//! satisfaction is ≥ `q` as well). The inverse direction — what level a
//! given configuration achieves — is the minimum per-axis satisfaction.

use crate::profile::SatisfactionProfile;
use qosc_media::ParamVector;

/// Map a quality level `q ∈ [0, 1]` to the cheapest configuration whose
/// every preferred axis reaches satisfaction `q`.
///
/// Returns `None` if some axis cannot reach `q` at all (e.g. a piecewise
/// function topping out below it) — the user's dial is turned past what
/// the content/preferences support.
pub fn params_for_level(profile: &SatisfactionProfile, q: f64) -> Option<ParamVector> {
    let q = q.clamp(0.0, 1.0);
    let mut params = ParamVector::new();
    for pref in profile.preferences() {
        let value = pref.function.inverse(q)?;
        // Indifferent/step functions can invert to −∞ ("anything is
        // fine"); represent that as zero demand.
        params.set(pref.axis, value.max(0.0));
    }
    Some(params)
}

/// The quality level a configuration achieves: the minimum satisfaction
/// across the preferred axes present in `params` (`None` when none of
/// the preferred axes are present).
pub fn level_of(profile: &SatisfactionProfile, params: &ParamVector) -> Option<f64> {
    let mut level: Option<f64> = None;
    for pref in profile.preferences() {
        if let Some(x) = params.get(pref.axis) {
            let s = pref.function.eval(x);
            level = Some(level.map_or(s, |l: f64| l.min(s)));
        }
    }
    level
}

/// Evenly spaced quality presets ("low / medium / high / ideal") with
/// their parameter vectors, skipping unreachable levels.
pub fn presets(profile: &SatisfactionProfile, count: usize) -> Vec<(f64, ParamVector)> {
    let count = count.max(2);
    (0..count)
        .filter_map(|i| {
            let q = i as f64 / (count - 1) as f64;
            params_for_level(profile, q).map(|p| (q, p))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::SatisfactionFn;
    use crate::profile::AxisPreference;
    use qosc_media::Axis;

    fn av_profile() -> SatisfactionProfile {
        SatisfactionProfile::new()
            .with(AxisPreference::new(
                Axis::FrameRate,
                SatisfactionFn::Linear {
                    min_acceptable: 0.0,
                    ideal: 30.0,
                },
            ))
            .with(AxisPreference::new(
                Axis::SampleRate,
                SatisfactionFn::Linear {
                    min_acceptable: 8_000.0,
                    ideal: 44_100.0,
                },
            ))
    }

    #[test]
    fn level_round_trips() {
        let profile = av_profile();
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            let params = params_for_level(&profile, q).expect("linear axes reach any level");
            let level = level_of(&profile, &params).expect("axes present");
            assert!((level - q).abs() < 1e-9, "q {q} → level {level}");
            // The harmonic combination is at least the per-axis floor.
            assert!(profile.score(&params) + 1e-9 >= q);
        }
    }

    #[test]
    fn level_one_is_the_ideal_point() {
        let profile = av_profile();
        let params = params_for_level(&profile, 1.0).unwrap();
        assert_eq!(params.get(Axis::FrameRate), Some(30.0));
        assert_eq!(params.get(Axis::SampleRate), Some(44_100.0));
    }

    #[test]
    fn unreachable_level_is_none() {
        let profile = SatisfactionProfile::new().with(AxisPreference::new(
            Axis::FrameRate,
            SatisfactionFn::Piecewise {
                knots: vec![(5.0, 0.0), (20.0, 0.6)],
            },
        ));
        assert!(params_for_level(&profile, 0.5).is_some());
        assert!(params_for_level(&profile, 0.9).is_none(), "tops out at 0.6");
    }

    #[test]
    fn level_of_is_the_bottleneck() {
        let profile = av_profile();
        // Great video, mediocre audio → the audio bounds the level.
        let params = ParamVector::from_pairs([
            (Axis::FrameRate, 30.0),
            (Axis::SampleRate, 26_050.0), // (26050-8000)/36100 = 0.5
        ]);
        let level = level_of(&profile, &params).unwrap();
        assert!((level - 0.5).abs() < 1e-9);
    }

    #[test]
    fn presets_are_monotone() {
        let profile = av_profile();
        let presets = presets(&profile, 5);
        assert_eq!(presets.len(), 5);
        for pair in presets.windows(2) {
            assert!(pair[0].0 < pair[1].0);
            assert!(
                pair[0].1.le_on_common_axes(&pair[1].1),
                "params grow with the dial"
            );
        }
    }

    #[test]
    fn empty_profile_and_empty_params() {
        let profile = SatisfactionProfile::new();
        assert_eq!(params_for_level(&profile, 0.5), Some(ParamVector::new()));
        assert_eq!(level_of(&profile, &ParamVector::new()), None);
    }
}
