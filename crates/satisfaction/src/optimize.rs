//! The constrained parameter optimizer.
//!
//! Step 2 / Step 8 of Figure 4 call
//! `Optimize(user_profile, input_format, output_format, Sat_T[i],
//! user_budget, cost, available_bandwidth)`: for a candidate trans-coding
//! service, pick the QoS parameter values `xi` that maximize the combined
//! satisfaction (Equa. 1) subject to
//!
//! * `bandwidth_requirement(x1..xn) <= Bandwidth_AvailableBetween(Ti, Tprev)`
//!   (Equa. 2), and
//! * the remaining user budget.
//!
//! Monotonicity does the heavy lifting: satisfaction functions increase
//! and bitrate models increase in every axis, so the feasible set is
//! *downward closed* and the unconstrained optimum is the domain's top.
//! When the top is infeasible we fall back to a deterministic grid search
//! followed by coordinate-ascent refinement (exact bisection per axis).
//! For single-axis problems — like the paper's worked example — the result
//! is exact to floating-point tolerance.

use crate::profile::SatisfactionProfile;
use qosc_media::{Axis, AxisDomain, BitrateModel, DomainVector, ParamVector};

/// Tuning knobs for [`optimize`]. The defaults are deterministic and fast
/// enough for graphs with thousands of candidate evaluations.
#[derive(Debug, Clone, Copy)]
pub struct OptimizeOptions {
    /// Grid samples per axis in the fallback search.
    pub grid_per_axis: usize,
    /// Hard cap on the total number of grid points evaluated.
    pub max_grid_points: usize,
    /// Coordinate-ascent passes after the grid phase.
    pub refine_passes: usize,
    /// Bisection iterations per continuous-axis refinement.
    pub bisect_iters: usize,
}

impl Default for OptimizeOptions {
    fn default() -> OptimizeOptions {
        OptimizeOptions {
            grid_per_axis: 9,
            max_grid_points: 40_000,
            refine_passes: 3,
            bisect_iters: 60,
        }
    }
}

/// One constrained optimization instance.
pub struct Problem<'a> {
    /// The user's satisfaction preferences (objective).
    pub profile: &'a SatisfactionProfile,
    /// Feasible output configurations of the candidate service, already
    /// capped by the quality delivered upstream (quality monotonicity).
    pub domain: &'a DomainVector,
    /// Bandwidth-requirement model of the candidate's *output* format.
    pub bitrate: &'a BitrateModel,
    /// `Bandwidth_AvailableBetween(Ti, Tprev)` in bits per second;
    /// `f64::INFINITY` when the two services share a host (Section 4.3).
    pub bandwidth_limit: f64,
    /// Incremental monetary cost of delivering a configuration through
    /// this candidate (service price + transmission price).
    pub cost: &'a dyn Fn(&ParamVector) -> f64,
    /// Remaining user budget; `f64::INFINITY` when unconstrained.
    pub budget: f64,
}

impl<'a> Problem<'a> {
    /// Whether `params` satisfies both constraints.
    pub fn is_feasible(&self, params: &ParamVector) -> bool {
        const REL_TOL: f64 = 1e-9;
        let rate = self.bitrate.bits_per_second(params);
        if rate > self.bandwidth_limit * (1.0 + REL_TOL) + REL_TOL {
            return false;
        }
        let cost = (self.cost)(params);
        cost <= self.budget * (1.0 + REL_TOL) + REL_TOL
    }
}

/// The result of a successful optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct Optimum {
    /// The chosen configuration.
    pub params: ParamVector,
    /// Combined satisfaction of the configuration (Equa. 1).
    pub satisfaction: f64,
    /// Bandwidth the configuration requires, bits per second.
    pub bits_per_second: f64,
    /// Incremental cost of the configuration.
    pub cost: f64,
}

/// Maximize combined satisfaction over `problem.domain` subject to the
/// bandwidth and budget constraints. Returns `None` when no configuration
/// in the domain is feasible — the candidate service cannot be used at
/// all from its tentative parent.
pub fn optimize(problem: &Problem<'_>, options: &OptimizeOptions) -> Option<Optimum> {
    // Fast path: the top of the domain is the unconstrained optimum.
    let top = problem.domain.top();
    if problem.is_feasible(&top) {
        return Some(finish(problem, top));
    }
    // If even the bottom is infeasible, bail early only when the domain is
    // fully degenerate (a single point); otherwise intermediate points may
    // still be feasible on some axes even though the bottom is not —
    // impossible under monotone models, so the bottom check is sound.
    let bottom = problem.domain.bottom();
    if !problem.is_feasible(&bottom) {
        return None;
    }

    let axes: Vec<Axis> = problem.domain.axes().collect();
    if axes.is_empty() {
        // Empty domain: the only configuration is the empty vector, whose
        // feasibility equals the bottom's (already checked).
        return Some(finish(problem, ParamVector::new()));
    }

    // Grid phase: deterministic cartesian sweep, capped in size.
    let per_axis = grid_resolution(axes.len(), options);
    let samples: Vec<Vec<f64>> = axes
        .iter()
        .map(|&axis| {
            problem
                .domain
                .get(axis)
                .expect("axis from domain")
                .sample(per_axis)
        })
        .collect();
    let mut best: Option<(f64, f64, ParamVector)> = None; // (sat, -rate, params)
    let mut index = vec![0usize; axes.len()];
    loop {
        let mut point = ParamVector::new();
        for (slot, &axis) in axes.iter().enumerate() {
            point.set(axis, samples[slot][index[slot]]);
        }
        if problem.is_feasible(&point) {
            consider(problem, &mut best, point);
        }
        // Odometer increment.
        let mut slot = 0;
        loop {
            if slot == axes.len() {
                break;
            }
            index[slot] += 1;
            if index[slot] < samples[slot].len() {
                break;
            }
            index[slot] = 0;
            slot += 1;
        }
        if slot == axes.len() {
            break;
        }
    }

    let (_, _, mut current) = best?;

    // Refinement: per-axis exact maximization with the other axes fixed.
    // Feasibility is monotone per axis, so bisection (continuous) or a
    // descending scan (discrete) finds the largest feasible value.
    for _ in 0..options.refine_passes {
        let mut improved = false;
        for &axis in &axes {
            let domain = problem.domain.get(axis).expect("axis from domain");
            let old = current.get(axis).expect("grid set all axes");
            let lifted = max_feasible_on_axis(problem, &current, axis, domain, options);
            if lifted > old * (1.0 + 1e-12) + 1e-15 {
                let candidate = current.with(axis, lifted);
                // Lift only when it buys satisfaction — otherwise keep the
                // grid's lower-bitrate choice (don't waste bandwidth past
                // the user's ideal).
                if problem.profile.score(&candidate) > problem.profile.score(&current) + 1e-15 {
                    current = candidate;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }

    Some(finish(problem, current))
}

/// Choose the per-axis grid resolution so the cartesian product stays
/// under `max_grid_points`.
fn grid_resolution(axis_count: usize, options: &OptimizeOptions) -> usize {
    let mut per_axis = options.grid_per_axis.max(2);
    while per_axis > 2 && per_axis.pow(axis_count as u32) > options.max_grid_points {
        per_axis -= 1;
    }
    per_axis
}

fn consider(problem: &Problem<'_>, best: &mut Option<(f64, f64, ParamVector)>, point: ParamVector) {
    let sat = problem.profile.score(&point);
    let neg_rate = -problem.bitrate.bits_per_second(&point);
    let better = match best {
        None => true,
        Some((bs, bnr, _)) => sat > *bs + 1e-15 || (sat >= *bs - 1e-15 && neg_rate > *bnr),
    };
    if better {
        *best = Some((sat, neg_rate, point));
    }
}

/// Largest feasible value on `axis` holding the other axes of `current`
/// fixed.
fn max_feasible_on_axis(
    problem: &Problem<'_>,
    current: &ParamVector,
    axis: Axis,
    domain: &AxisDomain,
    options: &OptimizeOptions,
) -> f64 {
    let feasible_at = |v: f64| {
        let mut p = *current;
        p.set(axis, v);
        problem.is_feasible(&p)
    };
    let lo_value = current.get(axis).expect("axis set");
    match domain {
        AxisDomain::Continuous { max, .. } => {
            if feasible_at(*max) {
                return *max;
            }
            let (mut lo, mut hi) = (lo_value, *max);
            for _ in 0..options.bisect_iters {
                let mid = 0.5 * (lo + hi);
                if feasible_at(mid) {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            lo
        }
        AxisDomain::Discrete(values) => values
            .iter()
            .rev()
            .copied()
            .find(|&v| v >= lo_value && feasible_at(v))
            .unwrap_or(lo_value),
        AxisDomain::Fixed(v) => *v,
    }
}

fn finish(problem: &Problem<'_>, params: ParamVector) -> Optimum {
    Optimum {
        satisfaction: problem.profile.score(&params),
        bits_per_second: problem.bitrate.bits_per_second(&params),
        cost: (problem.cost)(&params),
        params,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::SatisfactionFn;
    use crate::profile::{AxisPreference, SatisfactionProfile};

    fn free_cost() -> impl Fn(&ParamVector) -> f64 {
        |_: &ParamVector| 0.0
    }

    fn frame_rate_problem<'a>(
        profile: &'a SatisfactionProfile,
        domain: &'a DomainVector,
        bitrate: &'a BitrateModel,
        cost: &'a dyn Fn(&ParamVector) -> f64,
        bandwidth: f64,
        budget: f64,
    ) -> Problem<'a> {
        Problem {
            profile,
            domain,
            bitrate,
            bandwidth_limit: bandwidth,
            cost,
            budget,
        }
    }

    #[test]
    fn unconstrained_picks_domain_top() {
        let profile = SatisfactionProfile::paper_table1();
        let domain = DomainVector::new().with(
            Axis::FrameRate,
            AxisDomain::continuous(Axis::FrameRate, 0.0, 27.0).unwrap(),
        );
        let bitrate = BitrateModel::LinearOnAxis {
            axis: Axis::FrameRate,
            slope: 1000.0,
        };
        let cost = free_cost();
        let p = frame_rate_problem(
            &profile,
            &domain,
            &bitrate,
            &cost,
            f64::INFINITY,
            f64::INFINITY,
        );
        let opt = optimize(&p, &OptimizeOptions::default()).unwrap();
        assert_eq!(opt.params.get(Axis::FrameRate), Some(27.0));
        assert!((opt.satisfaction - 0.9).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_caps_single_axis_exactly() {
        // 1000 bits per fps; 18_000 bits/s available → exactly 18 fps.
        let profile = SatisfactionProfile::paper_table1();
        let domain = DomainVector::new().with(
            Axis::FrameRate,
            AxisDomain::continuous(Axis::FrameRate, 0.0, 30.0).unwrap(),
        );
        let bitrate = BitrateModel::LinearOnAxis {
            axis: Axis::FrameRate,
            slope: 1000.0,
        };
        let cost = free_cost();
        let p = frame_rate_problem(&profile, &domain, &bitrate, &cost, 18_000.0, f64::INFINITY);
        let opt = optimize(&p, &OptimizeOptions::default()).unwrap();
        let fps = opt.params.get(Axis::FrameRate).unwrap();
        assert!((fps - 18.0).abs() < 1e-6, "got {fps}");
        assert!((opt.satisfaction - 0.6).abs() < 1e-6);
    }

    #[test]
    fn budget_binds() {
        // Cost = 1 monetary unit per fps, budget 12 → 12 fps.
        let profile = SatisfactionProfile::paper_table1();
        let domain = DomainVector::new().with(
            Axis::FrameRate,
            AxisDomain::continuous(Axis::FrameRate, 0.0, 30.0).unwrap(),
        );
        let bitrate = BitrateModel::LinearOnAxis {
            axis: Axis::FrameRate,
            slope: 1000.0,
        };
        let cost = |p: &ParamVector| p.get(Axis::FrameRate).unwrap_or(0.0);
        let p = frame_rate_problem(&profile, &domain, &bitrate, &cost, f64::INFINITY, 12.0);
        let opt = optimize(&p, &OptimizeOptions::default()).unwrap();
        let fps = opt.params.get(Axis::FrameRate).unwrap();
        assert!((fps - 12.0).abs() < 1e-6, "got {fps}");
        assert!(opt.cost <= 12.0 + 1e-6);
    }

    #[test]
    fn infeasible_returns_none() {
        let profile = SatisfactionProfile::paper_table1();
        let domain = DomainVector::new().with(
            Axis::FrameRate,
            AxisDomain::continuous(Axis::FrameRate, 10.0, 30.0).unwrap(),
        );
        let bitrate = BitrateModel::LinearOnAxis {
            axis: Axis::FrameRate,
            slope: 1000.0,
        };
        let cost = free_cost();
        // Even 10 fps needs 10_000 bits/s; only 5_000 available.
        let p = frame_rate_problem(&profile, &domain, &bitrate, &cost, 5_000.0, f64::INFINITY);
        assert!(optimize(&p, &OptimizeOptions::default()).is_none());
    }

    #[test]
    fn discrete_domain_respects_membership() {
        let profile = SatisfactionProfile::paper_table1();
        let domain = DomainVector::new().with(
            Axis::FrameRate,
            AxisDomain::discrete(Axis::FrameRate, vec![5.0, 15.0, 25.0, 30.0]).unwrap(),
        );
        let bitrate = BitrateModel::LinearOnAxis {
            axis: Axis::FrameRate,
            slope: 1000.0,
        };
        let cost = free_cost();
        // 27_000 bits/s admits 25 but not 30.
        let p = frame_rate_problem(&profile, &domain, &bitrate, &cost, 27_000.0, f64::INFINITY);
        let opt = optimize(&p, &OptimizeOptions::default()).unwrap();
        assert_eq!(opt.params.get(Axis::FrameRate), Some(25.0));
    }

    #[test]
    fn two_axis_tradeoff_stays_feasible_and_beats_bottom() {
        // Video: rate = fps × pixels; both axes matter to the user.
        let profile = SatisfactionProfile::new()
            .with(AxisPreference::new(
                Axis::FrameRate,
                SatisfactionFn::Linear {
                    min_acceptable: 0.0,
                    ideal: 30.0,
                },
            ))
            .with(AxisPreference::new(
                Axis::PixelCount,
                SatisfactionFn::Linear {
                    min_acceptable: 0.0,
                    ideal: 307_200.0,
                },
            ));
        let domain = DomainVector::new()
            .with(
                Axis::FrameRate,
                AxisDomain::continuous(Axis::FrameRate, 1.0, 30.0).unwrap(),
            )
            .with(
                Axis::PixelCount,
                AxisDomain::continuous(Axis::PixelCount, 19_200.0, 307_200.0).unwrap(),
            );
        let bitrate = BitrateModel::CompressedVideo {
            compression_ratio: 100.0,
        };
        let cost = free_cost();
        // Top needs 30×307200×1/100 ≈ 92 kbit/s (no depth axis → ×1).
        // Give half of that.
        let p = frame_rate_problem(&profile, &domain, &bitrate, &cost, 46_080.0, f64::INFINITY);
        let opt = optimize(&p, &OptimizeOptions::default()).unwrap();
        assert!(p.is_feasible(&opt.params));
        let bottom_sat = profile.score(&domain.bottom());
        assert!(
            opt.satisfaction > bottom_sat + 0.05,
            "optimizer should beat the bottom: {} vs {bottom_sat}",
            opt.satisfaction
        );
    }

    #[test]
    fn tie_breaks_prefer_lower_bitrate() {
        // Satisfaction saturates at 20 fps; domain allows 30. The optimizer
        // should not waste bandwidth past the ideal when the top is
        // infeasible... but when the top IS feasible it returns the top
        // (documented fast path). Constrain so top is infeasible and the
        // grid sees equal-satisfaction points.
        let profile = SatisfactionProfile::new().with(AxisPreference::new(
            Axis::FrameRate,
            SatisfactionFn::Linear {
                min_acceptable: 0.0,
                ideal: 20.0,
            },
        ));
        let domain = DomainVector::new().with(
            Axis::FrameRate,
            AxisDomain::discrete(Axis::FrameRate, vec![10.0, 20.0, 25.0, 30.0]).unwrap(),
        );
        let bitrate = BitrateModel::LinearOnAxis {
            axis: Axis::FrameRate,
            slope: 1000.0,
        };
        let cost = free_cost();
        let p = frame_rate_problem(&profile, &domain, &bitrate, &cost, 26_000.0, f64::INFINITY);
        let opt = optimize(&p, &OptimizeOptions::default()).unwrap();
        // 20 and 25 both give satisfaction 1.0; refinement lifts to the
        // max feasible (25) only if satisfaction improves — it does not,
        // so the grid's lower-bitrate preference stands at 20.
        assert_eq!(opt.params.get(Axis::FrameRate), Some(20.0));
        assert!((opt.satisfaction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_domain_scores_zero_but_succeeds_when_free() {
        let profile = SatisfactionProfile::paper_table1();
        let domain = DomainVector::new();
        let bitrate = BitrateModel::Constant {
            bits_per_second: 100.0,
        };
        let cost = free_cost();
        let p = frame_rate_problem(&profile, &domain, &bitrate, &cost, 200.0, f64::INFINITY);
        let opt = optimize(&p, &OptimizeOptions::default()).unwrap();
        assert_eq!(opt.satisfaction, 0.0);

        let p2 = frame_rate_problem(&profile, &domain, &bitrate, &cost, 50.0, f64::INFINITY);
        assert!(optimize(&p2, &OptimizeOptions::default()).is_none());
    }
}
