//! Per-axis satisfaction preferences.
//!
//! A [`SatisfactionProfile`] is the application-layer-QoS slice of the
//! user profile of Section 3: for each QoS axis the user cares about, a
//! satisfaction function and (for the weighted extension of [29]) a
//! weight. The total satisfaction of a parameter vector is the combination
//! (Equa. 1) of the per-axis satisfactions.

use crate::combine::Combiner;
use crate::function::SatisfactionFn;
use crate::Result;
use qosc_media::{Axis, ParamVector};
use serde::{Deserialize, Serialize};

/// One axis the user has a preference about.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AxisPreference {
    /// The QoS axis.
    pub axis: Axis,
    /// Satisfaction as a function of the axis value.
    pub function: SatisfactionFn,
    /// Relative importance, used when the profile's combiner is
    /// weight-aware. Must be non-negative. Defaults to 1.
    pub weight: f64,
}

impl AxisPreference {
    /// A preference with the default weight of 1.
    pub fn new(axis: Axis, function: SatisfactionFn) -> AxisPreference {
        AxisPreference {
            axis,
            function,
            weight: 1.0,
        }
    }

    /// A preference with an explicit weight.
    pub fn weighted(axis: Axis, function: SatisfactionFn, weight: f64) -> AxisPreference {
        AxisPreference {
            axis,
            function,
            weight,
        }
    }
}

/// The user's application-layer QoS preferences: per-axis satisfaction
/// functions plus the combination strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SatisfactionProfile {
    /// Per-axis preferences, at most one per axis (later entries replace
    /// earlier ones on insert).
    preferences: Vec<AxisPreference>,
    /// How per-axis satisfactions are combined (`fcomb`).
    pub combiner: Combiner,
}

impl SatisfactionProfile {
    /// An empty profile with the paper's default combiner (Equa. 1).
    pub fn new() -> SatisfactionProfile {
        SatisfactionProfile {
            preferences: Vec::new(),
            combiner: Combiner::default(),
        }
    }

    /// The paper's Table-1 profile: a single linear frame-rate preference
    /// with minimum 0 and ideal 30 fps.
    pub fn paper_table1() -> SatisfactionProfile {
        SatisfactionProfile::new().with(AxisPreference::new(
            Axis::FrameRate,
            SatisfactionFn::paper_frame_rate(),
        ))
    }

    /// Builder-style insert; replaces any existing preference on the axis.
    pub fn with(mut self, pref: AxisPreference) -> SatisfactionProfile {
        self.insert(pref);
        self
    }

    /// Builder-style combiner override.
    pub fn with_combiner(mut self, combiner: Combiner) -> SatisfactionProfile {
        self.combiner = combiner;
        self
    }

    /// Insert a preference, replacing any existing one on the same axis.
    pub fn insert(&mut self, pref: AxisPreference) {
        self.preferences.retain(|p| p.axis != pref.axis);
        self.preferences.push(pref);
        self.preferences.sort_by_key(|p| p.axis.index());
    }

    /// The preference on `axis`, if any.
    pub fn get(&self, axis: Axis) -> Option<&AxisPreference> {
        self.preferences.iter().find(|p| p.axis == axis)
    }

    /// All preferences, in axis-index order.
    pub fn preferences(&self) -> &[AxisPreference] {
        &self.preferences
    }

    /// Number of axes with a preference.
    pub fn len(&self) -> usize {
        self.preferences.len()
    }

    /// Whether no axis has a preference.
    pub fn is_empty(&self) -> bool {
        self.preferences.is_empty()
    }

    /// Validate every satisfaction function and weight.
    pub fn validate(&self) -> Result<()> {
        for pref in &self.preferences {
            pref.function.validate()?;
            // Deliberate negated comparison: NaN weights must be rejected.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(pref.weight >= 0.0) {
                return Err(crate::SatisfactionError::InvalidFunction(format!(
                    "negative weight {} on axis {}",
                    pref.weight, pref.axis
                )));
            }
        }
        Ok(())
    }

    /// Total satisfaction of `params`.
    ///
    /// Only axes the user cares about **and** the content provides are
    /// scored (a video-only stream is not penalized on audio axes the
    /// user also has preferences for — those dimensions are simply not
    /// part of this delivery). If no preference axis is present in
    /// `params`, the configuration tells the user nothing and scores 0.
    pub fn score(&self, params: &ParamVector) -> f64 {
        let mut values = Vec::with_capacity(self.preferences.len());
        let mut weights = Vec::with_capacity(self.preferences.len());
        for pref in &self.preferences {
            if let Some(x) = params.get(pref.axis) {
                values.push(pref.function.eval(x));
                weights.push(pref.weight);
            }
        }
        if values.is_empty() {
            return 0.0;
        }
        let combiner = match &self.combiner {
            // Re-slice stored weights to the axes actually present.
            Combiner::WeightedHarmonic { .. } => Combiner::WeightedHarmonic { weights },
            other => other.clone(),
        };
        combiner.combine(&values).unwrap_or(0.0)
    }

    /// Convenience: enable the weighted extension of [29] using the
    /// per-preference weights.
    pub fn use_weighted_combination(&mut self) {
        self.combiner = Combiner::WeightedHarmonic {
            weights: self.preferences.iter().map(|p| p.weight).collect(),
        };
    }
}

impl Default for SatisfactionProfile {
    fn default() -> SatisfactionProfile {
        SatisfactionProfile::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_scores_table1_values() {
        let profile = SatisfactionProfile::paper_table1();
        let at = |fps: f64| profile.score(&ParamVector::from_pairs([(Axis::FrameRate, fps)]));
        assert!((at(30.0) - 1.0).abs() < 1e-12);
        assert!((at(27.0) - 0.9).abs() < 1e-12);
        assert!((at(23.0) - 23.0 / 30.0).abs() < 1e-12);
        assert!((at(20.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn score_ignores_axes_without_preference() {
        let profile = SatisfactionProfile::paper_table1();
        let p = ParamVector::from_pairs([(Axis::FrameRate, 30.0), (Axis::SampleRate, 1.0)]);
        assert!((profile.score(&p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn score_skips_preferences_content_lacks() {
        let profile = SatisfactionProfile::paper_table1().with(AxisPreference::new(
            Axis::SampleRate,
            SatisfactionFn::Linear {
                min_acceptable: 0.0,
                ideal: 44100.0,
            },
        ));
        // Video-only content: only the frame-rate preference applies.
        let p = ParamVector::from_pairs([(Axis::FrameRate, 30.0)]);
        assert!((profile.score(&p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn score_zero_when_no_common_axis() {
        let profile = SatisfactionProfile::paper_table1();
        let p = ParamVector::from_pairs([(Axis::SampleRate, 44100.0)]);
        assert_eq!(profile.score(&p), 0.0);
    }

    #[test]
    fn multi_axis_score_uses_harmonic_mean() {
        let profile = SatisfactionProfile::new()
            .with(AxisPreference::new(
                Axis::FrameRate,
                SatisfactionFn::Linear {
                    min_acceptable: 0.0,
                    ideal: 30.0,
                },
            ))
            .with(AxisPreference::new(
                Axis::ColorDepth,
                SatisfactionFn::Linear {
                    min_acceptable: 0.0,
                    ideal: 24.0,
                },
            ));
        // s = (15/30, 24/24) = (0.5, 1.0) → harmonic 2/3.
        let p = ParamVector::from_pairs([(Axis::FrameRate, 15.0), (Axis::ColorDepth, 24.0)]);
        assert!((profile.score(&p) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_combination_uses_present_axes_only() {
        let mut profile = SatisfactionProfile::new()
            .with(AxisPreference::weighted(
                Axis::FrameRate,
                SatisfactionFn::Linear {
                    min_acceptable: 0.0,
                    ideal: 30.0,
                },
                3.0,
            ))
            .with(AxisPreference::weighted(
                Axis::ColorDepth,
                SatisfactionFn::Linear {
                    min_acceptable: 0.0,
                    ideal: 24.0,
                },
                1.0,
            ));
        profile.use_weighted_combination();
        // Only frame rate present: weighted harmonic of one value = value.
        let p = ParamVector::from_pairs([(Axis::FrameRate, 15.0)]);
        assert!((profile.score(&p) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn insert_replaces_same_axis() {
        let mut profile = SatisfactionProfile::paper_table1();
        profile.insert(AxisPreference::new(
            Axis::FrameRate,
            SatisfactionFn::Step { threshold: 10.0 },
        ));
        assert_eq!(profile.len(), 1);
        let p = ParamVector::from_pairs([(Axis::FrameRate, 15.0)]);
        assert_eq!(profile.score(&p), 1.0);
    }

    #[test]
    fn validate_propagates_function_errors() {
        let profile = SatisfactionProfile::new().with(AxisPreference::new(
            Axis::FrameRate,
            SatisfactionFn::Linear {
                min_acceptable: 9.0,
                ideal: 3.0,
            },
        ));
        assert!(profile.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let profile = SatisfactionProfile::paper_table1();
        let json = serde_json::to_string(&profile).unwrap();
        let back: SatisfactionProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, profile);
    }
}
