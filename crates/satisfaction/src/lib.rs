//! # qosc-satisfaction
//!
//! The user-satisfaction model of Section 4.1 of *"A QoS-based Service
//! Composition for Content Adaptation"* (ICDE 2007), after Richards et al.,
//! plus the constrained parameter optimizer the selection algorithm calls
//! in Step 2 / Step 8 of Figure 4.
//!
//! * [`SatisfactionFn`] — a monotone non-decreasing mapping from one QoS
//!   parameter value to a satisfaction in `[0, 1]` (Figure 1),
//! * [`Combiner`] — the combination function `fcomb`; the paper's Equa. 1
//!   is the harmonic mean ([`Combiner::HarmonicMean`]), and the extension
//!   of [29] is the weighted harmonic mean,
//! * [`SatisfactionProfile`] — per-axis satisfaction functions and weights
//!   (the user's application-layer QoS preferences),
//! * [`optimize`] — maximize combined satisfaction over a feasible domain
//!   subject to bandwidth (Equa. 2) and budget constraints,
//! * [`quality_level`] — the single-dial mapping of the paper's
//!   reference [28]: one user-facing quality level ↔ a full parameter
//!   vector.

pub mod combine;
pub mod function;
pub mod optimize;
pub mod profile;
pub mod quality_level;

pub use combine::Combiner;
pub use function::SatisfactionFn;
pub use optimize::{optimize, OptimizeOptions, Optimum, Problem};
pub use profile::{AxisPreference, SatisfactionProfile};
pub use quality_level::{level_of, params_for_level, presets};

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum SatisfactionError {
    /// A satisfaction function was declared with a non-monotone or
    /// out-of-range shape.
    InvalidFunction(String),
    /// A combiner was given an empty slice of satisfactions.
    EmptyCombination,
    /// Weighted combination with mismatched weight count.
    WeightMismatch {
        /// Number of satisfaction values supplied.
        values: usize,
        /// Number of weights supplied.
        weights: usize,
    },
}

impl std::fmt::Display for SatisfactionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SatisfactionError::InvalidFunction(detail) => {
                write!(f, "invalid satisfaction function: {detail}")
            }
            SatisfactionError::EmptyCombination => {
                write!(f, "cannot combine an empty set of satisfactions")
            }
            SatisfactionError::WeightMismatch { values, weights } => {
                write!(f, "{values} satisfaction values but {weights} weights")
            }
        }
    }
}

impl std::error::Error for SatisfactionError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SatisfactionError>;
