//! Combination functions (`fcomb`, Equa. 1).
//!
//! "In the case when there are more than one application parameter …
//! Richards et al. proposed using a combination function fcomb that
//! computes the total satisfaction Stot from the satisfactions si for the
//! individual parameters." Equa. 1 is `Stot = n / Σ(1/si)` — the harmonic
//! mean. The extension presented in [29] weights the terms; we provide
//! both plus alternatives used by the ablation experiment (X6).

use crate::{Result, SatisfactionError};
use serde::{Deserialize, Serialize};

/// A strategy for combining per-parameter satisfactions into a total.
///
/// ```
/// use qosc_satisfaction::Combiner;
///
/// // Equa. 1: Stot = n / Σ(1/si). For (0.5, 1.0) → 2/3.
/// let total = Combiner::HarmonicMean.combine(&[0.5, 1.0]).unwrap();
/// assert!((total - 2.0 / 3.0).abs() < 1e-12);
/// // One unacceptable parameter vetoes the whole configuration.
/// assert_eq!(Combiner::HarmonicMean.combine(&[0.0, 1.0]).unwrap(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Combiner {
    /// Equa. 1: `n / Σ(1/si)`. Zero if any `si` is zero (an unacceptable
    /// parameter makes the whole configuration unacceptable), strongly
    /// dominated by the worst parameter.
    HarmonicMean,
    /// The weighted extension of [29]: `Σwi / Σ(wi/si)`. With equal
    /// weights it reduces to Equa. 1.
    WeightedHarmonic {
        /// Per-parameter weights; must match the value count and be
        /// non-negative with a positive sum.
        weights: Vec<f64>,
    },
    /// `min(si)`: the strictest combiner; total is the bottleneck.
    Min,
    /// `Π si`: penalizes breadth of mediocrity.
    Product,
    /// Geometric mean `(Π si)^(1/n)`.
    GeometricMean,
    /// Arithmetic mean — deliberately *not* what the paper uses; included
    /// as the strawman in the ablation (it hides a terrible parameter
    /// behind good ones).
    ArithmeticMean,
}

impl Combiner {
    /// Combine `values` (each in `[0, 1]`) into a total in `[0, 1]`.
    ///
    /// Errors on an empty slice, and for [`Combiner::WeightedHarmonic`]
    /// on a weight-count mismatch.
    pub fn combine(&self, values: &[f64]) -> Result<f64> {
        if values.is_empty() {
            return Err(SatisfactionError::EmptyCombination);
        }
        let n = values.len() as f64;
        let any_zero = values.iter().any(|&v| v <= 0.0);
        let total = match self {
            Combiner::HarmonicMean => {
                if any_zero {
                    0.0
                } else if values.len() == 1 {
                    // Mathematically the identity; computing 1/(1/s)
                    // would lose an ulp and the paper's single-axis
                    // example prints exact values.
                    values[0]
                } else {
                    n / values.iter().map(|v| 1.0 / v).sum::<f64>()
                }
            }
            Combiner::WeightedHarmonic { weights } => {
                if weights.len() != values.len() {
                    return Err(SatisfactionError::WeightMismatch {
                        values: values.len(),
                        weights: weights.len(),
                    });
                }
                let wsum: f64 = weights.iter().sum();
                if wsum <= 0.0 {
                    return Err(SatisfactionError::InvalidFunction(
                        "weighted harmonic requires a positive weight sum".to_string(),
                    ));
                }
                // A zero satisfaction only vetoes the total if its weight
                // is positive; zero-weight parameters are ignored.
                if values
                    .iter()
                    .zip(weights)
                    .any(|(&v, &w)| w > 0.0 && v <= 0.0)
                {
                    0.0
                } else {
                    wsum / values
                        .iter()
                        .zip(weights)
                        .filter(|&(_, &w)| w > 0.0)
                        .map(|(&v, &w)| w / v)
                        .sum::<f64>()
                }
            }
            Combiner::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
            Combiner::Product => values.iter().product(),
            Combiner::GeometricMean => {
                if any_zero {
                    0.0
                } else {
                    (values.iter().map(|v| v.ln()).sum::<f64>() / n).exp()
                }
            }
            Combiner::ArithmeticMean => values.iter().sum::<f64>() / n,
        };
        Ok(total.clamp(0.0, 1.0))
    }

    /// Combine a single value — every combiner is the identity on one
    /// (positively weighted) parameter, which is why the paper's
    /// single-axis worked example is combiner-independent.
    pub fn combine_one(&self, value: f64) -> f64 {
        self.combine(&[value]).unwrap_or(0.0).clamp(0.0, 1.0)
    }
}

impl Default for Combiner {
    /// The paper's Equa. 1.
    fn default() -> Combiner {
        Combiner::HarmonicMean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_mean_matches_equa_1() {
        // n / (1/s1 + 1/s2): for (0.5, 1.0) → 2 / (2 + 1) = 2/3.
        let s = Combiner::HarmonicMean.combine(&[0.5, 1.0]).unwrap();
        assert!((s - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_zero_vetoes() {
        assert_eq!(Combiner::HarmonicMean.combine(&[0.0, 1.0]).unwrap(), 0.0);
    }

    #[test]
    fn harmonic_identity_on_singletons() {
        for c in [
            Combiner::HarmonicMean,
            Combiner::Min,
            Combiner::Product,
            Combiner::GeometricMean,
            Combiner::ArithmeticMean,
        ] {
            assert!((c.combine(&[0.73]).unwrap() - 0.73).abs() < 1e-12, "{c:?}");
        }
    }

    #[test]
    fn weighted_harmonic_equal_weights_reduces_to_equa_1() {
        let w = Combiner::WeightedHarmonic {
            weights: vec![1.0, 1.0, 1.0],
        };
        let h = Combiner::HarmonicMean;
        let vals = [0.3, 0.6, 0.9];
        assert!((w.combine(&vals).unwrap() - h.combine(&vals).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn weighted_harmonic_ignores_zero_weight_params() {
        let w = Combiner::WeightedHarmonic {
            weights: vec![1.0, 0.0],
        };
        // The second parameter is zero-satisfaction but zero-weight.
        assert!((w.combine(&[0.8, 0.0]).unwrap() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn weighted_harmonic_mismatch_errors() {
        let w = Combiner::WeightedHarmonic { weights: vec![1.0] };
        assert!(matches!(
            w.combine(&[0.5, 0.5]),
            Err(SatisfactionError::WeightMismatch {
                values: 2,
                weights: 1
            })
        ));
    }

    #[test]
    fn weighted_harmonic_rejects_zero_weight_sum() {
        let w = Combiner::WeightedHarmonic {
            weights: vec![0.0, 0.0],
        };
        assert!(w.combine(&[0.5, 0.5]).is_err());
    }

    #[test]
    fn empty_combination_errors() {
        assert_eq!(
            Combiner::HarmonicMean.combine(&[]),
            Err(SatisfactionError::EmptyCombination)
        );
    }

    #[test]
    fn min_and_product() {
        assert_eq!(Combiner::Min.combine(&[0.9, 0.4, 0.7]).unwrap(), 0.4);
        assert!((Combiner::Product.combine(&[0.5, 0.5]).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean() {
        let g = Combiner::GeometricMean.combine(&[0.25, 1.0]).unwrap();
        assert!((g - 0.5).abs() < 1e-12);
        assert_eq!(Combiner::GeometricMean.combine(&[0.0, 1.0]).unwrap(), 0.0);
    }

    #[test]
    fn ordering_of_combiners_on_mixed_input() {
        // min ≤ geometric ≤ arithmetic, harmonic ≤ geometric.
        let vals = [0.2, 0.8, 0.6];
        let min = Combiner::Min.combine(&vals).unwrap();
        let har = Combiner::HarmonicMean.combine(&vals).unwrap();
        let geo = Combiner::GeometricMean.combine(&vals).unwrap();
        let ari = Combiner::ArithmeticMean.combine(&vals).unwrap();
        assert!(min <= har && har <= geo && geo <= ari);
    }

    #[test]
    fn default_is_harmonic() {
        assert_eq!(Combiner::default(), Combiner::HarmonicMean);
    }
}
