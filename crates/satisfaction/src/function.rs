//! Single-parameter satisfaction functions (Figure 1).
//!
//! "The satisfaction or appreciation of a user with each quality value is
//! expressed as a satisfaction function Si(xi). All satisfaction functions
//! have a range of [0..1], which corresponds to the minimum acceptable (M)
//! and ideal (I) value of xi. The satisfaction function Si(xi) can take any
//! shape, with the condition that it must increase monotonically over the
//! domain." — Section 4.1.

use crate::{Result, SatisfactionError};
use serde::{Deserialize, Serialize};

/// A monotone non-decreasing mapping from a QoS parameter value to a
/// satisfaction in `[0, 1]`.
///
/// Values at or below the *minimum acceptable* map to 0; values at or above
/// the *ideal* map to 1.
///
/// ```
/// use qosc_satisfaction::SatisfactionFn;
///
/// // The paper's Table-1 frame-rate function: linear, M = 0, I = 30.
/// let f = SatisfactionFn::paper_frame_rate();
/// assert_eq!(f.eval(30.0), 1.0);
/// assert!((f.eval(27.0) - 0.9).abs() < 1e-12);
/// assert_eq!(f.eval(45.0), 1.0, "clamped above the ideal");
/// // What frame rate buys satisfaction 0.8?
/// assert!((f.inverse(0.8).unwrap() - 24.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SatisfactionFn {
    /// Linear ramp from `(min_acceptable, 0)` to `(ideal, 1)`.
    ///
    /// The paper's worked example (Table 1) uses a linear frame-rate
    /// function with `min_acceptable = 0`, `ideal = 30`: 27 fps → 0.90,
    /// 23 fps → 0.766…, 20 fps → 0.666….
    Linear {
        /// Value below which satisfaction is 0.
        min_acceptable: f64,
        /// Value at and above which satisfaction is 1.
        ideal: f64,
    },
    /// Piecewise-linear through `(value, satisfaction)` knots; values and
    /// satisfactions must both be non-decreasing, satisfactions in [0, 1].
    /// Satisfaction is 0 left of the first knot's satisfaction? No — it is
    /// the first knot's satisfaction left of the first knot, and the last
    /// knot's satisfaction right of the last knot.
    Piecewise {
        /// `(value, satisfaction)` knots, ascending in both coordinates.
        knots: Vec<(f64, f64)>,
    },
    /// Hard threshold: 0 below `threshold`, 1 at or above it. Models
    /// binary requirements ("stereo or nothing").
    Step {
        /// The acceptance threshold.
        threshold: f64,
    },
    /// Smooth saturating curve `1 - exp(-(x - min) / scale)` normalized so
    /// that `ideal` maps to 1; 0 below `min_acceptable`. Models diminishing
    /// returns (each extra fps matters less near the ideal).
    Saturating {
        /// Value below which satisfaction is 0.
        min_acceptable: f64,
        /// Value at which the curve is re-normalized to reach 1.
        ideal: f64,
        /// Curvature: smaller is steeper. Must be > 0.
        scale: f64,
    },
    /// Indifference: every value is fully satisfying. The neutral element
    /// of the harmonic-mean combination.
    Indifferent,
}

impl SatisfactionFn {
    /// The paper's Table-1 frame-rate function: linear with M=0, I=30.
    pub fn paper_frame_rate() -> SatisfactionFn {
        SatisfactionFn::Linear {
            min_acceptable: 0.0,
            ideal: 30.0,
        }
    }

    /// Validate shape invariants (finite bounds, `min < ideal`,
    /// piecewise knots ascending with satisfactions in [0, 1]).
    pub fn validate(&self) -> Result<()> {
        match self {
            SatisfactionFn::Linear {
                min_acceptable,
                ideal,
            }
            | SatisfactionFn::Saturating {
                min_acceptable,
                ideal,
                ..
            } => {
                if !min_acceptable.is_finite() || !ideal.is_finite() || min_acceptable >= ideal {
                    return Err(SatisfactionError::InvalidFunction(format!(
                        "requires min_acceptable < ideal, got [{min_acceptable}, {ideal}]"
                    )));
                }
                if let SatisfactionFn::Saturating { scale, .. } = self {
                    // Deliberate negated comparison: NaN scales must be
                    // rejected.
                    #[allow(clippy::neg_cmp_op_on_partial_ord)]
                    if !(*scale > 0.0) {
                        return Err(SatisfactionError::InvalidFunction(format!(
                            "saturating scale must be > 0, got {scale}"
                        )));
                    }
                }
                Ok(())
            }
            SatisfactionFn::Piecewise { knots } => {
                if knots.is_empty() {
                    return Err(SatisfactionError::InvalidFunction(
                        "piecewise function needs at least one knot".to_string(),
                    ));
                }
                for window in knots.windows(2) {
                    let ((x0, s0), (x1, s1)) = (window[0], window[1]);
                    if x1 < x0 || s1 < s0 {
                        return Err(SatisfactionError::InvalidFunction(format!(
                            "knots must be non-decreasing: ({x0},{s0}) then ({x1},{s1})"
                        )));
                    }
                }
                if knots
                    .iter()
                    .any(|&(x, s)| !x.is_finite() || !(0.0..=1.0).contains(&s))
                {
                    return Err(SatisfactionError::InvalidFunction(
                        "knot satisfactions must be finite and within [0, 1]".to_string(),
                    ));
                }
                Ok(())
            }
            SatisfactionFn::Step { threshold } => {
                if threshold.is_finite() {
                    Ok(())
                } else {
                    Err(SatisfactionError::InvalidFunction(
                        "step threshold must be finite".to_string(),
                    ))
                }
            }
            SatisfactionFn::Indifferent => Ok(()),
        }
    }

    /// Evaluate the function at `x`. Always in `[0, 1]`.
    pub fn eval(&self, x: f64) -> f64 {
        let s = match self {
            SatisfactionFn::Linear {
                min_acceptable,
                ideal,
            } => (x - min_acceptable) / (ideal - min_acceptable),
            SatisfactionFn::Piecewise { knots } => {
                match knots.iter().position(|&(kx, _)| kx >= x) {
                    Some(0) => knots[0].1,
                    Some(i) => {
                        let (x0, s0) = knots[i - 1];
                        let (x1, s1) = knots[i];
                        if (x1 - x0).abs() < 1e-12 {
                            s1
                        } else {
                            s0 + (s1 - s0) * (x - x0) / (x1 - x0)
                        }
                    }
                    None => knots.last().map(|&(_, s)| s).unwrap_or(0.0),
                }
            }
            SatisfactionFn::Step { threshold } => {
                if x >= *threshold {
                    1.0
                } else {
                    0.0
                }
            }
            SatisfactionFn::Saturating {
                min_acceptable,
                ideal,
                scale,
            } => {
                if x <= *min_acceptable {
                    0.0
                } else {
                    let raw = 1.0 - (-(x - min_acceptable) / scale).exp();
                    let norm = 1.0 - (-(ideal - min_acceptable) / scale).exp();
                    raw / norm
                }
            }
            SatisfactionFn::Indifferent => 1.0,
        };
        s.clamp(0.0, 1.0)
    }

    /// The smallest value achieving satisfaction `target` (in `[0, 1]`),
    /// or `None` if the function never reaches it. Uses closed forms where
    /// available and bisection otherwise. Useful for "what frame rate do I
    /// need for satisfaction ≥ 0.9?" queries in reports.
    pub fn inverse(&self, target: f64) -> Option<f64> {
        let target = target.clamp(0.0, 1.0);
        match self {
            SatisfactionFn::Linear {
                min_acceptable,
                ideal,
            } => Some(min_acceptable + target * (ideal - min_acceptable)),
            SatisfactionFn::Step { threshold } => {
                if target <= 0.0 {
                    Some(f64::NEG_INFINITY)
                } else {
                    Some(*threshold)
                }
            }
            SatisfactionFn::Indifferent => Some(f64::NEG_INFINITY),
            SatisfactionFn::Piecewise { knots } => {
                let last = knots.last()?;
                if target > last.1 {
                    return None;
                }
                let i = knots.iter().position(|&(_, s)| s >= target)?;
                if i == 0 {
                    return Some(knots[0].0);
                }
                let (x0, s0) = knots[i - 1];
                let (x1, s1) = knots[i];
                if (s1 - s0).abs() < 1e-12 {
                    Some(x1)
                } else {
                    Some(x0 + (x1 - x0) * (target - s0) / (s1 - s0))
                }
            }
            SatisfactionFn::Saturating {
                min_acceptable,
                ideal,
                ..
            } => {
                if target <= 0.0 {
                    return Some(*min_acceptable);
                }
                // Bisection on [min, ideal]: eval is continuous and monotone.
                let (mut lo, mut hi) = (*min_acceptable, *ideal);
                if self.eval(hi) < target {
                    return None;
                }
                for _ in 0..128 {
                    let mid = 0.5 * (lo + hi);
                    if self.eval(mid) >= target {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                Some(hi)
            }
        }
    }

    /// Sample the curve at `n` evenly spaced points of `[lo, hi]` — used to
    /// regenerate Figure 1 as a printable series.
    pub fn series(&self, lo: f64, hi: f64, n: usize) -> Vec<(f64, f64)> {
        let n = n.max(2);
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_matches_paper_values() {
        // Table 1 satisfactions derive from a linear M=0, I=30 function.
        let f = SatisfactionFn::paper_frame_rate();
        assert!((f.eval(30.0) - 1.0).abs() < 1e-12);
        assert!((f.eval(27.0) - 0.9).abs() < 1e-12);
        assert!((f.eval(23.0) - 23.0 / 30.0).abs() < 1e-12);
        assert!((f.eval(20.0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(f.eval(0.0), 0.0);
        assert_eq!(f.eval(45.0), 1.0, "clamped above ideal");
        assert_eq!(f.eval(-3.0), 0.0, "clamped below minimum");
    }

    #[test]
    fn linear_validation() {
        assert!(SatisfactionFn::Linear {
            min_acceptable: 5.0,
            ideal: 30.0
        }
        .validate()
        .is_ok());
        assert!(SatisfactionFn::Linear {
            min_acceptable: 30.0,
            ideal: 5.0
        }
        .validate()
        .is_err());
        assert!(SatisfactionFn::Linear {
            min_acceptable: 5.0,
            ideal: 5.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn piecewise_interpolates() {
        let f = SatisfactionFn::Piecewise {
            knots: vec![(5.0, 0.0), (10.0, 0.5), (20.0, 1.0)],
        };
        f.validate().unwrap();
        assert_eq!(f.eval(0.0), 0.0);
        assert_eq!(f.eval(5.0), 0.0);
        assert!((f.eval(7.5) - 0.25).abs() < 1e-12);
        assert!((f.eval(15.0) - 0.75).abs() < 1e-12);
        assert_eq!(f.eval(25.0), 1.0);
    }

    #[test]
    fn piecewise_rejects_decreasing() {
        let f = SatisfactionFn::Piecewise {
            knots: vec![(5.0, 0.5), (10.0, 0.4)],
        };
        assert!(f.validate().is_err());
        let g = SatisfactionFn::Piecewise {
            knots: vec![(10.0, 0.1), (5.0, 0.5)],
        };
        assert!(g.validate().is_err());
        let h = SatisfactionFn::Piecewise { knots: vec![] };
        assert!(h.validate().is_err());
    }

    #[test]
    fn step_function() {
        let f = SatisfactionFn::Step { threshold: 2.0 };
        assert_eq!(f.eval(1.9), 0.0);
        assert_eq!(f.eval(2.0), 1.0);
    }

    #[test]
    fn saturating_is_monotone_and_normalized() {
        let f = SatisfactionFn::Saturating {
            min_acceptable: 0.0,
            ideal: 30.0,
            scale: 10.0,
        };
        f.validate().unwrap();
        assert_eq!(f.eval(0.0), 0.0);
        assert!((f.eval(30.0) - 1.0).abs() < 1e-12);
        let mut prev = 0.0;
        for i in 0..=60 {
            let s = f.eval(i as f64 * 0.5);
            assert!(s >= prev - 1e-12, "monotone violated at {i}");
            prev = s;
        }
        // Diminishing returns: first 10 fps buys more than the last 10.
        assert!(f.eval(10.0) - f.eval(0.0) > f.eval(30.0) - f.eval(20.0));
    }

    #[test]
    fn inverse_round_trips() {
        let fns = [
            SatisfactionFn::Linear {
                min_acceptable: 5.0,
                ideal: 30.0,
            },
            SatisfactionFn::Piecewise {
                knots: vec![(5.0, 0.0), (10.0, 0.5), (20.0, 1.0)],
            },
            SatisfactionFn::Saturating {
                min_acceptable: 5.0,
                ideal: 30.0,
                scale: 8.0,
            },
        ];
        for f in fns {
            for target in [0.1, 0.5, 0.9] {
                let x = f.inverse(target).unwrap();
                assert!(
                    (f.eval(x) - target).abs() < 1e-6,
                    "inverse({target}) gave {x} with eval {}",
                    f.eval(x)
                );
            }
        }
    }

    #[test]
    fn inverse_unreachable_target() {
        let f = SatisfactionFn::Piecewise {
            knots: vec![(5.0, 0.0), (10.0, 0.5)],
        };
        assert_eq!(f.inverse(0.9), None);
    }

    #[test]
    fn series_covers_range() {
        let f = SatisfactionFn::paper_frame_rate();
        let s = f.series(0.0, 30.0, 31);
        assert_eq!(s.len(), 31);
        assert_eq!(s[0], (0.0, 0.0));
        assert_eq!(s[30], (30.0, 1.0));
    }

    #[test]
    fn serde_round_trip() {
        let f = SatisfactionFn::Saturating {
            min_acceptable: 1.0,
            ideal: 2.0,
            scale: 0.5,
        };
        let json = serde_json::to_string(&f).unwrap();
        assert_eq!(serde_json::from_str::<SatisfactionFn>(&json).unwrap(), f);
    }
}
