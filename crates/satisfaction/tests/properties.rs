//! Property tests for the satisfaction model: the Section-4.1 contract
//! ("range [0..1] … must increase monotonically") and the optimizer's
//! constraint discipline.

use proptest::prelude::*;
use qosc_media::{Axis, AxisDomain, BitrateModel, DomainVector, ParamVector};
use qosc_satisfaction::{
    optimize, AxisPreference, Combiner, OptimizeOptions, Problem, SatisfactionFn,
    SatisfactionProfile,
};

fn arb_fn() -> impl Strategy<Value = SatisfactionFn> {
    prop_oneof![
        (0.0f64..100.0, 1.0f64..100.0).prop_map(|(m, span)| SatisfactionFn::Linear {
            min_acceptable: m,
            ideal: m + span,
        }),
        (0.0f64..100.0, 1.0f64..100.0, 0.1f64..50.0).prop_map(|(m, span, scale)| {
            SatisfactionFn::Saturating {
                min_acceptable: m,
                ideal: m + span,
                scale,
            }
        }),
        (0.0f64..100.0).prop_map(|t| SatisfactionFn::Step { threshold: t }),
        proptest::collection::vec((0.0f64..100.0, 0.0f64..1.0), 1..5).prop_map(|mut knots| {
            knots.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            // Make satisfactions non-decreasing too.
            let mut best = 0.0f64;
            for knot in &mut knots {
                best = best.max(knot.1);
                knot.1 = best;
            }
            SatisfactionFn::Piecewise { knots }
        }),
        Just(SatisfactionFn::Indifferent),
    ]
}

proptest! {
    /// Section 4.1: range [0, 1] and monotone non-decreasing.
    #[test]
    fn functions_are_monotone_in_range(f in arb_fn(), a in -10.0f64..200.0, b in -10.0f64..200.0) {
        prop_assume!(f.validate().is_ok());
        let (lo, hi) = (a.min(b), a.max(b));
        let s_lo = f.eval(lo);
        let s_hi = f.eval(hi);
        prop_assert!((0.0..=1.0).contains(&s_lo));
        prop_assert!((0.0..=1.0).contains(&s_hi));
        prop_assert!(s_lo <= s_hi + 1e-12, "monotonicity violated: {s_lo} > {s_hi}");
    }

    /// inverse() round-trips within tolerance wherever the target is
    /// reachable.
    #[test]
    fn inverse_round_trips(f in arb_fn(), target in 0.01f64..0.99) {
        prop_assume!(f.validate().is_ok());
        if let Some(x) = f.inverse(target) {
            if x.is_finite() {
                prop_assert!(
                    f.eval(x) + 1e-6 >= target,
                    "inverse({target}) = {x} but eval gives {}",
                    f.eval(x)
                );
            }
        }
    }

    /// The harmonic mean (Equa. 1) is bounded by min and arithmetic mean,
    /// and every combiner stays within [0, 1].
    #[test]
    fn combiner_bounds(values in proptest::collection::vec(0.0f64..=1.0, 1..6)) {
        let min = Combiner::Min.combine(&values).unwrap();
        let har = Combiner::HarmonicMean.combine(&values).unwrap();
        let geo = Combiner::GeometricMean.combine(&values).unwrap();
        let ari = Combiner::ArithmeticMean.combine(&values).unwrap();
        prop_assert!(min <= har + 1e-12);
        prop_assert!(har <= geo + 1e-12);
        prop_assert!(geo <= ari + 1e-12);
        for c in [min, har, geo, ari] {
            prop_assert!((0.0..=1.0).contains(&c));
        }
    }

    /// Weighted harmonic with equal weights equals Equa. 1.
    #[test]
    fn weighted_harmonic_reduces(values in proptest::collection::vec(0.01f64..=1.0, 1..6)) {
        let w = Combiner::WeightedHarmonic { weights: vec![2.5; values.len()] };
        let h = Combiner::HarmonicMean;
        prop_assert!((w.combine(&values).unwrap() - h.combine(&values).unwrap()).abs() < 1e-9);
    }

    /// Profile scores are monotone: raising any parameter value never
    /// lowers the total satisfaction.
    #[test]
    fn profile_score_is_monotone(
        f1 in arb_fn(),
        f2 in arb_fn(),
        x in 0.0f64..150.0,
        y in 0.0f64..150.0,
        bump in 0.0f64..50.0,
    ) {
        prop_assume!(f1.validate().is_ok() && f2.validate().is_ok());
        let profile = SatisfactionProfile::new()
            .with(AxisPreference::new(Axis::FrameRate, f1))
            .with(AxisPreference::new(Axis::Fidelity, f2));
        let p = ParamVector::from_pairs([(Axis::FrameRate, x), (Axis::Fidelity, y)]);
        let p_up = ParamVector::from_pairs([(Axis::FrameRate, x + bump), (Axis::Fidelity, y)]);
        prop_assert!(profile.score(&p) <= profile.score(&p_up) + 1e-12);
    }

    /// The optimizer never violates its constraints and never loses to
    /// the domain bottom.
    #[test]
    fn optimizer_respects_constraints(
        cap in 5.0f64..40.0,
        bandwidth in 1_000.0f64..50_000.0,
        budget in 0.1f64..10.0,
        price_per_mbit in 0.0f64..100.0,
    ) {
        let profile = SatisfactionProfile::paper_table1();
        let domain = DomainVector::new().with(
            Axis::FrameRate,
            AxisDomain::Continuous { min: 0.0, max: cap },
        );
        let bitrate = BitrateModel::LinearOnAxis { axis: Axis::FrameRate, slope: 1000.0 };
        let cost = move |p: &ParamVector| {
            price_per_mbit * bitrate.bits_per_second(p) / 1e6
        };
        let problem = Problem {
            profile: &profile,
            domain: &domain,
            bitrate: &bitrate,
            bandwidth_limit: bandwidth,
            cost: &cost,
            budget,
        };
        let optimum = optimize(&problem, &OptimizeOptions::default())
            .expect("a 0-fps configuration is always feasible here");
        prop_assert!(optimum.bits_per_second <= bandwidth * (1.0 + 1e-6) + 1e-6);
        prop_assert!(optimum.cost <= budget * (1.0 + 1e-6) + 1e-6);
        prop_assert!(domain.contains(&optimum.params));
        let bottom_sat = profile.score(&domain.bottom());
        prop_assert!(optimum.satisfaction + 1e-9 >= bottom_sat);
    }

    /// The single-axis optimizer is exact: it delivers
    /// min(cap, bandwidth-implied rate, budget-implied rate) fps.
    #[test]
    fn single_axis_optimum_is_exact(
        cap in 5.0f64..40.0,
        bandwidth in 1_000.0f64..50_000.0,
    ) {
        let profile = SatisfactionProfile::paper_table1();
        let domain = DomainVector::new().with(
            Axis::FrameRate,
            AxisDomain::Continuous { min: 0.0, max: cap },
        );
        let bitrate = BitrateModel::LinearOnAxis { axis: Axis::FrameRate, slope: 1000.0 };
        let free = |_: &ParamVector| 0.0;
        let problem = Problem {
            profile: &profile,
            domain: &domain,
            bitrate: &bitrate,
            bandwidth_limit: bandwidth,
            cost: &free,
            budget: f64::INFINITY,
        };
        let optimum = optimize(&problem, &OptimizeOptions::default()).expect("feasible");
        let limit = cap.min(bandwidth / 1000.0);
        let got = optimum.params.get(Axis::FrameRate).expect("axis set");
        if limit <= 30.0 {
            // Below the ideal, the optimizer rides the binding constraint
            // exactly.
            prop_assert!((got - limit).abs() < 1e-4, "expected {limit} fps, got {got}");
        } else {
            // Past the ideal every configuration in [30, limit] is fully
            // satisfying; the optimizer picks one of them (and prefers
            // not to waste bandwidth beyond it).
            prop_assert!((optimum.satisfaction - 1.0).abs() < 1e-9);
            prop_assert!(got <= limit * (1.0 + 1e-9) + 1e-6);
            prop_assert!(got + 1e-6 >= 30.0);
        }
    }
}
