//! Property tests for the media format algebra: the lattice-like
//! operations on parameter vectors and domains that quality monotonicity
//! (Section 4.4) rests on.

use proptest::prelude::*;
use qosc_media::{Axis, AxisDomain, BitrateModel, DomainVector, ParamVector};

fn arb_axis() -> impl Strategy<Value = Axis> {
    (0..Axis::COUNT).prop_map(|i| Axis::from_index(i).expect("index in range"))
}

fn arb_value() -> impl Strategy<Value = f64> {
    0.0f64..1e7
}

fn arb_param_vector() -> impl Strategy<Value = ParamVector> {
    proptest::collection::vec((arb_axis(), arb_value()), 0..Axis::COUNT)
        .prop_map(ParamVector::from_pairs)
}

fn arb_axis_domain() -> impl Strategy<Value = AxisDomain> {
    prop_oneof![
        (arb_value(), arb_value()).prop_map(|(a, b)| AxisDomain::Continuous {
            min: a.min(b),
            max: a.max(b),
        }),
        proptest::collection::vec(arb_value(), 1..6).prop_map(|mut values| {
            values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            values.dedup();
            AxisDomain::Discrete(values)
        }),
        arb_value().prop_map(AxisDomain::Fixed),
    ]
}

fn arb_domain_vector() -> impl Strategy<Value = DomainVector> {
    proptest::collection::vec((arb_axis(), arb_axis_domain()), 0..Axis::COUNT).prop_map(|pairs| {
        let mut dv = DomainVector::new();
        for (axis, domain) in pairs {
            dv.set(axis, domain);
        }
        dv
    })
}

proptest! {
    /// meet is idempotent, commutative on common axes, and dominated by
    /// its left operand.
    #[test]
    fn meet_properties(a in arb_param_vector(), b in arb_param_vector()) {
        let m = a.meet(&b);
        // Axes of the result are exactly the axes of `a`.
        prop_assert_eq!(m.axes().count(), a.axes().count());
        // Result never exceeds `a`, nor `b` on common axes.
        prop_assert!(m.le_on_common_axes(&a));
        prop_assert!(m.le_on_common_axes(&b));
        // Idempotent.
        prop_assert_eq!(m.meet(&b), m);
    }

    /// le_on_common_axes is reflexive, and meet(a, b) ≤ both.
    #[test]
    fn le_is_reflexive(a in arb_param_vector()) {
        prop_assert!(a.le_on_common_axes(&a));
    }

    /// floor(limit) returns an admissible value ≤ limit (or nothing).
    #[test]
    fn floor_is_admissible(domain in arb_axis_domain(), limit in arb_value()) {
        if let Some(v) = domain.floor(limit) {
            prop_assert!(v <= limit * (1.0 + 1e-9) + 1e-9);
            prop_assert!(domain.contains(v), "floor produced {v} outside the domain");
        } else {
            prop_assert!(domain.min() > limit, "floor failed although min ≤ limit");
        }
    }

    /// capped(c) never raises the max, never lowers the min, and is empty
    /// exactly when min > cap.
    #[test]
    fn capped_shrinks(domain in arb_axis_domain(), cap in arb_value()) {
        match domain.capped(cap) {
            Some(capped) => {
                prop_assert!(capped.max() <= domain.max() + 1e-9);
                prop_assert!(capped.max() <= cap * (1.0 + 1e-9) + 1e-9);
                prop_assert!(capped.min() >= domain.min() - 1e-9);
            }
            None => prop_assert!(domain.min() > cap - 1e-9),
        }
    }

    /// sample() values all live in the domain and are sorted ascending.
    #[test]
    fn samples_are_admissible(domain in arb_axis_domain(), n in 2usize..12) {
        let samples = domain.sample(n);
        prop_assert!(!samples.is_empty());
        for pair in samples.windows(2) {
            prop_assert!(pair[0] <= pair[1]);
        }
        for &v in &samples {
            // Continuous sampling can land between representable steps;
            // containment holds up to floating tolerance.
            prop_assert!(v >= domain.min() - 1e-9 && v <= domain.max() + 1e-9);
        }
    }

    /// top() and bottom() are admissible and ordered.
    #[test]
    fn top_bottom_are_admissible(dv in arb_domain_vector()) {
        let top = dv.top();
        let bottom = dv.bottom();
        prop_assert!(dv.contains(&top));
        prop_assert!(dv.contains(&bottom));
        prop_assert!(bottom.le_on_common_axes(&top));
    }

    /// capped_by never *adds* feasible quality: the capped top is ≤ both
    /// the original top and the caps.
    #[test]
    fn capped_by_is_monotone(dv in arb_domain_vector(), caps in arb_param_vector()) {
        if let Some(capped) = dv.capped_by(&caps) {
            let t = capped.top();
            prop_assert!(t.le_on_common_axes(&dv.top()));
            prop_assert!(t.le_on_common_axes(&caps));
        }
    }

    /// clamp() always lands inside the domain.
    #[test]
    fn clamp_lands_inside(dv in arb_domain_vector(), p in arb_param_vector()) {
        let clamped = dv.clamp(&p);
        // Same axes as the domain.
        prop_assert_eq!(clamped.axes().count(), dv.axes().count());
        for (axis, domain) in dv.iter() {
            let v = clamped.get(axis).expect("axis filled");
            prop_assert!(v >= domain.min() - 1e-9 && v <= domain.max() + 1e-9);
        }
    }

    /// Every bitrate model is monotone: raising any single axis never
    /// lowers the rate.
    #[test]
    fn bitrate_models_are_monotone(
        p in arb_param_vector(),
        axis in arb_axis(),
        bump in 0.0f64..1e5,
        ratio in 1.0f64..200.0,
    ) {
        let models = [
            BitrateModel::RawVideo,
            BitrateModel::CompressedVideo { compression_ratio: ratio },
            BitrateModel::RawAudio,
            BitrateModel::CompressedAudio { compression_ratio: ratio },
            BitrateModel::Image { compression_ratio: ratio, per_view_seconds: 5.0 },
            BitrateModel::Text { bits_per_fidelity_point: ratio },
            BitrateModel::LinearOnAxis { axis, slope: ratio },
        ];
        let mut raised = p;
        let base_value = p.get(axis).unwrap_or(0.0);
        raised.set(axis, base_value + bump);
        for model in models {
            let low = model.bits_per_second(&p);
            let high = model.bits_per_second(&raised);
            prop_assert!(
                high >= low - 1e-6,
                "{model:?} decreased from {low} to {high} when {axis} rose"
            );
        }
    }
}
