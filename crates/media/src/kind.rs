//! Coarse media classes.

use serde::{Deserialize, Serialize};

/// The coarse class of a media format.
///
/// The paper's motivating adaptations span all four kinds: "text
/// summarization, format change, reduction of image quality, … audio to
/// text conversion, video to key frame or video to text conversion"
/// (Section 1). A trans-coding service may change the kind (e.g. a
/// video-to-text converter has a `Video` input format and a `Text` output
/// format).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MediaKind {
    /// Moving pictures (frame rate, resolution and colour depth apply).
    Video,
    /// Sound (sample rate, channels and sample depth apply).
    Audio,
    /// Still pictures (resolution and colour depth apply).
    Image,
    /// Written content (fidelity — e.g. summarization level — applies).
    Text,
}

impl MediaKind {
    /// All kinds, in a fixed order.
    pub const ALL: [MediaKind; 4] = [
        MediaKind::Video,
        MediaKind::Audio,
        MediaKind::Image,
        MediaKind::Text,
    ];

    /// Short lowercase name (`"video"`, `"audio"`, `"image"`, `"text"`).
    pub fn name(self) -> &'static str {
        match self {
            MediaKind::Video => "video",
            MediaKind::Audio => "audio",
            MediaKind::Image => "image",
            MediaKind::Text => "text",
        }
    }

    /// Parse a kind from its short name (case-insensitive).
    pub fn parse(name: &str) -> Option<MediaKind> {
        match name.to_ascii_lowercase().as_str() {
            "video" => Some(MediaKind::Video),
            "audio" => Some(MediaKind::Audio),
            "image" => Some(MediaKind::Image),
            "text" => Some(MediaKind::Text),
            _ => None,
        }
    }

    /// Whether content of this kind is consumed continuously (streamed)
    /// rather than delivered once. Streamed kinds are subject to sustained
    /// bandwidth constraints; one-shot kinds to transfer-time constraints.
    pub fn is_streamed(self) -> bool {
        matches!(self, MediaKind::Video | MediaKind::Audio)
    }
}

impl std::fmt::Display for MediaKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for kind in MediaKind::ALL {
            assert_eq!(MediaKind::parse(kind.name()), Some(kind));
        }
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!(MediaKind::parse("VIDEO"), Some(MediaKind::Video));
        assert_eq!(MediaKind::parse("Text"), Some(MediaKind::Text));
    }

    #[test]
    fn parse_rejects_unknown() {
        assert_eq!(MediaKind::parse("smellovision"), None);
    }

    #[test]
    fn streamed_kinds() {
        assert!(MediaKind::Video.is_streamed());
        assert!(MediaKind::Audio.is_streamed());
        assert!(!MediaKind::Image.is_streamed());
        assert!(!MediaKind::Text.is_streamed());
    }
}
