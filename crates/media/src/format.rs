//! Interned media formats.
//!
//! Every edge of the paper's adaptation graph is labelled with a *format*
//! (`F5`, `F10`, …): the concrete encoding a piece of content is in between
//! two trans-coding stages. Formats are interned into a [`FormatRegistry`]
//! so that graph algorithms deal in dense `u32` ids rather than strings.

use crate::bitrate::BitrateModel;
use crate::kind::MediaKind;
use crate::{MediaError, Result};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Dense identifier of a format within one [`FormatRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FormatId(pub(crate) u32);

impl FormatId {
    /// The raw index (valid only for the registry that produced it).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Everything the framework knows about one media format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FormatSpec {
    /// Canonical name, e.g. `"video/mpeg2"` or the paper's abstract `"F5"`.
    pub name: String,
    /// Coarse media class.
    pub kind: MediaKind,
    /// How a parameter configuration in this format translates into bits
    /// per second — the `bandwidth_requirement(x1..xn)` of Equa. 2.
    pub bitrate: BitrateModel,
}

impl FormatSpec {
    /// A new spec with the given name, kind and bitrate model.
    pub fn new(name: impl Into<String>, kind: MediaKind, bitrate: BitrateModel) -> FormatSpec {
        FormatSpec {
            name: name.into(),
            kind,
            bitrate,
        }
    }
}

/// An append-only, interning registry of media formats.
///
/// A registry is an explicit value: profiles store format *names*, and the
/// graph builder resolves them against the registry shared by a scenario.
/// Lookup by name is O(1); lookup by id is an array index.
///
/// ```
/// use qosc_media::{FormatRegistry, MediaKind};
///
/// let mut registry = FormatRegistry::with_builtins();
/// let mpeg2 = registry.lookup("video/mpeg2").unwrap();
/// assert_eq!(registry.spec(mpeg2).unwrap().kind, MediaKind::Video);
///
/// // Abstract formats (the paper's F1, F2, …) intern on demand.
/// let f5 = registry.register_abstract("F5", MediaKind::Video);
/// assert_eq!(registry.name(f5), "F5");
/// ```
#[derive(Debug, Clone, Default)]
pub struct FormatRegistry {
    specs: Vec<FormatSpec>,
    by_name: HashMap<String, FormatId>,
}

impl FormatRegistry {
    /// An empty registry.
    pub fn new() -> FormatRegistry {
        FormatRegistry::default()
    }

    /// A registry pre-populated with the built-in catalog of real-world
    /// formats (see [`FormatRegistry::install_builtins`]).
    pub fn with_builtins() -> FormatRegistry {
        let mut reg = FormatRegistry::new();
        reg.install_builtins();
        reg
    }

    /// Intern `spec`, returning its id. If a format with the same name is
    /// already registered, the existing id is returned and the existing
    /// spec is kept (first registration wins).
    pub fn register(&mut self, spec: FormatSpec) -> FormatId {
        if let Some(&id) = self.by_name.get(&spec.name) {
            return id;
        }
        let id = FormatId(u32::try_from(self.specs.len()).expect("fewer than 2^32 formats"));
        self.by_name.insert(spec.name.clone(), id);
        self.specs.push(spec);
        id
    }

    /// Intern an *abstract* format (the paper's `F1`, `F2`, …): a named
    /// placeholder of the given kind with the kind's default bitrate model.
    pub fn register_abstract(&mut self, name: impl Into<String>, kind: MediaKind) -> FormatId {
        let name = name.into();
        self.register(FormatSpec::new(name, kind, BitrateModel::default_for(kind)))
    }

    /// Resolve a format name to its id.
    pub fn lookup(&self, name: &str) -> Result<FormatId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| MediaError::UnknownFormat(name.to_string()))
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// The spec for `id`.
    pub fn spec(&self, id: FormatId) -> Result<&FormatSpec> {
        self.specs
            .get(id.index())
            .ok_or(MediaError::StaleFormatId(id))
    }

    /// The name for `id` (convenience over [`FormatRegistry::spec`]).
    pub fn name(&self, id: FormatId) -> &str {
        self.specs
            .get(id.index())
            .map(|s| s.name.as_str())
            .unwrap_or("<stale>")
    }

    /// Number of registered formats.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// All `(id, spec)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (FormatId, &FormatSpec)> + '_ {
        self.specs
            .iter()
            .enumerate()
            .map(|(i, s)| (FormatId(i as u32), s))
    }

    /// Register the built-in catalog of real-world formats the paper's
    /// examples mention (JPEG, GIF, HTML, WML, MPEG video, PCM/MP3 audio,
    /// …). Idempotent.
    pub fn install_builtins(&mut self) {
        use MediaKind::*;
        let video = |r| BitrateModel::CompressedVideo {
            compression_ratio: r,
        };
        let audio = |r| BitrateModel::CompressedAudio {
            compression_ratio: r,
        };
        let image = |r| BitrateModel::Image {
            compression_ratio: r,
            per_view_seconds: 5.0,
        };
        let entries: [(&str, MediaKind, BitrateModel); 18] = [
            ("video/raw", Video, BitrateModel::RawVideo),
            ("video/mjpeg", Video, video(20.0)),
            ("video/mpeg1", Video, video(50.0)),
            ("video/mpeg2", Video, video(80.0)),
            ("video/h261", Video, video(100.0)),
            ("video/h263", Video, video(150.0)),
            ("video/mpeg4", Video, video(200.0)),
            ("audio/pcm", Audio, BitrateModel::RawAudio),
            ("audio/mp3", Audio, audio(11.0)),
            ("audio/aac", Audio, audio(15.0)),
            ("audio/amr", Audio, audio(25.0)),
            ("audio/gsm", Audio, audio(8.0)),
            ("image/bmp", Image, image(1.0)),
            ("image/jpeg", Image, image(10.0)),
            ("image/gif", Image, image(4.0)),
            ("image/png", Image, image(2.0)),
            (
                "text/html",
                Text,
                BitrateModel::Text {
                    bits_per_fidelity_point: 4000.0,
                },
            ),
            (
                "text/wml",
                Text,
                BitrateModel::Text {
                    bits_per_fidelity_point: 800.0,
                },
            ),
        ];
        for (name, kind, bitrate) in entries {
            self.register(FormatSpec::new(name, kind, bitrate));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut reg = FormatRegistry::new();
        let id = reg.register_abstract("F5", MediaKind::Video);
        assert_eq!(reg.lookup("F5").unwrap(), id);
        assert_eq!(reg.name(id), "F5");
        assert_eq!(reg.spec(id).unwrap().kind, MediaKind::Video);
    }

    #[test]
    fn register_is_idempotent_first_wins() {
        let mut reg = FormatRegistry::new();
        let a = reg.register(FormatSpec::new(
            "x",
            MediaKind::Video,
            BitrateModel::RawVideo,
        ));
        let b = reg.register(FormatSpec::new(
            "x",
            MediaKind::Audio,
            BitrateModel::RawAudio,
        ));
        assert_eq!(a, b);
        assert_eq!(
            reg.spec(a).unwrap().kind,
            MediaKind::Video,
            "first registration wins"
        );
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn lookup_unknown_fails() {
        let reg = FormatRegistry::new();
        assert!(matches!(
            reg.lookup("nope"),
            Err(MediaError::UnknownFormat(_))
        ));
    }

    #[test]
    fn stale_id_fails() {
        let reg = FormatRegistry::new();
        assert!(matches!(
            reg.spec(FormatId(7)),
            Err(MediaError::StaleFormatId(_))
        ));
        assert_eq!(reg.name(FormatId(7)), "<stale>");
    }

    #[test]
    fn builtins_install_idempotently() {
        let mut reg = FormatRegistry::with_builtins();
        let n = reg.len();
        assert!(n >= 18);
        reg.install_builtins();
        assert_eq!(reg.len(), n);
        assert!(reg.contains("video/mpeg2"));
        assert!(reg.contains("text/wml"));
    }

    #[test]
    fn iter_yields_registration_order() {
        let mut reg = FormatRegistry::new();
        let a = reg.register_abstract("A", MediaKind::Text);
        let b = reg.register_abstract("B", MediaKind::Text);
        let ids: Vec<FormatId> = reg.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![a, b]);
    }
}
