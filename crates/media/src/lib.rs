//! # qosc-media
//!
//! Media format algebra and QoS parameter model for the `qosc`
//! content-adaptation framework (a reproduction of *"A QoS-based Service
//! Composition for Content Adaptation"*, El-Khatib, Bochmann & El-Saddik,
//! ICDE 2007).
//!
//! This crate is the vocabulary every other crate speaks:
//!
//! * [`MediaKind`] — coarse media classes (video, audio, image, text),
//! * [`FormatRegistry`] / [`FormatId`] — interned media formats (the `F5`,
//!   `F10`, … labels on the edges of the paper's adaptation graph, or real
//!   codec names such as `video/mpeg2`),
//! * [`Axis`] / [`ParamVector`] / [`DomainVector`] — the application-level
//!   QoS parameters of Section 4.1 (frame rate, resolution, colour depth,
//!   audio quality, …), their values and their feasible ranges,
//! * [`BitrateModel`] — the `bandwidth_requirement(x1..xn)` function of
//!   Equa. 2: how many bits per second a parameter configuration costs,
//! * [`ContentVariant`] — one concrete variant of a piece of content
//!   (a format plus a parameter vector), as listed in a content profile.
//!
//! Everything here is deterministic, `Send + Sync`, and free of global
//! state: a [`FormatRegistry`] is an explicit value that the caller threads
//! through profile resolution and graph construction.

pub mod bitrate;
pub mod format;
pub mod kind;
pub mod params;
pub mod variant;

pub use bitrate::BitrateModel;
pub use format::{FormatId, FormatRegistry, FormatSpec};
pub use kind::MediaKind;
pub use params::{Axis, AxisDomain, DomainVector, ParamVector};
pub use variant::{ContentVariant, VariantSpec};

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum MediaError {
    /// A format name was looked up in a [`FormatRegistry`] that does not
    /// contain it.
    UnknownFormat(String),
    /// A [`FormatId`] was used with a registry it does not belong to.
    StaleFormatId(FormatId),
    /// A domain was constructed with an empty or inverted range.
    EmptyDomain {
        /// Axis on which the invalid domain was declared.
        axis: Axis,
        /// Human-readable description of the problem.
        detail: String,
    },
    /// A parameter value was not finite or was negative where a physical
    /// quantity was expected.
    InvalidValue {
        /// Axis on which the invalid value appeared.
        axis: Axis,
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for MediaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MediaError::UnknownFormat(name) => write!(f, "unknown media format `{name}`"),
            MediaError::StaleFormatId(id) => {
                write!(f, "format id {id:?} does not belong to this registry")
            }
            MediaError::EmptyDomain { axis, detail } => {
                write!(f, "empty domain on axis {axis}: {detail}")
            }
            MediaError::InvalidValue { axis, value } => {
                write!(f, "invalid value {value} on axis {axis}")
            }
        }
    }
}

impl std::error::Error for MediaError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MediaError>;
