//! Content variants.
//!
//! A content profile (Section 3, "Content Profile") lists the variants of a
//! piece of content the sender can emit. Each output link of the sender
//! vertex in the adaptation graph "corresponds to one variant with a
//! certain format" (Section 4.2).

use crate::format::FormatId;
use crate::params::{DomainVector, ParamVector};
use serde::{Deserialize, Serialize};

/// One variant of a piece of content: a format plus the quality the sender
/// can offer in that format.
///
/// `offered` is a *domain*, not a point: a source that holds a 30 fps
/// master can emit that variant at any frame rate up to 30. The selection
/// algorithm picks the operating point inside the domain.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentVariant {
    /// The encoding of this variant.
    pub format: FormatId,
    /// Quality configurations the sender can produce for this variant.
    pub offered: DomainVector,
}

impl ContentVariant {
    /// A variant offering every configuration in `offered`.
    pub fn new(format: FormatId, offered: DomainVector) -> ContentVariant {
        ContentVariant { format, offered }
    }

    /// The best configuration the sender can emit for this variant.
    pub fn best(&self) -> ParamVector {
        self.offered.top()
    }
}

/// A serializable, registry-independent description of a variant, used in
/// profile files (formats by name). Resolution to [`ContentVariant`]
/// happens in `qosc-profiles`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariantSpec {
    /// Format name, resolved against the scenario's [`crate::FormatRegistry`].
    pub format: String,
    /// Offered quality configurations.
    pub offered: DomainVector,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Axis, AxisDomain};
    use crate::{FormatRegistry, MediaKind};

    #[test]
    fn best_is_domain_top() {
        let mut reg = FormatRegistry::new();
        let f = reg.register_abstract("F1", MediaKind::Video);
        let v = ContentVariant::new(
            f,
            DomainVector::new().with(
                Axis::FrameRate,
                AxisDomain::continuous(Axis::FrameRate, 0.0, 30.0).unwrap(),
            ),
        );
        assert_eq!(v.best().get(Axis::FrameRate), Some(30.0));
    }

    #[test]
    fn variant_spec_serde_round_trip() {
        let spec = VariantSpec {
            format: "video/mpeg2".to_string(),
            offered: DomainVector::new().with(Axis::FrameRate, AxisDomain::Fixed(25.0)),
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: VariantSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
