//! Application-level QoS parameters (Section 4.1 of the paper).
//!
//! Each parameter is a variable `xi` over the set of possible values for
//! that QoS dimension. This module provides:
//!
//! * [`Axis`] — the QoS dimensions the framework knows about,
//! * [`ParamVector`] — a concrete assignment of values to a subset of axes,
//! * [`AxisDomain`] / [`DomainVector`] — the feasible value sets from which
//!   the optimizer in `qosc-satisfaction` picks a configuration.

use crate::MediaError;
use serde::{Deserialize, Serialize};

/// A QoS parameter axis.
///
/// The paper's examples use frame rate, resolution, colour depth and audio
/// quality; we pin down a concrete, closed set of axes so that parameter
/// vectors can be stored as small fixed arrays (cheap to copy in the hot
/// selection loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Axis {
    /// Video frames per second.
    FrameRate,
    /// Total pixels per frame (width × height).
    PixelCount,
    /// Bits per pixel (colour depth).
    ColorDepth,
    /// Audio samples per second (Hz).
    SampleRate,
    /// Number of audio channels.
    Channels,
    /// Bits per audio sample.
    SampleDepth,
    /// Generic fidelity knob in `[0, 100]` — compression quality for
    /// images, summarization level for text, encoder quality for video.
    Fidelity,
}

impl Axis {
    /// Number of axes.
    pub const COUNT: usize = 7;

    /// All axes, in index order.
    pub const ALL: [Axis; Axis::COUNT] = [
        Axis::FrameRate,
        Axis::PixelCount,
        Axis::ColorDepth,
        Axis::SampleRate,
        Axis::Channels,
        Axis::SampleDepth,
        Axis::Fidelity,
    ];

    /// Dense index of this axis, for array-backed storage.
    pub fn index(self) -> usize {
        match self {
            Axis::FrameRate => 0,
            Axis::PixelCount => 1,
            Axis::ColorDepth => 2,
            Axis::SampleRate => 3,
            Axis::Channels => 4,
            Axis::SampleDepth => 5,
            Axis::Fidelity => 6,
        }
    }

    /// Inverse of [`Axis::index`].
    pub fn from_index(index: usize) -> Option<Axis> {
        Axis::ALL.get(index).copied()
    }

    /// Short snake_case name, used in profile files and reports.
    pub fn name(self) -> &'static str {
        match self {
            Axis::FrameRate => "frame_rate",
            Axis::PixelCount => "pixel_count",
            Axis::ColorDepth => "color_depth",
            Axis::SampleRate => "sample_rate",
            Axis::Channels => "channels",
            Axis::SampleDepth => "sample_depth",
            Axis::Fidelity => "fidelity",
        }
    }

    /// Measurement unit, for reports.
    pub fn unit(self) -> &'static str {
        match self {
            Axis::FrameRate => "fps",
            Axis::PixelCount => "px",
            Axis::ColorDepth => "bit",
            Axis::SampleRate => "Hz",
            Axis::Channels => "ch",
            Axis::SampleDepth => "bit",
            Axis::Fidelity => "%",
        }
    }

    /// Parse from the snake_case [`Axis::name`].
    pub fn parse(name: &str) -> Option<Axis> {
        Axis::ALL.iter().copied().find(|a| a.name() == name)
    }
}

impl std::fmt::Display for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A (partial) assignment of values to QoS axes.
///
/// Axes not present are "not applicable" for the media at hand (an audio
/// stream has no frame rate). Values are finite, non-negative `f64`s.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ParamVector {
    values: [Option<f64>; Axis::COUNT],
}

impl ParamVector {
    /// The empty vector (no axis set).
    pub fn new() -> ParamVector {
        ParamVector::default()
    }

    /// Build a vector from `(axis, value)` pairs. Later pairs overwrite
    /// earlier ones.
    pub fn from_pairs<I: IntoIterator<Item = (Axis, f64)>>(pairs: I) -> ParamVector {
        let mut v = ParamVector::new();
        for (axis, value) in pairs {
            v.set(axis, value);
        }
        v
    }

    /// Value on `axis`, if set.
    pub fn get(&self, axis: Axis) -> Option<f64> {
        self.values[axis.index()]
    }

    /// Set `axis` to `value` (overwrites). Non-finite values are stored as
    /// unset, so a `ParamVector` never contains NaN.
    pub fn set(&mut self, axis: Axis, value: f64) -> &mut ParamVector {
        self.values[axis.index()] = value.is_finite().then_some(value);
        self
    }

    /// Builder-style [`ParamVector::set`].
    pub fn with(mut self, axis: Axis, value: f64) -> ParamVector {
        self.set(axis, value);
        self
    }

    /// Remove `axis` from the vector.
    pub fn unset(&mut self, axis: Axis) -> &mut ParamVector {
        self.values[axis.index()] = None;
        self
    }

    /// Axes that have a value, in index order.
    pub fn axes(&self) -> impl Iterator<Item = Axis> + '_ {
        Axis::ALL
            .iter()
            .copied()
            .filter(move |a| self.values[a.index()].is_some())
    }

    /// `(axis, value)` pairs, in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Axis, f64)> + '_ {
        self.axes()
            .map(move |a| (a, self.values[a.index()].unwrap()))
    }

    /// Number of axes set.
    pub fn len(&self) -> usize {
        self.values.iter().filter(|v| v.is_some()).count()
    }

    /// Whether no axis is set.
    pub fn is_empty(&self) -> bool {
        self.values.iter().all(|v| v.is_none())
    }

    /// Axis-wise minimum with `caps`, over the axes of `self`.
    ///
    /// This is the *quality monotonicity* operation of Section 4.4: a
    /// trans-coding stage "can only reduce the quality of the content", so
    /// the parameters delivered downstream of a stage are the upstream
    /// parameters capped by what the stage (and the network) can sustain.
    /// Axes set in `caps` but not in `self` are ignored.
    pub fn meet(&self, caps: &ParamVector) -> ParamVector {
        let mut out = *self;
        for axis in Axis::ALL {
            if let (Some(own), Some(cap)) = (self.get(axis), caps.get(axis)) {
                out.set(axis, own.min(cap));
            }
        }
        out
    }

    /// True if on every axis set in both vectors, `self`'s value is less
    /// than or equal to `other`'s (i.e. `self` is a degraded-or-equal
    /// configuration). Axes present in only one vector are ignored.
    pub fn le_on_common_axes(&self, other: &ParamVector) -> bool {
        Axis::ALL
            .iter()
            .all(|&axis| match (self.get(axis), other.get(axis)) {
                (Some(a), Some(b)) => a <= b + 1e-12,
                _ => true,
            })
    }

    /// Validate that every value is finite and non-negative.
    pub fn validate(&self) -> Result<(), MediaError> {
        for (axis, value) in self.iter() {
            if !value.is_finite() || value < 0.0 {
                return Err(MediaError::InvalidValue { axis, value });
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for ParamVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, (axis, value)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{axis}={value}")?;
        }
        write!(f, "}}")
    }
}

/// The feasible set of values on one axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AxisDomain {
    /// A closed real interval `[min, max]`.
    Continuous {
        /// Lower bound (inclusive).
        min: f64,
        /// Upper bound (inclusive).
        max: f64,
    },
    /// A finite set of admissible values, kept sorted ascending.
    Discrete(Vec<f64>),
    /// Exactly one admissible value.
    Fixed(f64),
}

impl AxisDomain {
    /// A validated continuous domain.
    pub fn continuous(axis: Axis, min: f64, max: f64) -> Result<AxisDomain, MediaError> {
        if !(min.is_finite() && max.is_finite()) || min > max || min < 0.0 {
            return Err(MediaError::EmptyDomain {
                axis,
                detail: format!("continuous [{min}, {max}]"),
            });
        }
        Ok(AxisDomain::Continuous { min, max })
    }

    /// A validated discrete domain; `values` is sorted and deduplicated.
    pub fn discrete(axis: Axis, mut values: Vec<f64>) -> Result<AxisDomain, MediaError> {
        values.retain(|v| v.is_finite());
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        values.dedup();
        if values.is_empty() || values[0] < 0.0 {
            return Err(MediaError::EmptyDomain {
                axis,
                detail: "discrete domain with no finite non-negative values".to_string(),
            });
        }
        Ok(AxisDomain::Discrete(values))
    }

    /// Largest admissible value.
    pub fn max(&self) -> f64 {
        match self {
            AxisDomain::Continuous { max, .. } => *max,
            AxisDomain::Discrete(values) => *values.last().expect("non-empty by construction"),
            AxisDomain::Fixed(v) => *v,
        }
    }

    /// Smallest admissible value.
    pub fn min(&self) -> f64 {
        match self {
            AxisDomain::Continuous { min, .. } => *min,
            AxisDomain::Discrete(values) => values[0],
            AxisDomain::Fixed(v) => *v,
        }
    }

    /// Whether `value` is admissible (with a small tolerance for discrete
    /// membership).
    pub fn contains(&self, value: f64) -> bool {
        match self {
            AxisDomain::Continuous { min, max } => (*min..=*max).contains(&value),
            AxisDomain::Discrete(values) => values
                .iter()
                .any(|v| (v - value).abs() <= 1e-9 * v.abs().max(1.0)),
            AxisDomain::Fixed(v) => (v - value).abs() <= 1e-9 * v.abs().max(1.0),
        }
    }

    /// The largest admissible value that is `<= limit`, or `None` if every
    /// admissible value exceeds `limit`.
    pub fn floor(&self, limit: f64) -> Option<f64> {
        match self {
            AxisDomain::Continuous { min, max } => {
                if limit < *min {
                    None
                } else {
                    Some(limit.min(*max))
                }
            }
            AxisDomain::Discrete(values) => {
                values.iter().rev().find(|&&v| v <= limit + 1e-12).copied()
            }
            AxisDomain::Fixed(v) => (*v <= limit + 1e-12).then_some(*v),
        }
    }

    /// Restrict the domain so that no value exceeds `cap`. Returns `None`
    /// if the restriction empties the domain.
    pub fn capped(&self, cap: f64) -> Option<AxisDomain> {
        match self {
            AxisDomain::Continuous { min, max } => {
                if cap < *min {
                    None
                } else {
                    Some(AxisDomain::Continuous {
                        min: *min,
                        max: max.min(cap),
                    })
                }
            }
            AxisDomain::Discrete(values) => {
                let kept: Vec<f64> = values
                    .iter()
                    .copied()
                    .filter(|&v| v <= cap + 1e-12)
                    .collect();
                if kept.is_empty() {
                    None
                } else {
                    Some(AxisDomain::Discrete(kept))
                }
            }
            AxisDomain::Fixed(v) => (*v <= cap + 1e-12).then_some(AxisDomain::Fixed(*v)),
        }
    }

    /// A deterministic sample of up to `n` admissible values, ascending,
    /// always including the domain's min and max. Used by the grid phase
    /// of the parameter optimizer.
    pub fn sample(&self, n: usize) -> Vec<f64> {
        let n = n.max(2);
        match self {
            AxisDomain::Continuous { min, max } => {
                if (max - min).abs() < 1e-12 {
                    return vec![*min];
                }
                (0..n)
                    // The interpolation can overshoot `max` by an ulp at
                    // large magnitudes; samples must stay admissible.
                    .map(|i| (min + (max - min) * i as f64 / (n - 1) as f64).clamp(*min, *max))
                    .collect()
            }
            AxisDomain::Discrete(values) => {
                if values.len() <= n {
                    return values.clone();
                }
                let mut out: Vec<f64> = (0..n)
                    .map(|i| values[i * (values.len() - 1) / (n - 1)])
                    .collect();
                out.dedup();
                out
            }
            AxisDomain::Fixed(v) => vec![*v],
        }
    }

    /// Whether this domain admits more than one value.
    pub fn is_degenerate(&self) -> bool {
        match self {
            AxisDomain::Continuous { min, max } => (max - min).abs() < 1e-12,
            AxisDomain::Discrete(values) => values.len() == 1,
            AxisDomain::Fixed(_) => true,
        }
    }
}

/// Per-axis feasible sets: the configuration space of a trans-coding
/// service's output (or of a content variant at the sender).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DomainVector {
    domains: [Option<AxisDomain>; Axis::COUNT],
}

impl DomainVector {
    /// The empty domain vector (no axis constrained or available).
    pub fn new() -> DomainVector {
        DomainVector::default()
    }

    /// Builder-style: set the domain for `axis`.
    pub fn with(mut self, axis: Axis, domain: AxisDomain) -> DomainVector {
        self.set(axis, domain);
        self
    }

    /// Set the domain for `axis`.
    pub fn set(&mut self, axis: Axis, domain: AxisDomain) -> &mut DomainVector {
        self.domains[axis.index()] = Some(domain);
        self
    }

    /// Domain on `axis`, if any.
    pub fn get(&self, axis: Axis) -> Option<&AxisDomain> {
        self.domains[axis.index()].as_ref()
    }

    /// Axes with a domain, in index order.
    pub fn axes(&self) -> impl Iterator<Item = Axis> + '_ {
        Axis::ALL
            .iter()
            .copied()
            .filter(move |a| self.domains[a.index()].is_some())
    }

    /// `(axis, domain)` pairs, in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Axis, &AxisDomain)> + '_ {
        self.axes()
            .map(move |a| (a, self.domains[a.index()].as_ref().unwrap()))
    }

    /// Number of axes with a domain.
    pub fn len(&self) -> usize {
        self.domains.iter().filter(|d| d.is_some()).count()
    }

    /// Whether no axis has a domain.
    pub fn is_empty(&self) -> bool {
        self.domains.iter().all(|d| d.is_none())
    }

    /// The best (maximal) configuration: every axis at its domain maximum.
    pub fn top(&self) -> ParamVector {
        let mut v = ParamVector::new();
        for (axis, domain) in self.iter() {
            v.set(axis, domain.max());
        }
        v
    }

    /// The worst (minimal) configuration: every axis at its domain minimum.
    pub fn bottom(&self) -> ParamVector {
        let mut v = ParamVector::new();
        for (axis, domain) in self.iter() {
            v.set(axis, domain.min());
        }
        v
    }

    /// Restrict every axis by the corresponding cap in `caps` (axes without
    /// a cap are unchanged). Returns `None` if any axis becomes infeasible —
    /// i.e. the upstream quality is already below everything this domain
    /// can produce.
    pub fn capped_by(&self, caps: &ParamVector) -> Option<DomainVector> {
        let mut out = DomainVector::new();
        for (axis, domain) in self.iter() {
            let restricted = match caps.get(axis) {
                Some(cap) => domain.capped(cap)?,
                None => domain.clone(),
            };
            out.set(axis, restricted);
        }
        Some(out)
    }

    /// Whether `point` is admissible: every axis of `self` has a value in
    /// `point` inside its domain, and `point` has no extra axes.
    pub fn contains(&self, point: &ParamVector) -> bool {
        let same_axes = Axis::ALL
            .iter()
            .all(|&a| self.get(a).is_some() == point.get(a).is_some());
        same_axes
            && self
                .iter()
                .all(|(axis, domain)| domain.contains(point.get(axis).expect("axis checked")))
    }

    /// Clamp `point` axis-wise into the domain (projecting each value to
    /// the nearest admissible value not exceeding it when possible,
    /// otherwise to the domain minimum). Axes of `self` missing from
    /// `point` are filled with the domain maximum.
    pub fn clamp(&self, point: &ParamVector) -> ParamVector {
        let mut out = ParamVector::new();
        for (axis, domain) in self.iter() {
            let value = match point.get(axis) {
                Some(v) => domain.floor(v).unwrap_or_else(|| domain.min()),
                None => domain.max(),
            };
            out.set(axis, value);
        }
        out
    }
}

impl std::fmt::Display for DomainVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, (axis, domain)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match domain {
                AxisDomain::Continuous { min, max } => write!(f, "{axis}∈[{min}, {max}]")?,
                AxisDomain::Discrete(vs) => write!(f, "{axis}∈{vs:?}")?,
                AxisDomain::Fixed(v) => write!(f, "{axis}={v}")?,
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_index_round_trips() {
        for axis in Axis::ALL {
            assert_eq!(Axis::from_index(axis.index()), Some(axis));
            assert_eq!(Axis::parse(axis.name()), Some(axis));
        }
        assert_eq!(Axis::from_index(Axis::COUNT), None);
    }

    #[test]
    fn param_vector_set_get_unset() {
        let mut v = ParamVector::new();
        assert!(v.is_empty());
        v.set(Axis::FrameRate, 30.0);
        assert_eq!(v.get(Axis::FrameRate), Some(30.0));
        assert_eq!(v.len(), 1);
        v.unset(Axis::FrameRate);
        assert!(v.is_empty());
    }

    #[test]
    fn param_vector_rejects_nan() {
        let mut v = ParamVector::new();
        v.set(Axis::FrameRate, f64::NAN);
        assert_eq!(v.get(Axis::FrameRate), None);
    }

    #[test]
    fn param_vector_meet_caps_only_common_axes() {
        let a = ParamVector::from_pairs([(Axis::FrameRate, 30.0), (Axis::PixelCount, 1e6)]);
        let caps = ParamVector::from_pairs([(Axis::FrameRate, 20.0), (Axis::ColorDepth, 8.0)]);
        let m = a.meet(&caps);
        assert_eq!(m.get(Axis::FrameRate), Some(20.0));
        assert_eq!(m.get(Axis::PixelCount), Some(1e6));
        assert_eq!(m.get(Axis::ColorDepth), None, "caps must not add axes");
    }

    #[test]
    fn le_on_common_axes_ignores_disjoint() {
        let a = ParamVector::from_pairs([(Axis::FrameRate, 10.0)]);
        let b = ParamVector::from_pairs([(Axis::SampleRate, 8000.0)]);
        assert!(a.le_on_common_axes(&b));
        let c = ParamVector::from_pairs([(Axis::FrameRate, 5.0)]);
        assert!(c.le_on_common_axes(&a));
        assert!(!a.le_on_common_axes(&c));
    }

    #[test]
    fn validate_rejects_negative() {
        let mut v = ParamVector::new();
        v.values[Axis::FrameRate.index()] = Some(-1.0);
        assert!(matches!(
            v.validate(),
            Err(MediaError::InvalidValue {
                axis: Axis::FrameRate,
                ..
            })
        ));
    }

    #[test]
    fn continuous_domain_validation() {
        assert!(AxisDomain::continuous(Axis::FrameRate, 5.0, 30.0).is_ok());
        assert!(AxisDomain::continuous(Axis::FrameRate, 30.0, 5.0).is_err());
        assert!(AxisDomain::continuous(Axis::FrameRate, -1.0, 5.0).is_err());
        assert!(AxisDomain::continuous(Axis::FrameRate, 0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn discrete_domain_sorts_and_dedups() {
        let d = AxisDomain::discrete(Axis::SampleRate, vec![44100.0, 8000.0, 44100.0, 22050.0])
            .unwrap();
        assert_eq!(d, AxisDomain::Discrete(vec![8000.0, 22050.0, 44100.0]));
        assert_eq!(d.min(), 8000.0);
        assert_eq!(d.max(), 44100.0);
    }

    #[test]
    fn domain_floor() {
        let c = AxisDomain::continuous(Axis::FrameRate, 5.0, 30.0).unwrap();
        assert_eq!(c.floor(20.0), Some(20.0));
        assert_eq!(c.floor(40.0), Some(30.0));
        assert_eq!(c.floor(1.0), None);

        let d = AxisDomain::discrete(Axis::FrameRate, vec![5.0, 15.0, 25.0]).unwrap();
        assert_eq!(d.floor(20.0), Some(15.0));
        assert_eq!(d.floor(25.0), Some(25.0));
        assert_eq!(d.floor(4.0), None);
    }

    #[test]
    fn domain_capped() {
        let c = AxisDomain::continuous(Axis::FrameRate, 5.0, 30.0).unwrap();
        assert_eq!(
            c.capped(20.0),
            Some(AxisDomain::Continuous {
                min: 5.0,
                max: 20.0
            })
        );
        assert_eq!(c.capped(4.0), None);

        let d = AxisDomain::discrete(Axis::FrameRate, vec![5.0, 15.0, 25.0]).unwrap();
        assert_eq!(d.capped(15.0), Some(AxisDomain::Discrete(vec![5.0, 15.0])));
        assert_eq!(d.capped(1.0), None);
    }

    #[test]
    fn domain_sample_includes_endpoints() {
        let c = AxisDomain::continuous(Axis::FrameRate, 0.0, 30.0).unwrap();
        let s = c.sample(4);
        assert_eq!(s.first(), Some(&0.0));
        assert_eq!(s.last(), Some(&30.0));
        assert_eq!(s.len(), 4);

        let d = AxisDomain::discrete(Axis::FrameRate, vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(d.sample(10), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn domain_vector_top_bottom_contains() {
        let dv = DomainVector::new()
            .with(
                Axis::FrameRate,
                AxisDomain::continuous(Axis::FrameRate, 5.0, 30.0).unwrap(),
            )
            .with(
                Axis::PixelCount,
                AxisDomain::discrete(Axis::PixelCount, vec![76800.0, 307200.0]).unwrap(),
            );
        let top = dv.top();
        assert_eq!(top.get(Axis::FrameRate), Some(30.0));
        assert_eq!(top.get(Axis::PixelCount), Some(307200.0));
        assert!(dv.contains(&top));
        assert!(dv.contains(&dv.bottom()));
        let outside = top.with(Axis::FrameRate, 31.0);
        assert!(!dv.contains(&outside));
        let extra_axis = top.with(Axis::Channels, 2.0);
        assert!(!dv.contains(&extra_axis));
    }

    #[test]
    fn domain_vector_capped_by() {
        let dv = DomainVector::new().with(
            Axis::FrameRate,
            AxisDomain::continuous(Axis::FrameRate, 5.0, 30.0).unwrap(),
        );
        let caps = ParamVector::from_pairs([(Axis::FrameRate, 23.0)]);
        let capped = dv.capped_by(&caps).unwrap();
        assert_eq!(capped.get(Axis::FrameRate).unwrap().max(), 23.0);

        let too_low = ParamVector::from_pairs([(Axis::FrameRate, 2.0)]);
        assert!(dv.capped_by(&too_low).is_none());
    }

    #[test]
    fn domain_vector_clamp() {
        let dv = DomainVector::new()
            .with(
                Axis::FrameRate,
                AxisDomain::discrete(Axis::FrameRate, vec![10.0, 20.0, 30.0]).unwrap(),
            )
            .with(
                Axis::ColorDepth,
                AxisDomain::continuous(Axis::ColorDepth, 1.0, 24.0).unwrap(),
            );
        let p = ParamVector::from_pairs([(Axis::FrameRate, 25.0)]);
        let clamped = dv.clamp(&p);
        assert_eq!(clamped.get(Axis::FrameRate), Some(20.0));
        assert_eq!(
            clamped.get(Axis::ColorDepth),
            Some(24.0),
            "missing axis fills with max"
        );
    }

    #[test]
    fn display_formats() {
        let v = ParamVector::from_pairs([(Axis::FrameRate, 30.0)]);
        assert_eq!(v.to_string(), "{frame_rate=30}");
        let dv = DomainVector::new().with(Axis::FrameRate, AxisDomain::Fixed(30.0));
        assert_eq!(dv.to_string(), "{frame_rate=30}");
    }
}
