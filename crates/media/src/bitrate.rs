//! Bandwidth requirement models.
//!
//! Equa. 2 of the paper constrains the optimizer with
//! `bandwidth_requirement(x1..xn) <= Bandwidth_AvailableBetween(Ti, Tprev)`.
//! A [`BitrateModel`] is that left-hand side: a closed-form mapping from a
//! QoS parameter configuration to sustained bits per second, attached to
//! each media format.

use crate::kind::MediaKind;
use crate::params::{Axis, ParamVector};
use serde::{Deserialize, Serialize};

/// How a parameter configuration translates into bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BitrateModel {
    /// Uncompressed video: `frame_rate × pixel_count × color_depth`.
    RawVideo,
    /// Compressed video: raw video bits divided by a constant
    /// format-specific compression ratio.
    CompressedVideo {
        /// Raw-to-compressed ratio (e.g. ~80 for MPEG-2). Must be > 0.
        compression_ratio: f64,
    },
    /// Uncompressed audio: `sample_rate × channels × sample_depth`.
    RawAudio,
    /// Compressed audio: raw audio bits divided by a constant ratio.
    CompressedAudio {
        /// Raw-to-compressed ratio (e.g. ~11 for MP3). Must be > 0.
        compression_ratio: f64,
    },
    /// A still image viewed for a nominal interval: the one-shot size
    /// `pixel_count × color_depth / compression_ratio` is amortized over
    /// `per_view_seconds` to obtain an equivalent sustained rate.
    Image {
        /// Raw-to-compressed ratio. Must be > 0.
        compression_ratio: f64,
        /// Nominal viewing interval the transfer is amortized over.
        per_view_seconds: f64,
    },
    /// Text: size scales linearly with the fidelity knob (summarization
    /// level), amortized over a nominal 10-second reading interval.
    Text {
        /// Bits contributed by one fidelity point (fidelity is in 0..=100).
        bits_per_fidelity_point: f64,
    },
    /// A constant rate, independent of parameters. Useful for abstract
    /// formats in synthetic scenarios where bandwidth is modelled on a
    /// single axis elsewhere.
    Constant {
        /// The constant rate in bits per second.
        bits_per_second: f64,
    },
    /// A direct linear model on one axis: `rate = slope × value`. The
    /// paper's worked example is single-axis (frame rate), and this model
    /// lets a scenario express "bandwidth caps the deliverable frame rate
    /// at X fps" exactly.
    LinearOnAxis {
        /// The axis whose value drives the rate.
        axis: Axis,
        /// Bits per second contributed per unit of the axis value.
        slope: f64,
    },
}

impl BitrateModel {
    /// A sensible default model for each media kind, used for abstract
    /// formats (`F1`, `F2`, …) when a scenario does not specify one.
    pub fn default_for(kind: MediaKind) -> BitrateModel {
        match kind {
            MediaKind::Video => BitrateModel::CompressedVideo {
                compression_ratio: 80.0,
            },
            MediaKind::Audio => BitrateModel::CompressedAudio {
                compression_ratio: 11.0,
            },
            MediaKind::Image => BitrateModel::Image {
                compression_ratio: 10.0,
                per_view_seconds: 5.0,
            },
            MediaKind::Text => BitrateModel::Text {
                bits_per_fidelity_point: 2000.0,
            },
        }
    }

    /// Sustained bits per second required by `params` under this model.
    ///
    /// Axes missing from `params` contribute their neutral value (1 for
    /// multiplicative factors, 0 for additive ones), so a partially
    /// specified configuration still yields a finite, conservative rate.
    pub fn bits_per_second(&self, params: &ParamVector) -> f64 {
        let get = |axis: Axis, default: f64| params.get(axis).unwrap_or(default);
        match *self {
            BitrateModel::RawVideo => {
                get(Axis::FrameRate, 0.0) * get(Axis::PixelCount, 1.0) * get(Axis::ColorDepth, 1.0)
            }
            BitrateModel::CompressedVideo { compression_ratio } => {
                BitrateModel::RawVideo.bits_per_second(params)
                    / compression_ratio.max(f64::MIN_POSITIVE)
            }
            BitrateModel::RawAudio => {
                get(Axis::SampleRate, 0.0) * get(Axis::Channels, 1.0) * get(Axis::SampleDepth, 1.0)
            }
            BitrateModel::CompressedAudio { compression_ratio } => {
                BitrateModel::RawAudio.bits_per_second(params)
                    / compression_ratio.max(f64::MIN_POSITIVE)
            }
            BitrateModel::Image {
                compression_ratio,
                per_view_seconds,
            } => {
                get(Axis::PixelCount, 0.0) * get(Axis::ColorDepth, 1.0)
                    / compression_ratio.max(f64::MIN_POSITIVE)
                    / per_view_seconds.max(f64::MIN_POSITIVE)
            }
            BitrateModel::Text {
                bits_per_fidelity_point,
            } => get(Axis::Fidelity, 0.0) * bits_per_fidelity_point / 10.0,
            BitrateModel::Constant { bits_per_second } => bits_per_second,
            BitrateModel::LinearOnAxis { axis, slope } => get(axis, 0.0) * slope,
        }
    }

    /// Whether the model is monotone non-decreasing in every axis — true
    /// for all variants by construction (ratios and slopes are positive).
    /// Exposed for property tests.
    pub fn is_monotone(&self) -> bool {
        match *self {
            BitrateModel::CompressedVideo { compression_ratio }
            | BitrateModel::CompressedAudio { compression_ratio } => compression_ratio > 0.0,
            BitrateModel::Image {
                compression_ratio,
                per_view_seconds,
            } => compression_ratio > 0.0 && per_view_seconds > 0.0,
            BitrateModel::Text {
                bits_per_fidelity_point,
            } => bits_per_fidelity_point >= 0.0,
            BitrateModel::LinearOnAxis { slope, .. } => slope >= 0.0,
            BitrateModel::RawVideo | BitrateModel::RawAudio | BitrateModel::Constant { .. } => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamVector;

    fn video_params(fps: f64, pixels: f64, depth: f64) -> ParamVector {
        ParamVector::from_pairs([
            (Axis::FrameRate, fps),
            (Axis::PixelCount, pixels),
            (Axis::ColorDepth, depth),
        ])
    }

    #[test]
    fn raw_video_is_product_of_axes() {
        let p = video_params(30.0, 320.0 * 240.0, 24.0);
        assert_eq!(
            BitrateModel::RawVideo.bits_per_second(&p),
            30.0 * 320.0 * 240.0 * 24.0
        );
    }

    #[test]
    fn compression_divides() {
        let p = video_params(30.0, 1000.0, 8.0);
        let raw = BitrateModel::RawVideo.bits_per_second(&p);
        let c = BitrateModel::CompressedVideo {
            compression_ratio: 50.0,
        }
        .bits_per_second(&p);
        assert!((c - raw / 50.0).abs() < 1e-9);
    }

    #[test]
    fn audio_model() {
        let p = ParamVector::from_pairs([
            (Axis::SampleRate, 44100.0),
            (Axis::Channels, 2.0),
            (Axis::SampleDepth, 16.0),
        ]);
        assert_eq!(
            BitrateModel::RawAudio.bits_per_second(&p),
            44100.0 * 2.0 * 16.0
        );
    }

    #[test]
    fn image_amortizes_over_view_time() {
        let p = ParamVector::from_pairs([(Axis::PixelCount, 1000.0), (Axis::ColorDepth, 8.0)]);
        let m = BitrateModel::Image {
            compression_ratio: 8.0,
            per_view_seconds: 5.0,
        };
        assert!((m.bits_per_second(&p) - 1000.0 * 8.0 / 8.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn linear_on_axis_matches_slope() {
        let p = ParamVector::from_pairs([(Axis::FrameRate, 23.0)]);
        let m = BitrateModel::LinearOnAxis {
            axis: Axis::FrameRate,
            slope: 1000.0,
        };
        assert_eq!(m.bits_per_second(&p), 23_000.0);
    }

    #[test]
    fn missing_driving_axis_gives_zero_rate() {
        let empty = ParamVector::new();
        assert_eq!(BitrateModel::RawVideo.bits_per_second(&empty), 0.0);
        assert_eq!(BitrateModel::RawAudio.bits_per_second(&empty), 0.0);
        assert_eq!(
            BitrateModel::LinearOnAxis {
                axis: Axis::Fidelity,
                slope: 10.0
            }
            .bits_per_second(&empty),
            0.0
        );
    }

    #[test]
    fn constant_ignores_params() {
        let m = BitrateModel::Constant {
            bits_per_second: 64_000.0,
        };
        assert_eq!(m.bits_per_second(&ParamVector::new()), 64_000.0);
        assert_eq!(m.bits_per_second(&video_params(30.0, 1e6, 24.0)), 64_000.0);
    }

    #[test]
    fn defaults_are_monotone() {
        for kind in MediaKind::ALL {
            assert!(BitrateModel::default_for(kind).is_monotone());
        }
    }
}
