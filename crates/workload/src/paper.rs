//! The paper's own evaluation scenarios.
//!
//! ## Figure 6 / Table 1
//!
//! The paper's Figure 6 (an image we do not have) is fully determined, as
//! far as observable behaviour goes, by Table 1: twenty trans-coding
//! services `T1..T20`, a single frame-rate QoS axis with the linear
//! satisfaction function of Figure 1 (`M = 0`, `I = 30`), and a selection
//! run that settles, round by round,
//! `T10, T20, T5, T4, T3, T2, T1, T11, T13, T12, T14, T8, T7, T6,
//! receiver`, delivering 20 fps via `sender → T7 → receiver` with
//! satisfaction 0.66.
//!
//! [`figure6_scenario`] reconstructs the minimal graph consistent with
//! every row:
//!
//! * the sender offers ten variants `F1..F10`, one per first-stage
//!   service `T1..T10`;
//! * output frame-rate caps: `T10, T20 = 30`; `T4, T5 = 27`;
//!   `T1, T2, T3 = 23` (and their children `T11..T14` pass 23 through);
//!   `T6, T7, T8 = 20`; `T9 = 15`; `T15 = 12`; `T19 = 10`;
//! * second-stage wiring: `T1→T11`, `T2→{T12, T13}`, `T3→T14`,
//!   `T5→T15`, `T10→{T19, T20}`;
//! * the receiver decodes `T7`'s output and `T10`'s output, but the link
//!   into the receiver from `T10`'s host is capped at 18 kbit/s (18 fps →
//!   satisfaction 0.60), which is why the early, maximally satisfying
//!   `T10/T20` exploration dead-ends and the final chain goes through
//!   `T7`;
//! * every link charges a flat price of 1 per session, so accumulated
//!   cost equals hop count — the cost-then-freshness tie-breaking of
//!   [`TieBreak::PaperOrder`](qosc_core::TieBreak) then reproduces the
//!   exact settlement order above;
//! * `T16, T17, T18` exist (Figure 6 numbers up to T20) but consume a
//!   format nobody produces, so they never enter the candidate set —
//!   matching their absence from every CS column of Table 1.
//!
//! ## Figure 3
//!
//! [`figure3_scenario`] builds the Section-4.2 construction example: one
//! sender, seven intermediaries, one receiver, with `sender → T1`
//! labelled `F5` exactly as the text describes.

use crate::Scenario;
use qosc_core::select::trace::SelectionTrace;
use qosc_media::{
    Axis, AxisDomain, BitrateModel, DomainVector, FormatSpec, MediaKind, VariantSpec,
};
use qosc_netsim::{Link, Network, Node, NodeId, Topology};
use qosc_profiles::{
    ContentProfile, ContextProfile, ConversionSpec, DeviceProfile, HardwareCaps, NetworkProfile,
    ServiceSpec, UserProfile,
};
use qosc_services::{ServiceRegistry, TranscoderDescriptor};

/// Frame-rate bitrate: 1000 bit/s per fps, used for every format in the
/// paper scenarios (the example is single-axis).
fn linear_fps() -> BitrateModel {
    BitrateModel::LinearOnAxis {
        axis: Axis::FrameRate,
        slope: 1000.0,
    }
}

fn fps_domain(cap: f64) -> DomainVector {
    DomainVector::new().with(
        Axis::FrameRate,
        AxisDomain::Continuous { min: 0.0, max: cap },
    )
}

/// Generous hardware (the example constrains nothing but frame rate).
fn open_hardware() -> HardwareCaps {
    HardwareCaps {
        screen_width: 10_000,
        screen_height: 10_000,
        color_depth: 32,
        audio_channels: 8,
        max_sample_rate: 192_000,
        cpu_mips: 1e9,
        memory_bytes: 1e12,
    }
}

/// Build the Figure-6 scenario. With `include_t7 = false` the best chain
/// degrades to `sender → T10 → receiver` at 18 fps (satisfaction 0.60) —
/// the comparison Figure 6 itself draws ("the selected path with and
/// without trans-coding service T7").
///
/// ```
/// use qosc_core::SelectOptions;
/// use qosc_workload::paper;
///
/// let scenario = paper::figure6_scenario(true);
/// let composition = scenario.compose(&SelectOptions::default()).unwrap();
/// assert!(paper::verify_table1(&composition.selection.trace).is_none());
/// let chain = composition.selection.chain.unwrap();
/// assert_eq!(chain.names(), vec!["sender", "T7", "receiver"]);
/// ```
pub fn figure6_scenario(include_t7: bool) -> Scenario {
    let mut formats = qosc_media::FormatRegistry::new();
    let mut register =
        |name: &str| formats.register(FormatSpec::new(name, MediaKind::Video, linear_fps()));
    // Sender variant formats F1..F10 (inputs of T1..T10).
    let f: Vec<_> = (1..=10).map(|k| register(&format!("F{k}"))).collect();
    // First-stage outputs G1..G10.
    let g: Vec<_> = (1..=10).map(|k| register(&format!("G{k}"))).collect();
    // Second-stage outputs H11..H20 (only some used).
    let h: Vec<_> = (11..=20).map(|k| register(&format!("H{k}"))).collect();
    // Unreachable inputs for T16..T18.
    let x: Vec<_> = (16..=18).map(|k| register(&format!("X{k}"))).collect();

    // Topology: sender, one node per service, receiver. Every link has a
    // flat price of 1 (cost = hop count) and ample capacity, except the
    // T10-host → receiver link, capped at 18 kbit/s.
    let mut topo = Topology::new();
    let s_node = topo.add_node(Node::unconstrained("host-sender"));
    let t_nodes: Vec<NodeId> = (1..=20)
        .map(|k| topo.add_node(Node::unconstrained(format!("host-T{k}"))))
        .collect();
    let r_node = topo.add_node(Node::unconstrained("host-receiver"));
    let mut connect = |a: NodeId, b: NodeId, capacity: f64| {
        topo.connect(Link {
            a,
            b,
            capacity_bps: capacity,
            delay_us: 1_000,
            loss: 0.0,
            price_per_mbit: 0.0,
            price_flat: 1.0,
        })
        .expect("valid scenario link");
    };
    const AMPLE: f64 = 1e9;
    for k in 1..=10usize {
        connect(s_node, t_nodes[k - 1], AMPLE);
    }
    connect(t_nodes[0], t_nodes[10], AMPLE); // T1 — T11
    connect(t_nodes[1], t_nodes[11], AMPLE); // T2 — T12
    connect(t_nodes[1], t_nodes[12], AMPLE); // T2 — T13
    connect(t_nodes[2], t_nodes[13], AMPLE); // T3 — T14
    connect(t_nodes[4], t_nodes[14], AMPLE); // T5 — T15
    connect(t_nodes[9], t_nodes[18], AMPLE); // T10 — T19
    connect(t_nodes[9], t_nodes[19], AMPLE); // T10 — T20
    connect(t_nodes[9], r_node, 18_000.0); // T10 — receiver: the 18 fps cap
    connect(t_nodes[6], r_node, AMPLE); // T7 — receiver
    let network = Network::new(topo);

    // Services T1..T20, in numeric registration order (the listing order
    // Table 1's tie-breaking reflects).
    let mut services = ServiceRegistry::new();
    let caps: [f64; 20] = [
        23.0, 23.0, 23.0, 27.0, 27.0, // T1..T5
        20.0, 20.0, 20.0, 15.0, 30.0, // T6..T10
        30.0, 30.0, 30.0, 30.0, 12.0, // T11..T15
        30.0, 30.0, 30.0, 10.0, 30.0, // T16..T20
    ];
    // (input, output) format per service, by index k-1.
    let io = |k: usize| -> (String, String) {
        match k {
            1..=10 => (format!("F{k}"), format!("G{k}")),
            11 => ("G1".to_string(), "H11".to_string()),
            12 | 13 => ("G2".to_string(), format!("H{k}")),
            14 => ("G3".to_string(), "H14".to_string()),
            15 => ("G5".to_string(), "H15".to_string()),
            16..=18 => (format!("X{k}"), format!("H{k}")),
            19 | 20 => ("G10".to_string(), format!("H{k}")),
            _ => unreachable!("services are numbered 1..=20"),
        }
    };
    for k in 1..=20usize {
        if k == 7 && !include_t7 {
            continue;
        }
        let (input, output) = io(k);
        let spec = ServiceSpec::new(
            format!("T{k}"),
            vec![ConversionSpec::new(input, output, fps_domain(caps[k - 1]))],
        );
        services.register_static(
            TranscoderDescriptor::resolve(&spec, &formats, t_nodes[k - 1])
                .expect("scenario formats are interned"),
        );
    }

    // Profiles.
    let content = ContentProfile::new(
        "figure6-content",
        (1..=10)
            .map(|k| VariantSpec {
                format: format!("F{k}"),
                offered: fps_domain(30.0),
            })
            .collect(),
    )
    .with_author("El-Khatib et al. (reconstruction)")
    .with_duration(60.0);
    let device = DeviceProfile::new(
        "figure6-receiver",
        vec!["G7".to_string(), "G10".to_string()],
        open_hardware(),
    );
    let profiles = qosc_profiles::ProfileSet {
        user: UserProfile::paper_table1(),
        content,
        device,
        context: ContextProfile::default(),
        network: NetworkProfile::lan(),
    };

    let _ = (&f, &g, &h, &x); // format ids retrievable by name when needed

    Scenario {
        formats,
        services,
        network,
        profiles,
        sender_host: s_node,
        receiver_host: r_node,
    }
}

/// One expected row of Table 1 (the printed columns).
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectedRow {
    /// Round number.
    pub round: usize,
    /// Selected service.
    pub selected: &'static str,
    /// Selected path, comma-joined names.
    pub path: &'static [&'static str],
    /// Delivered frame rate.
    pub frame_rate: f64,
    /// User satisfaction as printed (truncated to two decimals).
    pub satisfaction: f64,
}

/// The fifteen rows of the paper's Table 1.
pub fn table1_expected() -> Vec<ExpectedRow> {
    fn row(
        round: usize,
        selected: &'static str,
        path: &'static [&'static str],
        frame_rate: f64,
        satisfaction: f64,
    ) -> ExpectedRow {
        ExpectedRow {
            round,
            selected,
            path,
            frame_rate,
            satisfaction,
        }
    }
    vec![
        row(1, "T10", &["sender", "T10"], 30.0, 1.00),
        row(2, "T20", &["sender", "T10", "T20"], 30.0, 1.00),
        row(3, "T5", &["sender", "T5"], 27.0, 0.90),
        row(4, "T4", &["sender", "T4"], 27.0, 0.90),
        row(5, "T3", &["sender", "T3"], 23.0, 0.76),
        row(6, "T2", &["sender", "T2"], 23.0, 0.76),
        row(7, "T1", &["sender", "T1"], 23.0, 0.76),
        row(8, "T11", &["sender", "T1", "T11"], 23.0, 0.76),
        row(9, "T13", &["sender", "T2", "T13"], 23.0, 0.76),
        row(10, "T12", &["sender", "T2", "T12"], 23.0, 0.76),
        row(11, "T14", &["sender", "T3", "T14"], 23.0, 0.76),
        row(12, "T8", &["sender", "T8"], 20.0, 0.66),
        row(13, "T7", &["sender", "T7"], 20.0, 0.66),
        row(14, "T6", &["sender", "T6"], 20.0, 0.66),
        row(15, "receiver", &["sender", "T7", "receiver"], 20.0, 0.66),
    ]
}

/// The candidate-set column of Table 1, per round (service names in
/// discovery order, receiver last) — checked verbatim by the
/// reproduction test.
///
/// One deliberate correction: the paper's rows 12–14 omit the
/// just-selected service from the printed CS, while rows 1–11 and 15
/// include it (e.g. row 1 shows T10 in CS and then selects it). That is
/// a typesetting inconsistency in the original table; we use the
/// consistent rows-1–11 convention ("CS at the start of the round")
/// throughout, so rows 12–14 below additionally list the service being
/// selected that round.
pub fn table1_expected_candidates() -> Vec<Vec<&'static str>> {
    vec![
        vec!["T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9", "T10"],
        vec![
            "T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9", "T19", "T20", "receiver",
        ],
        vec![
            "T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9", "T19", "receiver",
        ],
        vec![
            "T1", "T2", "T3", "T4", "T6", "T7", "T8", "T9", "T19", "T15", "receiver",
        ],
        vec![
            "T1", "T2", "T3", "T6", "T7", "T8", "T9", "T19", "T15", "receiver",
        ],
        vec![
            "T1", "T2", "T6", "T7", "T8", "T9", "T19", "T15", "T14", "receiver",
        ],
        vec![
            "T1", "T6", "T7", "T8", "T9", "T19", "T15", "T14", "T12", "T13", "receiver",
        ],
        vec![
            "T6", "T7", "T8", "T9", "T19", "T15", "T14", "T12", "T13", "T11", "receiver",
        ],
        vec![
            "T6", "T7", "T8", "T9", "T19", "T15", "T14", "T12", "T13", "receiver",
        ],
        vec![
            "T6", "T7", "T8", "T9", "T19", "T15", "T14", "T12", "receiver",
        ],
        vec!["T6", "T7", "T8", "T9", "T19", "T15", "T14", "receiver"],
        vec!["T6", "T7", "T8", "T9", "T19", "T15", "receiver"],
        vec!["T6", "T7", "T9", "T19", "T15", "receiver"],
        vec!["T6", "T9", "T19", "T15", "receiver"],
        vec!["T9", "T19", "T15", "receiver"],
    ]
}

/// Compare a recorded trace against Table 1, returning the first
/// mismatch as a human-readable string (or `None` when the trace matches
/// row-for-row).
pub fn verify_table1(trace: &SelectionTrace) -> Option<String> {
    let expected = table1_expected();
    let expected_cs = table1_expected_candidates();
    if trace.rows.len() != expected.len() {
        return Some(format!(
            "expected {} rounds, got {}",
            expected.len(),
            trace.rows.len()
        ));
    }
    for ((row, want), want_cs) in trace.rows.iter().zip(&expected).zip(&expected_cs) {
        if row.round != want.round {
            return Some(format!("round numbering diverged at {}", want.round));
        }
        if row.selected != want.selected {
            return Some(format!(
                "round {}: selected {} (expected {})",
                want.round, row.selected, want.selected
            ));
        }
        let path: Vec<&str> = row.selected_path.iter().map(|s| s.as_str()).collect();
        if path != *want.path {
            return Some(format!(
                "round {}: path {:?} (expected {:?})",
                want.round, path, want.path
            ));
        }
        let fps = row.delivered_frame_rate().unwrap_or(-1.0);
        if (fps - want.frame_rate).abs() > 1e-6 {
            return Some(format!(
                "round {}: frame rate {fps} (expected {})",
                want.round, want.frame_rate
            ));
        }
        let sat = SelectionTrace::truncate2(row.satisfaction);
        if (sat - want.satisfaction).abs() > 1e-9 {
            return Some(format!(
                "round {}: satisfaction {sat} (expected {})",
                want.round, want.satisfaction
            ));
        }
        let cs: Vec<&str> = row.candidates.iter().map(|s| s.as_str()).collect();
        if cs != *want_cs {
            return Some(format!(
                "round {}: CS {:?} (expected {:?})",
                want.round, cs, want_cs
            ));
        }
    }
    None
}

/// The Section-4.2 / Figure-3 construction example: one sender offering
/// `F3, F4, F5`, seven intermediaries, one receiver decoding
/// `F14, F15, F16`.
pub fn figure3_scenario() -> Scenario {
    let mut formats = qosc_media::FormatRegistry::new();
    for k in [3, 4, 5, 6, 8, 9, 10, 11, 12, 13, 14, 15, 16] {
        formats.register(FormatSpec::new(
            format!("F{k}"),
            MediaKind::Video,
            linear_fps(),
        ));
    }

    let mut topo = Topology::new();
    let s_node = topo.add_node(Node::unconstrained("host-sender"));
    let proxy = topo.add_node(Node::unconstrained("host-proxies"));
    let r_node = topo.add_node(Node::unconstrained("host-receiver"));
    topo.connect_simple(s_node, proxy, 1e9).unwrap();
    topo.connect_simple(proxy, r_node, 1e9).unwrap();
    let network = Network::new(topo);

    let service = |name: &str, pairs: &[(&str, &str)]| {
        ServiceSpec::new(
            name,
            pairs
                .iter()
                .map(|&(i, o)| ConversionSpec::new(i, o, fps_domain(30.0)))
                .collect(),
        )
    };
    let specs = [
        service(
            "T1",
            &[
                ("F5", "F10"),
                ("F5", "F11"),
                ("F5", "F12"),
                ("F5", "F13"),
                ("F6", "F10"),
                ("F6", "F11"),
                ("F6", "F12"),
                ("F6", "F13"),
            ],
        ),
        service("T2", &[("F3", "F6")]),
        service("T3", &[("F4", "F8"), ("F4", "F9")]),
        service("T4", &[("F4", "F9"), ("F4", "F10")]),
        service("T5", &[("F8", "F14")]),
        service("T6", &[("F9", "F15"), ("F10", "F15")]),
        service("T7", &[("F11", "F16"), ("F12", "F16"), ("F13", "F16")]),
    ];
    let mut services = ServiceRegistry::new();
    for spec in specs {
        services.register_static(
            TranscoderDescriptor::resolve(&spec, &formats, proxy)
                .expect("scenario formats are interned"),
        );
    }

    let content = ContentProfile::new(
        "figure3-content",
        [3, 4, 5]
            .iter()
            .map(|k| VariantSpec {
                format: format!("F{k}"),
                offered: fps_domain(30.0),
            })
            .collect(),
    );
    let device = DeviceProfile::new(
        "figure3-receiver",
        vec!["F14".to_string(), "F15".to_string(), "F16".to_string()],
        open_hardware(),
    );
    let profiles = qosc_profiles::ProfileSet {
        user: UserProfile::paper_table1(),
        content,
        device,
        context: ContextProfile::default(),
        network: NetworkProfile::lan(),
    };

    Scenario {
        formats,
        services,
        network,
        profiles,
        sender_host: s_node,
        receiver_host: r_node,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_core::SelectOptions;

    #[test]
    fn figure6_reproduces_table1_exactly() {
        let scenario = figure6_scenario(true);
        let composition = scenario.compose(&SelectOptions::default()).unwrap();
        let mismatch = verify_table1(&composition.selection.trace);
        assert!(
            mismatch.is_none(),
            "Table 1 mismatch: {}\n\ntrace:\n{}",
            mismatch.unwrap(),
            composition.selection.trace.to_table1_string()
        );
        let chain = composition.selection.chain.unwrap();
        assert_eq!(chain.names(), vec!["sender", "T7", "receiver"]);
        assert_eq!(SelectionTrace::truncate2(chain.satisfaction), 0.66);
    }

    #[test]
    fn figure6_without_t7_degrades_to_t10_path() {
        let scenario = figure6_scenario(false);
        let composition = scenario.compose(&SelectOptions::default()).unwrap();
        let chain = composition.selection.chain.expect("T10 fallback exists");
        assert_eq!(chain.names(), vec!["sender", "T10", "receiver"]);
        // 18 kbit/s → 18 fps → satisfaction 0.60 (up to bisection slack).
        assert!((chain.satisfaction - 0.6).abs() < 1e-4);
    }

    #[test]
    fn figure3_has_the_paper_structure() {
        let scenario = figure3_scenario();
        let composition = scenario.compose(&SelectOptions::default()).unwrap();
        let graph = &composition.graph;
        // 1 sender + 7 intermediaries + 1 receiver.
        assert_eq!(graph.vertex_count(), 9);
        // sender → T1 via F5, as the text says.
        let sender = graph.sender().unwrap();
        let t1 = graph.vertex_by_name("T1").unwrap();
        let f5 = scenario.formats.lookup("F5").unwrap();
        assert!(graph.out_edges(sender).iter().any(|&e| {
            let edge = graph.edge(e).unwrap();
            edge.to == t1 && edge.format == f5
        }));
        // A chain exists (e.g. sender → T3 → T5 → receiver).
        assert!(composition.plan.is_some());
    }
}
