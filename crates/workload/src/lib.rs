//! # qosc-workload
//!
//! Ready-made scenarios for the `qosc` reproduction of *"A QoS-based
//! Service Composition for Content Adaptation"* (ICDE 2007):
//!
//! * [`Scenario`] — a self-contained bundle of everything one
//!   composition request needs (formats, services, network, profiles,
//!   endpoints),
//! * [`paper`] — the paper's own evaluation artifacts: the Figure-3
//!   construction example and the Figure-6 graph whose selection run is
//!   Table 1 (reverse-engineered from the table; see the module docs),
//! * [`generator`] — seeded random scenario generators for the
//!   scalability, baseline-comparison and optimality experiments,
//! * [`profiles_gen`] — seeded heterogeneous user/device populations
//!   (the client diversity the paper's introduction motivates),
//! * [`scale`] — clustered sharded-registry scenarios for the
//!   registry-scale experiment (10^3..10^6 services, X20),
//! * [`arrivals`] — seeded open-loop Poisson-burst offered-load
//!   schedules for the admission/overload experiments.

pub mod arrivals;
pub mod generator;
pub mod paper;
pub mod profiles_gen;
pub mod scale;

use qosc_core::{Composer, Composition, SelectOptions};
use qosc_media::FormatRegistry;
use qosc_netsim::{Network, NodeId};
use qosc_profiles::ProfileSet;
use qosc_services::ServiceRegistry;

/// A self-contained composition scenario.
///
/// ```
/// use qosc_core::SelectOptions;
/// use qosc_workload::generator::{random_scenario, GeneratorConfig};
///
/// let scenario = random_scenario(&GeneratorConfig::default(), 42);
/// let composition = scenario.compose(&SelectOptions::default()).unwrap();
/// // Seeded generation is deterministic: same seed, same outcome.
/// let again = random_scenario(&GeneratorConfig::default(), 42)
///     .compose(&SelectOptions::default())
///     .unwrap();
/// assert_eq!(
///     composition.selection.chain.map(|c| c.satisfaction),
///     again.selection.chain.map(|c| c.satisfaction),
/// );
/// ```
pub struct Scenario {
    /// The scenario's format registry.
    pub formats: FormatRegistry,
    /// The live service registry.
    pub services: ServiceRegistry,
    /// The network.
    pub network: Network,
    /// The request's profile set.
    pub profiles: ProfileSet,
    /// Node the sender runs on.
    pub sender_host: NodeId,
    /// Node the receiver runs on.
    pub receiver_host: NodeId,
}

impl Scenario {
    /// A composer borrowing this scenario's state.
    pub fn composer(&self) -> Composer<'_> {
        Composer {
            formats: &self.formats,
            services: &self.services,
            network: &self.network,
        }
    }

    /// Compose the scenario's request.
    pub fn compose(&self, options: &SelectOptions) -> qosc_core::Result<Composition> {
        self.composer().compose(
            &self.profiles,
            self.sender_host,
            self.receiver_host,
            options,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_composes() {
        let scenario = paper::figure6_scenario(true);
        let composition = scenario.compose(&SelectOptions::default()).unwrap();
        assert!(composition.plan.is_some());
    }
}
