//! Open-loop offered-load schedules for the admission front-end.
//!
//! The overload experiments need *offered load* that does not care how
//! fast the engine drains it — an open-loop arrival process, unlike the
//! closed-loop batches elsewhere in the repo. [`poisson_burst_arrivals`]
//! generates one: a seeded Bernoulli-thinned Poisson approximation
//! (arrival probability per small virtual tick) modulated by periodic
//! burst windows in which the rate multiplies, with a seeded priority
//! mix, per-request virtual service costs and per-class deadline
//! budgets.
//!
//! Everything is integer arithmetic on a seeded [`SmallRng`] — no
//! floating point, no transcendentals — so a schedule is byte-identical
//! across runs *and machines*, which is what lets the overload
//! scorecard (`BENCH_overload.json`) be `cmp`-ed in CI.

use qosc_core::{ArrivalMeta, PriorityClass};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Shape of an offered-load schedule.
#[derive(Debug, Clone, Copy)]
pub struct ArrivalPattern {
    /// Schedule length, virtual microseconds.
    pub horizon_us: u64,
    /// Bernoulli tick: smaller ticks approximate a Poisson process more
    /// closely (at `p = rate · tick` per tick).
    pub tick_us: u64,
    /// Base arrival rate, requests per virtual second.
    pub rate_per_sec: u64,
    /// Burst window period (0 disables bursts).
    pub burst_period_us: u64,
    /// Burst window length within each period.
    pub burst_len_us: u64,
    /// Rate multiplier inside a burst window, percent (100 = no burst).
    pub burst_rate_pct: u64,
    /// Share of arrivals in [`PriorityClass::Interactive`], percent.
    pub interactive_pct: u32,
    /// Share in [`PriorityClass::Background`], percent (the remainder
    /// is `Standard`).
    pub background_pct: u32,
    /// Virtual service-cost range per request, microseconds.
    pub cost_range_us: (u64, u64),
    /// Deadline budget per class (`None` = best-effort).
    pub deadline_interactive_us: Option<u64>,
    /// Deadline budget for `Standard`.
    pub deadline_standard_us: Option<u64>,
    /// Deadline budget for `Background`.
    pub deadline_background_us: Option<u64>,
}

impl Default for ArrivalPattern {
    fn default() -> ArrivalPattern {
        ArrivalPattern {
            horizon_us: 1_000_000,
            tick_us: 100,
            rate_per_sec: 200,
            burst_period_us: 200_000,
            burst_len_us: 20_000,
            burst_rate_pct: 300,
            interactive_pct: 20,
            background_pct: 30,
            cost_range_us: (12_000, 28_000),
            deadline_interactive_us: Some(150_000),
            deadline_standard_us: Some(400_000),
            deadline_background_us: None,
        }
    }
}

impl ArrivalPattern {
    /// Mean offered rate including burst windows, requests per second
    /// (integer, rounded down) — for dimensioning against capacity.
    pub fn mean_rate_per_sec(&self) -> u64 {
        if self.burst_period_us == 0 || self.burst_len_us == 0 {
            return self.rate_per_sec;
        }
        let len = self.burst_len_us.min(self.burst_period_us);
        let calm = self.burst_period_us - len;
        self.rate_per_sec * (calm * 100 + len * self.burst_rate_pct) / (self.burst_period_us * 100)
    }

    fn deadline_for(&self, priority: PriorityClass) -> Option<u64> {
        match priority {
            PriorityClass::Interactive => self.deadline_interactive_us,
            PriorityClass::Standard => self.deadline_standard_us,
            PriorityClass::Background => self.deadline_background_us,
        }
    }
}

/// Generate a seeded open-loop schedule: one [`ArrivalMeta`] per
/// arrival, sorted by arrival time. Same `(pattern, seed)` → identical
/// schedule, on any machine.
pub fn poisson_burst_arrivals(pattern: &ArrivalPattern, seed: u64) -> Vec<ArrivalMeta> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let tick = pattern.tick_us.max(1);
    let mut out = Vec::new();
    let mut t = 0u64;
    while t < pattern.horizon_us {
        let in_burst = pattern.burst_period_us > 0
            && pattern.burst_len_us > 0
            && (t % pattern.burst_period_us) < pattern.burst_len_us;
        let rate_pct = if in_burst {
            pattern.burst_rate_pct
        } else {
            100
        };
        // Arrival probability this tick in parts-per-million:
        // rate/sec · tick_us · pct/100, i.e. rate·tick/1e6 scaled to ppm.
        let p_ppm = pattern
            .rate_per_sec
            .saturating_mul(tick)
            .saturating_mul(rate_pct)
            / 100;
        // p_ppm ≥ 1e6 means ≥ 1 expected arrival per tick: emit the
        // whole part unconditionally, Bernoulli the remainder.
        let certain = p_ppm / 1_000_000;
        let remainder = (p_ppm % 1_000_000) as u32;
        let n = certain + u64::from(remainder > 0 && rng.random_range(0..1_000_000u32) < remainder);
        for _ in 0..n {
            let offset = rng.random_range(0..tick);
            let class_draw = rng.random_range(0..100u32);
            let priority = if class_draw < pattern.interactive_pct {
                PriorityClass::Interactive
            } else if class_draw < pattern.interactive_pct + pattern.background_pct {
                PriorityClass::Background
            } else {
                PriorityClass::Standard
            };
            let (lo, hi) = pattern.cost_range_us;
            let cost = if hi > lo {
                rng.random_range(lo..=hi)
            } else {
                lo.max(1)
            };
            out.push(ArrivalMeta {
                arrival_us: t + offset,
                priority,
                service_cost_us: cost,
                deadline_budget_us: pattern.deadline_for(priority),
            });
        }
        t += tick;
    }
    out.sort_by_key(|a| a.arrival_us);
    out
}

/// Shape of an offered *session* load: an arrival schedule plus a
/// holding-time distribution. Extends [`ArrivalPattern`] for the
/// steady-state session engine without touching the request-shaped
/// schedules the overload scorecard depends on.
#[derive(Debug, Clone, Copy)]
pub struct SessionPattern {
    /// When sessions open (and with what class/cost/deadline).
    pub arrivals: ArrivalPattern,
    /// Uniform holding-time range, virtual microseconds (inclusive).
    pub hold_range_us: (u64, u64),
    /// Uniform per-session bitrate-demand range, bits per second
    /// (inclusive). `(0, 0)` disables demand generation — sessions then
    /// carry `demand_bps = 0` and the delivery model falls back to the
    /// plan's own edge rates.
    pub demand_range_bps: (u64, u64),
}

impl Default for SessionPattern {
    fn default() -> SessionPattern {
        SessionPattern {
            arrivals: ArrivalPattern::default(),
            hold_range_us: (500_000, 5_000_000),
            demand_range_bps: (0, 0),
        }
    }
}

impl SessionPattern {
    /// Mean concurrent sessions at steady state (Little's law:
    /// arrival rate × mean hold), for dimensioning a sweep.
    pub fn mean_concurrency(&self) -> u64 {
        let mean_hold_us = (self.hold_range_us.0 + self.hold_range_us.1) / 2;
        self.arrivals.mean_rate_per_sec() * mean_hold_us / 1_000_000
    }
}

/// One offered session: arrival metadata plus its holding time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionArrival {
    /// Arrival-time/class/cost/deadline metadata (what the admission
    /// queue sees at open).
    pub meta: ArrivalMeta,
    /// Virtual holding time once the session starts streaming.
    pub hold_us: u64,
    /// Bitrate the session demands at full quality, bits per second
    /// (0 = derive from the plan alone).
    pub demand_bps: u64,
}

/// Generate a seeded open-loop *session* schedule: the arrival process
/// of [`poisson_burst_arrivals`] (byte-identical for the same
/// `(pattern.arrivals, seed)` — holds come from an independent stream,
/// so adding them cannot perturb committed arrival schedules), with a
/// uniform holding time per session.
pub fn session_arrivals(pattern: &SessionPattern, seed: u64) -> Vec<SessionArrival> {
    let metas = poisson_burst_arrivals(&pattern.arrivals, seed);
    // Independent streams for holds and demands: deriving each from the
    // same seed with a distinct fixed tweak keeps one knob while
    // decoupling the draws — adding the demand stream cannot perturb
    // committed arrival or hold schedules.
    let mut holds = SmallRng::seed_from_u64(seed ^ 0xA076_1D64_78BD_642F);
    let mut demands = SmallRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let (lo, hi) = pattern.hold_range_us;
    let (dlo, dhi) = pattern.demand_range_bps;
    metas
        .into_iter()
        .map(|meta| SessionArrival {
            meta,
            hold_us: if hi > lo {
                holds.random_range(lo..=hi)
            } else {
                lo
            },
            demand_bps: if dhi > dlo {
                demands.random_range(dlo..=dhi)
            } else {
                dlo
            },
        })
        .collect()
}

/// Per-class bitrate-demand ranges, bits per second (inclusive) — what
/// the bandwidth-broker sweeps use so interactive, standard and
/// background sessions stress shared links differently. A class whose
/// range is `(0, 0)` generates `demand_bps = 0` (plan-derived demand),
/// exactly like [`SessionPattern::demand_range_bps`].
#[derive(Debug, Clone, Copy)]
pub struct DemandMix {
    /// Demand range for [`PriorityClass::Interactive`] sessions.
    pub interactive_bps: (u64, u64),
    /// Demand range for [`PriorityClass::Standard`] sessions.
    pub standard_bps: (u64, u64),
    /// Demand range for [`PriorityClass::Background`] sessions.
    pub background_bps: (u64, u64),
}

impl DemandMix {
    /// The demand range a class draws from.
    pub fn range_for(&self, priority: PriorityClass) -> (u64, u64) {
        match priority {
            PriorityClass::Interactive => self.interactive_bps,
            PriorityClass::Standard => self.standard_bps,
            PriorityClass::Background => self.background_bps,
        }
    }
}

/// [`session_arrivals`] with a per-class demand mix: the arrival and
/// holding-time streams are byte-identical to `session_arrivals(pattern,
/// seed)` (demands come from the same independent third stream), only
/// each session's `demand_bps` is drawn from its class's range instead
/// of the pattern-wide one.
pub fn session_arrivals_with_mix(
    pattern: &SessionPattern,
    mix: &DemandMix,
    seed: u64,
) -> Vec<SessionArrival> {
    let metas = poisson_burst_arrivals(&pattern.arrivals, seed);
    let mut holds = SmallRng::seed_from_u64(seed ^ 0xA076_1D64_78BD_642F);
    let mut demands = SmallRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let (lo, hi) = pattern.hold_range_us;
    metas
        .into_iter()
        .map(|meta| {
            let (dlo, dhi) = mix.range_for(meta.priority);
            SessionArrival {
                meta,
                hold_us: if hi > lo {
                    holds.random_range(lo..=hi)
                } else {
                    lo
                },
                demand_bps: if dhi > dlo {
                    demands.random_range(dlo..=dhi)
                } else {
                    dlo
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic() {
        let pattern = ArrivalPattern::default();
        let a = poisson_burst_arrivals(&pattern, 42);
        let b = poisson_burst_arrivals(&pattern, 42);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = poisson_burst_arrivals(&pattern, 43);
        assert_ne!(a, c, "a different seed changes the schedule");
    }

    #[test]
    fn arrivals_are_sorted_and_within_horizon() {
        let pattern = ArrivalPattern::default();
        let arrivals = poisson_burst_arrivals(&pattern, 7);
        for pair in arrivals.windows(2) {
            assert!(pair[0].arrival_us <= pair[1].arrival_us);
        }
        assert!(arrivals
            .iter()
            .all(|a| a.arrival_us < pattern.horizon_us + pattern.tick_us));
        let (lo, hi) = pattern.cost_range_us;
        assert!(arrivals
            .iter()
            .all(|a| a.service_cost_us >= lo && a.service_cost_us <= hi));
    }

    #[test]
    fn offered_count_tracks_the_mean_rate() {
        let pattern = ArrivalPattern {
            horizon_us: 2_000_000,
            ..ArrivalPattern::default()
        };
        // Mean rate = 200 · 1.2 (burst windows) = 240/s → ~480 over 2s.
        let expected = pattern.mean_rate_per_sec() * pattern.horizon_us / 1_000_000;
        let mut counts = Vec::new();
        for seed in 0..10 {
            counts.push(poisson_burst_arrivals(&pattern, seed).len() as u64);
        }
        let mean = counts.iter().sum::<u64>() / counts.len() as u64;
        let tolerance = expected / 5;
        assert!(
            mean.abs_diff(expected) <= tolerance,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn class_mix_and_deadlines_follow_the_pattern() {
        let pattern = ArrivalPattern {
            horizon_us: 4_000_000,
            ..ArrivalPattern::default()
        };
        let arrivals = poisson_burst_arrivals(&pattern, 11);
        let total = arrivals.len() as f64;
        let interactive = arrivals
            .iter()
            .filter(|a| a.priority == PriorityClass::Interactive)
            .count() as f64;
        assert!(
            (interactive / total - 0.20).abs() < 0.08,
            "interactive share ≈ 20%, got {}",
            interactive / total
        );
        for a in &arrivals {
            assert_eq!(
                a.deadline_budget_us,
                match a.priority {
                    PriorityClass::Interactive => Some(150_000),
                    PriorityClass::Standard => Some(400_000),
                    PriorityClass::Background => None,
                }
            );
        }
    }

    #[test]
    fn session_schedules_preserve_the_arrival_process() {
        let pattern = SessionPattern::default();
        let sessions = session_arrivals(&pattern, 42);
        let plain = poisson_burst_arrivals(&pattern.arrivals, 42);
        assert_eq!(
            sessions.iter().map(|s| s.meta).collect::<Vec<_>>(),
            plain,
            "adding holds must not perturb the arrival stream"
        );
        let (lo, hi) = pattern.hold_range_us;
        assert!(sessions.iter().all(|s| s.hold_us >= lo && s.hold_us <= hi));
        assert!(
            sessions.iter().all(|s| s.demand_bps == 0),
            "demand generation is off by default"
        );
        assert_eq!(session_arrivals(&pattern, 42), sessions, "deterministic");
        assert_ne!(
            session_arrivals(&pattern, 43),
            sessions,
            "seed changes holds and arrivals"
        );
    }

    #[test]
    fn demand_stream_is_independent_of_holds_and_arrivals() {
        let base = SessionPattern::default();
        let with_demand = SessionPattern {
            demand_range_bps: (400_000, 1_200_000),
            ..base
        };
        let plain = session_arrivals(&base, 42);
        let demanding = session_arrivals(&with_demand, 42);
        assert_eq!(
            plain
                .iter()
                .map(|s| (s.meta, s.hold_us))
                .collect::<Vec<_>>(),
            demanding
                .iter()
                .map(|s| (s.meta, s.hold_us))
                .collect::<Vec<_>>(),
            "enabling demands must not perturb arrivals or holds"
        );
        let (dlo, dhi) = with_demand.demand_range_bps;
        assert!(demanding
            .iter()
            .all(|s| s.demand_bps >= dlo && s.demand_bps <= dhi));
        assert!(
            demanding.iter().map(|s| s.demand_bps).any(|d| d != dlo),
            "demands vary across sessions"
        );
    }

    #[test]
    fn demand_mix_preserves_arrivals_and_holds_and_ranges_per_class() {
        let pattern = SessionPattern {
            arrivals: ArrivalPattern {
                horizon_us: 2_000_000,
                ..ArrivalPattern::default()
            },
            ..SessionPattern::default()
        };
        let mix = DemandMix {
            interactive_bps: (2_000_000, 4_000_000),
            standard_bps: (600_000, 1_200_000),
            background_bps: (0, 0),
        };
        let plain = session_arrivals(&pattern, 42);
        let mixed = session_arrivals_with_mix(&pattern, &mix, 42);
        assert_eq!(
            plain
                .iter()
                .map(|s| (s.meta, s.hold_us))
                .collect::<Vec<_>>(),
            mixed
                .iter()
                .map(|s| (s.meta, s.hold_us))
                .collect::<Vec<_>>(),
            "a demand mix must not perturb arrivals or holds"
        );
        let mut seen_classes = 0u32;
        for s in &mixed {
            let (dlo, dhi) = mix.range_for(s.meta.priority);
            assert!(
                s.demand_bps >= dlo && s.demand_bps <= dhi,
                "{:?} demand {} outside [{dlo}, {dhi}]",
                s.meta.priority,
                s.demand_bps
            );
            seen_classes |= 1
                << match s.meta.priority {
                    PriorityClass::Interactive => 0,
                    PriorityClass::Standard => 1,
                    PriorityClass::Background => 2,
                };
        }
        assert_eq!(seen_classes, 0b111, "all three classes drawn");
        assert_eq!(session_arrivals_with_mix(&pattern, &mix, 42), mixed);
    }

    #[test]
    fn mean_concurrency_follows_littles_law() {
        let pattern = SessionPattern {
            arrivals: ArrivalPattern {
                burst_period_us: 0,
                rate_per_sec: 100,
                ..ArrivalPattern::default()
            },
            hold_range_us: (1_000_000, 3_000_000),
            demand_range_bps: (0, 0),
        };
        // 100/s × 2s mean hold = 200 concurrent.
        assert_eq!(pattern.mean_concurrency(), 200);
    }

    #[test]
    fn bursts_concentrate_arrivals() {
        let pattern = ArrivalPattern {
            horizon_us: 4_000_000,
            ..ArrivalPattern::default()
        };
        let arrivals = poisson_burst_arrivals(&pattern, 5);
        let in_burst = arrivals
            .iter()
            .filter(|a| (a.arrival_us % pattern.burst_period_us) < pattern.burst_len_us)
            .count() as f64;
        // Burst windows are 10% of time but carry 3× rate → ~25% of
        // arrivals.
        let share = in_burst / arrivals.len() as f64;
        assert!(share > 0.17, "burst windows over-represented, got {share}");
    }
}
