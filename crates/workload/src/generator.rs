//! Seeded random scenario generators.
//!
//! The experiments beyond the paper's worked example (scalability,
//! baseline comparison, optimality property, budget sweeps) run on
//! randomly generated — but fully reproducible — scenarios. The
//! generator emits *layered* service meshes: formats are organized in
//! layers, every service converts a layer-`i` format into a layer-`i+1`
//! format, the sender offers layer-0 variants and the receiver decodes
//! layer-`L` formats. Layering guarantees the graph is a DAG and that
//! formats along any path are distinct (Section 4.2's invariant holds by
//! construction).

use crate::Scenario;
use qosc_media::{
    Axis, AxisDomain, BitrateModel, DomainVector, FormatSpec, MediaKind, VariantSpec,
};
use qosc_netsim::{Link, Network, Node, NodeId, Topology};
use qosc_profiles::{
    ContentProfile, ContextProfile, ConversionSpec, DeviceProfile, HardwareCaps, NetworkProfile,
    ServiceSpec, UserProfile,
};
use qosc_satisfaction::{AxisPreference, SatisfactionFn, SatisfactionProfile};
use qosc_services::{ServiceRegistry, TranscoderDescriptor};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Shape of a generated scenario.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorConfig {
    /// Number of service layers between sender and receiver.
    pub layers: usize,
    /// Services per layer.
    pub services_per_layer: usize,
    /// Distinct formats between consecutive layers.
    pub formats_per_layer: usize,
    /// Conversions each service advertises (distinct input/output pairs).
    pub conversions_per_service: usize,
    /// Frame-rate cap range for service output domains.
    pub cap_range: (f64, f64),
    /// Link capacity range, bits per second.
    pub bandwidth_range: (f64, f64),
    /// Flat price per link (cost ≈ hops when > 0).
    pub link_flat_price: f64,
    /// Per-service flat price per second.
    pub service_price: f64,
    /// Optional user budget.
    pub budget: Option<f64>,
    /// Add a pixel-count axis (multi-parameter optimization) when true.
    pub multi_axis: bool,
}

impl Default for GeneratorConfig {
    fn default() -> GeneratorConfig {
        GeneratorConfig {
            layers: 3,
            services_per_layer: 4,
            formats_per_layer: 3,
            conversions_per_service: 2,
            cap_range: (10.0, 30.0),
            bandwidth_range: (15_000.0, 60_000.0),
            link_flat_price: 1.0,
            service_price: 0.0,
            budget: None,
            multi_axis: false,
        }
    }
}

impl GeneratorConfig {
    /// A small configuration suitable for exhaustive-search comparison.
    pub fn tiny() -> GeneratorConfig {
        GeneratorConfig {
            layers: 2,
            services_per_layer: 3,
            formats_per_layer: 2,
            ..GeneratorConfig::default()
        }
    }

    /// Scale the mesh to roughly `n` services (for scalability sweeps).
    pub fn with_total_services(mut self, n: usize) -> GeneratorConfig {
        self.services_per_layer = (n / self.layers).max(1);
        self
    }

    /// Total services generated.
    pub fn total_services(&self) -> usize {
        self.layers * self.services_per_layer
    }
}

/// Generate a scenario from `config` with a deterministic `seed`.
pub fn random_scenario(config: &GeneratorConfig, seed: u64) -> Scenario {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut formats = qosc_media::FormatRegistry::new();
    let bitrate = BitrateModel::LinearOnAxis {
        axis: Axis::FrameRate,
        slope: 1000.0,
    };

    // Formats per layer boundary: layer 0 feeds the first services,
    // layer `layers` feeds the receiver.
    let layer_formats: Vec<Vec<qosc_media::FormatId>> = (0..=config.layers)
        .map(|layer| {
            (0..config.formats_per_layer)
                .map(|i| {
                    formats.register(FormatSpec::new(
                        format!("L{layer}_{i}"),
                        MediaKind::Video,
                        bitrate,
                    ))
                })
                .collect()
        })
        .collect();

    // Topology: a backbone router; the sender, every service host and
    // the receiver hang off it with random-capacity links.
    let mut topo = Topology::new();
    let backbone = topo.add_node(Node::unconstrained("backbone"));
    let attach = |topo: &mut Topology, name: String, rng: &mut SmallRng| -> NodeId {
        let node = topo.add_node(Node::unconstrained(name));
        let (lo, hi) = config.bandwidth_range;
        let capacity = if hi > lo {
            rng.random_range(lo..=hi)
        } else {
            lo
        };
        topo.connect(Link {
            a: backbone,
            b: node,
            capacity_bps: capacity,
            delay_us: 1_000,
            loss: 0.0,
            price_per_mbit: 0.0,
            price_flat: config.link_flat_price,
        })
        .expect("valid generated link");
        node
    };
    let sender_host = attach(&mut topo, "host-sender".to_string(), &mut rng);

    // Services: layer by layer, numeric order.
    let mut service_hosts: Vec<NodeId> = Vec::new();
    let mut services = ServiceRegistry::new();
    let mut service_index = 0usize;
    let mut pending: Vec<(ServiceSpec, NodeId)> = Vec::new();
    for layer in 0..config.layers {
        for _ in 0..config.services_per_layer {
            service_index += 1;
            let host = attach(&mut topo, format!("host-S{service_index}"), &mut rng);
            let mut conversions = Vec::new();
            for _ in 0..config.conversions_per_service.max(1) {
                let input = layer_formats[layer][rng.random_range(0..config.formats_per_layer)];
                let output =
                    layer_formats[layer + 1][rng.random_range(0..config.formats_per_layer)];
                let (lo, hi) = config.cap_range;
                let cap = if hi > lo {
                    rng.random_range(lo..=hi)
                } else {
                    lo
                };
                let mut domain = DomainVector::new().with(
                    Axis::FrameRate,
                    AxisDomain::Continuous { min: 0.0, max: cap },
                );
                if config.multi_axis {
                    let px_cap = rng.random_range(19_200.0..=307_200.0);
                    domain.set(
                        Axis::PixelCount,
                        AxisDomain::Continuous {
                            min: 4_800.0,
                            max: px_cap,
                        },
                    );
                }
                conversions.push(ConversionSpec {
                    input: formats.name(input).to_string(),
                    output: formats.name(output).to_string(),
                    output_domain: domain,
                });
            }
            let spec = ServiceSpec::new(format!("S{service_index}"), conversions).with_price(
                qosc_profiles::PriceModel {
                    per_second: config.service_price,
                    per_mbit: 0.0,
                },
            );
            pending.push((spec, host));
            service_hosts.push(host);
        }
    }
    let receiver_host = attach(&mut topo, "host-receiver".to_string(), &mut rng);
    let network = Network::new(topo);
    for (spec, host) in pending {
        services.register_static(
            TranscoderDescriptor::resolve(&spec, &formats, host)
                .expect("generated formats are interned"),
        );
    }
    let _ = service_hosts;

    // Content: a variant per layer-0 format.
    let mut offered = DomainVector::new().with(
        Axis::FrameRate,
        AxisDomain::Continuous {
            min: 0.0,
            max: 30.0,
        },
    );
    if config.multi_axis {
        offered.set(
            Axis::PixelCount,
            AxisDomain::Continuous {
                min: 4_800.0,
                max: 307_200.0,
            },
        );
    }
    let content = ContentProfile::new(
        "generated-content",
        layer_formats[0]
            .iter()
            .map(|&f| VariantSpec {
                format: formats.name(f).to_string(),
                offered: offered.clone(),
            })
            .collect(),
    );

    // Device: decodes every final-layer format.
    let device = DeviceProfile::new(
        "generated-device",
        layer_formats[config.layers]
            .iter()
            .map(|&f| formats.name(f).to_string())
            .collect(),
        HardwareCaps::desktop(),
    );

    let mut satisfaction = SatisfactionProfile::new().with(AxisPreference::new(
        Axis::FrameRate,
        SatisfactionFn::Linear {
            min_acceptable: 0.0,
            ideal: 30.0,
        },
    ));
    if config.multi_axis {
        satisfaction.insert(AxisPreference::new(
            Axis::PixelCount,
            SatisfactionFn::Linear {
                min_acceptable: 0.0,
                ideal: 307_200.0,
            },
        ));
    }
    let mut user = UserProfile::new("generated-user", satisfaction);
    user.budget = config.budget;

    Scenario {
        formats,
        services,
        network,
        profiles: qosc_profiles::ProfileSet {
            user,
            content,
            device,
            context: ContextProfile::default(),
            network: NetworkProfile::lan(),
        },
        sender_host,
        receiver_host,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_core::SelectOptions;

    #[test]
    fn generated_scenario_is_deterministic() {
        let config = GeneratorConfig::default();
        let a = random_scenario(&config, 42);
        let b = random_scenario(&config, 42);
        let ca = a.compose(&SelectOptions::default()).unwrap();
        let cb = b.compose(&SelectOptions::default()).unwrap();
        match (ca.selection.chain, cb.selection.chain) {
            (Some(x), Some(y)) => {
                assert_eq!(x.names(), y.names());
                assert_eq!(x.satisfaction, y.satisfaction);
            }
            (None, None) => {}
            _ => panic!("same seed should give the same outcome"),
        }
    }

    #[test]
    fn most_seeds_are_solvable() {
        let config = GeneratorConfig::default();
        let mut solved = 0;
        for seed in 0..20 {
            let scenario = random_scenario(&config, seed);
            if scenario
                .compose(&SelectOptions::default())
                .unwrap()
                .selection
                .chain
                .is_some()
            {
                solved += 1;
            }
        }
        assert!(solved >= 15, "only {solved}/20 seeds solvable");
    }

    #[test]
    fn scaling_changes_service_count() {
        let config = GeneratorConfig::default().with_total_services(60);
        assert_eq!(config.total_services(), 60);
        let scenario = random_scenario(&config, 1);
        assert_eq!(scenario.services.live_count(), 60);
    }

    #[test]
    fn multi_axis_scenarios_compose() {
        let config = GeneratorConfig {
            multi_axis: true,
            ..GeneratorConfig::default()
        };
        let scenario = random_scenario(&config, 7);
        let composition = scenario.compose(&SelectOptions::default()).unwrap();
        if let Some(chain) = composition.selection.chain {
            assert!(chain.satisfaction > 0.0);
        }
    }
}
