//! Sharded scale scenarios for the registry-scale experiment (X20).
//!
//! The layered meshes of [`generator`](crate::generator) top out around
//! 10^4 services because every compose builds (or delta-replays) the
//! whole graph. The scale scenario is built for the opposite regime —
//! 10^5..10^6 registered services of which only a tiny, provably
//! sufficient fraction matters to any one request:
//!
//! * services come in **clusters** of format chains `src{g} → mid{m} →
//!   dst`: cluster `c` has "head" transcoders reading the shared entry
//!   format `src{c % G}` and "tail" transcoders producing the receiver
//!   format `dst`. Relay formats are shared (`m = c % M`, `M ≈ √N`
//!   capped at 512) so the format space — and with it the selector's
//!   per-(vertex × format) label arena — grows as `√N`, not `N`,
//! * every service of cluster `c` caps its output frame rate at a
//!   **strictly decreasing** per-cluster ceiling, so cluster 0 dominates
//!   and the per-shard summary frontier can prove every other cluster's
//!   shards irrelevant without expanding them,
//! * all services live on one proxy node — host topology is not the
//!   variable under test; registry size is.
//!
//! Registration goes through a [`ShardedServiceRegistry`], so the
//! two-level composer ([`ShardedComposer`]) sees per-shard frontiers and
//! epochs while the flat baseline reads the identical ground-truth
//! [`ServiceRegistry`](qosc_services::ServiceRegistry) via
//! [`ShardedServiceRegistry::flat`].

use qosc_core::{Composer, ShardedComposer};
use qosc_media::{
    Axis, AxisDomain, BitrateModel, DomainVector, FormatId, FormatRegistry, FormatSpec, MediaKind,
    VariantSpec,
};
use qosc_netsim::{Link, Network, Node, NodeId, SimTime, Topology};
use qosc_profiles::{
    ContentProfile, ContextProfile, DeviceProfile, HardwareCaps, NetworkProfile, PriceModel,
    ProfileSet, UserProfile,
};
use qosc_satisfaction::{AxisPreference, SatisfactionFn, SatisfactionProfile};
use qosc_services::{Conversion, ServiceId, ShardedServiceRegistry, TranscoderDescriptor};

/// Shape of a scale scenario.
#[derive(Debug, Clone, Copy)]
pub struct ScaleConfig {
    /// Target total registered services (rounded down to a whole number
    /// of clusters).
    pub total_services: usize,
    /// Services per cluster, split evenly into heads and tails.
    pub services_per_cluster: usize,
    /// Distinct entry formats; cluster `c` reads `src{c % entry}`.
    /// Clamped to the cluster count.
    pub entry_formats: usize,
    /// Shard count of the [`ShardedServiceRegistry`].
    pub shards: u32,
    /// Frame rate the content offers and the user ideally wants.
    pub fps_ideal: f64,
    /// Cap of the worst cluster; caps interpolate linearly down to it.
    pub fps_floor: f64,
}

impl Default for ScaleConfig {
    fn default() -> ScaleConfig {
        ScaleConfig {
            total_services: 1_000,
            services_per_cluster: 20,
            entry_formats: 16,
            shards: 64,
            fps_ideal: 30.0,
            fps_floor: 10.0,
        }
    }
}

impl ScaleConfig {
    /// Scale to roughly `n` services.
    pub fn with_total_services(mut self, n: usize) -> ScaleConfig {
        self.total_services = n;
        self
    }

    /// Number of clusters actually generated.
    pub fn clusters(&self) -> usize {
        (self.total_services / self.services_per_cluster.max(1)).max(1)
    }

    /// Services actually registered (clusters × services per cluster).
    pub fn total(&self) -> usize {
        self.clusters() * self.services_per_cluster.max(1)
    }
}

/// A self-contained sharded composition scenario at registry scale.
pub struct ScaleScenario {
    /// The scenario's format registry.
    pub formats: FormatRegistry,
    /// The sharded registry; the flat ground truth is `services.flat()`.
    pub services: ShardedServiceRegistry,
    /// The (deliberately trivial) network.
    pub network: Network,
    /// The request's profile set.
    pub profiles: ProfileSet,
    /// Node the sender runs on.
    pub sender_host: NodeId,
    /// Node the receiver runs on.
    pub receiver_host: NodeId,
    /// Node every service runs on.
    pub proxy_host: NodeId,
    /// Number of clusters generated.
    pub clusters: usize,
    mid: Vec<FormatId>,
    dst: FormatId,
    fps_ideal: f64,
    fps_floor: f64,
    churn_seq: u64,
    churn_prev: Option<ServiceId>,
}

impl ScaleScenario {
    /// The two-level composer borrowing this scenario's state.
    pub fn composer(&self) -> ShardedComposer<'_> {
        ShardedComposer {
            formats: &self.formats,
            services: &self.services,
            network: &self.network,
        }
    }

    /// The flat baseline composer over the identical ground truth.
    pub fn flat_composer(&self) -> Composer<'_> {
        Composer {
            formats: &self.formats,
            services: self.services.flat(),
            network: &self.network,
        }
    }

    /// The frame-rate cap shared by every service of `cluster`.
    ///
    /// Strictly decreasing in the cluster index: cluster 0 runs at the
    /// content's full rate, so its chain is the unique optimum and the
    /// admissible bound prunes every other cluster's shards.
    pub fn cluster_cap(&self, cluster: usize) -> f64 {
        self.fps_ideal
            - (self.fps_ideal - self.fps_floor) * cluster as f64 / self.clusters.max(1) as f64
    }

    /// A profile set whose cache key differs per `tag` (distinct user
    /// name) while resolving to the same request semantics.
    pub fn request_profiles(&self, tag: usize) -> ProfileSet {
        let mut profiles = self.profiles.clone();
        profiles.user.name = format!("scale-user-{tag}");
        profiles
    }

    /// A fresh tail descriptor (`mid{cluster % M} → dst`) for churn.
    fn tail_descriptor(&self, cluster: usize, name: String) -> TranscoderDescriptor {
        TranscoderDescriptor {
            name,
            host: self.proxy_host,
            conversions: vec![Conversion {
                input: self.mid[cluster % self.mid.len()],
                output: self.dst,
                output_domain: fps_domain(self.cluster_cap(cluster)),
            }],
            cpu_mips_per_mbps: 0.0,
            memory_bytes: 0.0,
            price: PriceModel {
                per_second: 0.0,
                per_mbit: 0.0,
            },
        }
    }

    /// One churn op: register a fresh tail in `cluster` and deregister
    /// the tail the previous call registered, keeping the live count
    /// stable while both the flat epoch and the touched shard's epoch
    /// advance. Deterministic — no randomness involved.
    pub fn churn_cycle(&mut self, cluster: usize, now: SimTime) -> ServiceId {
        if let Some(prev) = self.churn_prev.take() {
            let _ = self.services.deregister(prev);
        }
        let name = format!("x{cluster}.{}", self.churn_seq);
        self.churn_seq += 1;
        let descriptor = self.tail_descriptor(cluster % self.clusters.max(1), name);
        let id = self.services.register(descriptor, now, u64::MAX / 2);
        self.churn_prev = Some(id);
        id
    }
}

fn fps_domain(cap: f64) -> DomainVector {
    DomainVector::new().with(
        Axis::FrameRate,
        AxisDomain::Continuous { min: 0.0, max: cap },
    )
}

/// Build a scale scenario. Construction is fully structural — the same
/// config always yields the same registry, byte for byte.
pub fn scale_scenario(config: &ScaleConfig) -> ScaleScenario {
    let clusters = config.clusters();
    let per_cluster = config.services_per_cluster.max(1);
    let heads = (per_cluster / 2).max(1);
    let tails = (per_cluster - heads).max(1);
    let entry_count = config.entry_formats.clamp(1, clusters);

    let mut formats = FormatRegistry::new();
    let bitrate = BitrateModel::LinearOnAxis {
        axis: Axis::FrameRate,
        slope: 1000.0,
    };
    let entry: Vec<FormatId> = (0..entry_count)
        .map(|g| {
            formats.register(FormatSpec::new(
                format!("src{g}"),
                MediaKind::Video,
                bitrate,
            ))
        })
        .collect();
    // Relay formats are shared across clusters: `M ≈ √N` of them, so
    // format count (which the selector's dense label arena multiplies by
    // vertex count) and head→tail edge fan-out (`N²/4M`) stay balanced
    // instead of one of them exploding at 10^5..10^6 services.
    let mid_count = (config.total() as f64).sqrt().floor().clamp(16.0, 512.0) as usize;
    let mid_count = mid_count.min(clusters).max(1);
    let mid: Vec<FormatId> = (0..mid_count)
        .map(|m| {
            formats.register(FormatSpec::new(
                format!("mid{m}"),
                MediaKind::Video,
                bitrate,
            ))
        })
        .collect();
    let dst = formats.register(FormatSpec::new("dst", MediaKind::Video, bitrate));

    // Topology: sender — proxy — receiver, links far wider than any
    // stream so bandwidth never binds.
    let mut topo = Topology::new();
    let sender_host = topo.add_node(Node::unconstrained("host-sender"));
    let proxy_host = topo.add_node(Node::unconstrained("host-proxy"));
    let receiver_host = topo.add_node(Node::unconstrained("host-receiver"));
    for (a, b) in [(sender_host, proxy_host), (proxy_host, receiver_host)] {
        topo.connect(Link {
            a,
            b,
            capacity_bps: 1e9,
            delay_us: 1_000,
            loss: 0.0,
            price_per_mbit: 0.0,
            price_flat: 1.0,
        })
        .expect("static scale links are valid");
    }
    let network = Network::new(topo);

    let mut services = ShardedServiceRegistry::new(config.shards);
    let price = PriceModel {
        per_second: 0.0,
        per_mbit: 0.0,
    };
    for c in 0..clusters {
        let cap = config.fps_ideal
            - (config.fps_ideal - config.fps_floor) * c as f64 / clusters.max(1) as f64;
        for k in 0..heads {
            services.register_static(TranscoderDescriptor {
                name: format!("h{c}.{k}"),
                host: proxy_host,
                conversions: vec![Conversion {
                    input: entry[c % entry_count],
                    output: mid[c % mid_count],
                    output_domain: fps_domain(cap),
                }],
                cpu_mips_per_mbps: 0.0,
                memory_bytes: 0.0,
                price,
            });
        }
        for k in 0..tails {
            services.register_static(TranscoderDescriptor {
                name: format!("t{c}.{k}"),
                host: proxy_host,
                conversions: vec![Conversion {
                    input: mid[c % mid_count],
                    output: dst,
                    output_domain: fps_domain(cap),
                }],
                cpu_mips_per_mbps: 0.0,
                memory_bytes: 0.0,
                price,
            });
        }
    }

    let offered = fps_domain(config.fps_ideal);
    let content = ContentProfile::new(
        "scale-clip",
        entry
            .iter()
            .map(|&f| VariantSpec {
                format: formats.name(f).to_string(),
                offered: offered.clone(),
            })
            .collect(),
    );
    let device = DeviceProfile::new(
        "scale-screen",
        vec![formats.name(dst).to_string()],
        HardwareCaps::desktop(),
    );
    let satisfaction = SatisfactionProfile::new().with(AxisPreference::new(
        Axis::FrameRate,
        SatisfactionFn::Linear {
            min_acceptable: 0.0,
            ideal: config.fps_ideal,
        },
    ));
    let user = UserProfile::new("scale-user", satisfaction);

    ScaleScenario {
        formats,
        services,
        network,
        profiles: ProfileSet {
            user,
            content,
            device,
            context: ContextProfile::default(),
            network: NetworkProfile::lan(),
        },
        sender_host,
        receiver_host,
        proxy_host,
        clusters,
        mid,
        dst,
        fps_ideal: config.fps_ideal,
        fps_floor: config.fps_floor,
        churn_seq: 0,
        churn_prev: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_core::{GraphStore, SelectOptions};

    #[test]
    fn two_level_matches_flat_at_small_scale() {
        let config = ScaleConfig::default();
        let scenario = scale_scenario(&config);
        assert_eq!(scenario.services.flat().live_count(), config.total());

        let options = SelectOptions::default();
        let flat_store = GraphStore::new();
        let flat = scenario
            .flat_composer()
            .compose_with_store(
                &flat_store,
                &scenario.profiles,
                scenario.sender_host,
                scenario.receiver_host,
                &options,
            )
            .expect("flat compose");
        let store = GraphStore::new();
        let two_level = scenario
            .composer()
            .compose_with_store(
                &store,
                &scenario.profiles,
                scenario.sender_host,
                scenario.receiver_host,
                &options,
            )
            .expect("two-level compose");

        let flat_plan = flat.plan.expect("flat solves");
        let sharded_plan = two_level.composition.plan.expect("two-level solves");
        assert_eq!(
            format!("{flat_plan:?}"),
            format!("{sharded_plan:?}"),
            "plans must be bitwise identical"
        );
        // Cluster 0 runs at the full content rate.
        assert!((sharded_plan.predicted_satisfaction - 1.0).abs() < 1e-9);
        assert!(
            !two_level.full_expansion,
            "dominant cluster must be provable from summaries"
        );
        assert!(
            (two_level.expanded_shards.len() as u32) < config.shards / 4,
            "expected few expanded shards, got {:?}",
            two_level.expanded_shards
        );
    }

    #[test]
    fn churn_keeps_live_count_stable_and_moves_epochs() {
        let config = ScaleConfig {
            total_services: 200,
            ..ScaleConfig::default()
        };
        let mut scenario = scale_scenario(&config);
        let live = scenario.services.flat().live_count();
        let epoch = scenario.services.flat().epoch();
        // First cycle adds one extra; every later cycle swaps it out.
        scenario.churn_cycle(3, SimTime(1_000));
        for i in 0..8 {
            scenario.churn_cycle(3 + i % 2, SimTime(2_000 + i as u64));
        }
        assert_eq!(scenario.services.flat().live_count(), live + 1);
        assert!(scenario.services.flat().epoch() > epoch);
        let summed: u64 = scenario
            .services
            .shard_epochs()
            .iter()
            .map(|&(_, e)| e)
            .sum();
        assert_eq!(summed, scenario.services.flat().epoch());
    }
}
