//! Random profile generators: heterogeneous users and devices.
//!
//! The paper's whole motivation is *diversity* — "clients range from a
//! small single-task audio player to a complex … desktop computer" with
//! equally diverse user preferences. These generators produce that
//! diversity deterministically (seeded) for the population experiments:
//! each draw is a coherent user (preference shapes, weights, optional
//! budget) or device (a hardware class with per-unit variation).

use qosc_media::Axis;
use qosc_profiles::{DeviceProfile, HardwareCaps, UserProfile};
use qosc_satisfaction::{AxisPreference, Combiner, SatisfactionFn, SatisfactionProfile};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Draw a random video-watching user: a frame-rate preference always,
/// a resolution preference usually, with varied shapes, weights and an
/// occasional budget.
pub fn random_user(seed: u64) -> UserProfile {
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut satisfaction = SatisfactionProfile::new();

    // Frame rate: everyone cares, shapes differ.
    let fps_ideal = rng.random_range(15.0..=30.0);
    let fps_fn = if rng.random_bool(0.6) {
        SatisfactionFn::Linear {
            min_acceptable: rng.random_range(0.0..=5.0),
            ideal: fps_ideal,
        }
    } else {
        SatisfactionFn::Saturating {
            min_acceptable: rng.random_range(0.0..=5.0),
            ideal: fps_ideal,
            scale: rng.random_range(3.0..=12.0),
        }
    };
    satisfaction.insert(AxisPreference::weighted(
        Axis::FrameRate,
        fps_fn,
        rng.random_range(0.5..=3.0),
    ));

    // Resolution: most users care.
    if rng.random_bool(0.8) {
        let px_ideal = rng.random_range(76_800.0..=307_200.0);
        satisfaction.insert(AxisPreference::weighted(
            Axis::PixelCount,
            SatisfactionFn::Linear {
                min_acceptable: 4_800.0,
                ideal: px_ideal,
            },
            rng.random_range(0.5..=2.0),
        ));
    }

    // A minority uses the weighted extension of [29].
    if rng.random_bool(0.3) {
        satisfaction.use_weighted_combination();
    } else {
        satisfaction.combiner = Combiner::HarmonicMean;
    }

    let mut user = UserProfile::new(format!("user-{seed}"), satisfaction);
    if rng.random_bool(0.25) {
        user.budget = Some(rng.random_range(0.5..=5.0));
    }
    user
}

/// Device classes spanning the paper's diversity axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceClass {
    /// A 2007-era PDA: QVGA, one speaker, H.263 only.
    Pda,
    /// A smartphone-class handset: HVGA, H.263 + MPEG-1.
    Handset,
    /// A laptop: XGA, most video codecs.
    Laptop,
    /// A desktop: full HD, everything.
    Desktop,
}

impl DeviceClass {
    /// All classes, small to large.
    pub const ALL: [DeviceClass; 4] = [
        DeviceClass::Pda,
        DeviceClass::Handset,
        DeviceClass::Laptop,
        DeviceClass::Desktop,
    ];
}

/// Draw a device of a random class with ±10 % per-unit CPU variation.
pub fn random_device(seed: u64) -> DeviceProfile {
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0xD134_2543_DE82_EF95));
    let class = DeviceClass::ALL[rng.random_range(0..DeviceClass::ALL.len())];
    device_of_class(class, &mut rng)
}

fn device_of_class(class: DeviceClass, rng: &mut SmallRng) -> DeviceProfile {
    let jitter = rng.random_range(0.9..=1.1);
    let (name, decoders, mut caps) = match class {
        DeviceClass::Pda => ("pda", vec!["video/h263".to_string()], HardwareCaps::pda()),
        DeviceClass::Handset => (
            "handset",
            vec!["video/h263".to_string(), "video/mpeg1".to_string()],
            HardwareCaps {
                screen_width: 480,
                screen_height: 320,
                color_depth: 24,
                audio_channels: 2,
                max_sample_rate: 44_100,
                cpu_mips: 800.0,
                memory_bytes: 256e6,
            },
        ),
        DeviceClass::Laptop => (
            "laptop",
            vec![
                "video/h263".to_string(),
                "video/mpeg1".to_string(),
                "video/mpeg2".to_string(),
            ],
            HardwareCaps {
                screen_width: 1024,
                screen_height: 768,
                color_depth: 24,
                audio_channels: 2,
                max_sample_rate: 48_000,
                cpu_mips: 4_000.0,
                memory_bytes: 2e9,
            },
        ),
        DeviceClass::Desktop => (
            "desktop",
            vec![
                "video/h263".to_string(),
                "video/mpeg1".to_string(),
                "video/mpeg2".to_string(),
                "video/mpeg4".to_string(),
            ],
            HardwareCaps::desktop(),
        ),
    };
    caps.cpu_mips *= jitter;
    DeviceProfile::new(format!("{name}-{jitter:.2}"), decoders, caps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn users_are_deterministic_and_valid() {
        for seed in 0..50 {
            let a = random_user(seed);
            let b = random_user(seed);
            assert_eq!(a, b, "seed {seed}");
            a.validate().unwrap();
            assert!(!a.satisfaction.is_empty());
        }
    }

    #[test]
    fn users_are_diverse() {
        let users: Vec<_> = (0..20).map(random_user).collect();
        let budgets = users.iter().filter(|u| u.budget.is_some()).count();
        assert!(
            budgets > 0 && budgets < 20,
            "budget mix expected, got {budgets}"
        );
        let weighted = users
            .iter()
            .filter(|u| {
                matches!(
                    u.satisfaction.combiner,
                    qosc_satisfaction::Combiner::WeightedHarmonic { .. }
                )
            })
            .count();
        assert!(weighted > 0, "some users should use the weighted extension");
    }

    #[test]
    fn devices_are_deterministic_and_valid() {
        for seed in 0..50 {
            let a = random_device(seed);
            let b = random_device(seed);
            assert_eq!(a, b, "seed {seed}");
            a.validate().unwrap();
        }
    }

    #[test]
    fn devices_cover_multiple_classes() {
        let mut decoder_counts: Vec<usize> =
            (0..30).map(|s| random_device(s).decoders.len()).collect();
        decoder_counts.sort_unstable();
        decoder_counts.dedup();
        assert!(decoder_counts.len() >= 2, "expected class diversity");
    }

    #[test]
    fn devices_resolve_against_builtins() {
        let formats = qosc_media::FormatRegistry::with_builtins();
        for seed in 0..20 {
            random_device(seed).resolve_decoders(&formats).unwrap();
        }
    }
}
