//! # qosc-bench
//!
//! Shared plumbing for the experiment binaries (`src/bin/*`) that
//! regenerate every table and figure of *"A QoS-based Service Composition
//! for Content Adaptation"* (ICDE 2007), the Criterion benches
//! (`benches/*`), and the workspace integration suite (`../../tests/*`).
//!
//! See `EXPERIMENTS.md` at the workspace root for the experiment index
//! and the recorded paper-vs-measured results.

use qosc_core::baseline::{exhaustive, random_walk, structural, BaselineResult};
use qosc_core::select::label::ExtendContext;
use qosc_core::{SelectOptions, SelectedChain};
use qosc_satisfaction::OptimizeOptions;
use qosc_workload::Scenario;

/// A minimal fixed-width text-table printer for experiment output.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> TextTable {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (missing cells render empty; extras are kept).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut TextTable {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let columns = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; columns];
        for row in std::iter::once(&self.header).chain(&self.rows) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |row: &[String]| {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                let pad = width.saturating_sub(cell.chars().count());
                line.push_str(cell);
                line.push_str(&" ".repeat(pad));
                if i + 1 < columns {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// The algorithms compared by the baseline experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// The paper's greedy QoS selection (Figure 4).
    Greedy,
    /// Exact optimum by exhaustive enumeration.
    Exhaustive,
    /// Fewest hops.
    FewestHops,
    /// Maximum bottleneck bandwidth.
    WidestPath,
    /// Minimum structural price.
    CheapestPath,
    /// Seeded random feasible chain.
    RandomWalk,
}

impl Algorithm {
    /// All algorithms, display order.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::Greedy,
        Algorithm::Exhaustive,
        Algorithm::FewestHops,
        Algorithm::WidestPath,
        Algorithm::CheapestPath,
        Algorithm::RandomWalk,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Greedy => "greedy-qos (paper)",
            Algorithm::Exhaustive => "exhaustive (optimal)",
            Algorithm::FewestHops => "fewest-hops",
            Algorithm::WidestPath => "widest-path",
            Algorithm::CheapestPath => "cheapest-path",
            Algorithm::RandomWalk => "random-walk",
        }
    }
}

/// The outcome of one algorithm on one scenario.
#[derive(Debug, Clone)]
pub struct AlgoOutcome {
    /// Which algorithm ran.
    pub algorithm: Algorithm,
    /// The chain it picked, if it found one.
    pub chain: Option<SelectedChain>,
    /// States/paths explored (algorithm-specific effort metric).
    pub explored: usize,
}

/// Run `algorithm` on `scenario` and return its outcome. The greedy
/// algorithm runs through the scenario's composer; baselines run on the
/// same graph and extension semantics.
pub fn run_algorithm(
    scenario: &Scenario,
    algorithm: Algorithm,
    options: &SelectOptions,
) -> qosc_core::Result<AlgoOutcome> {
    let composition = scenario.compose(options)?;
    if algorithm == Algorithm::Greedy {
        return Ok(AlgoOutcome {
            algorithm,
            explored: composition.selection.optimizations,
            chain: composition.selection.chain,
        });
    }
    let profile = scenario.profiles.effective_satisfaction();
    let ctx = ExtendContext {
        graph: &composition.graph,
        formats: &scenario.formats,
        profile: &profile,
        budget: scenario.profiles.user.budget_or_infinite(),
        optimizer: OptimizeOptions::default(),
        penalties: &[],
    };
    let result: Option<BaselineResult> = match algorithm {
        Algorithm::Exhaustive => {
            exhaustive::exhaustive_optimum(&ctx, exhaustive::ExhaustiveOptions::default())?
        }
        Algorithm::FewestHops => structural::fewest_hops(&ctx)?,
        Algorithm::WidestPath => structural::widest_path(&ctx)?,
        Algorithm::CheapestPath => structural::cheapest_path(&ctx)?,
        Algorithm::RandomWalk => {
            random_walk::random_walk(&ctx, random_walk::RandomWalkOptions::default())?
        }
        Algorithm::Greedy => unreachable!("handled above"),
    };
    Ok(match result {
        Some(r) => AlgoOutcome {
            algorithm,
            chain: Some(r.chain),
            explored: r.explored,
        },
        None => AlgoOutcome {
            algorithm,
            chain: None,
            explored: 0,
        },
    })
}

/// Format a satisfaction for display (paper-style, two decimals,
/// truncated).
pub fn sat2(s: f64) -> String {
    format!("{:.2}", qosc_core::SelectionTrace::truncate2(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_aligns_columns() {
        let mut t = TextTable::new(["a", "bb"]);
        t.row(["1", "2"]).row(["333", "4"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("1"));
    }

    #[test]
    fn algorithms_run_on_paper_scenario() {
        let scenario = qosc_workload::paper::figure6_scenario(true);
        for algorithm in Algorithm::ALL {
            let outcome = run_algorithm(&scenario, algorithm, &SelectOptions::default()).unwrap();
            let chain = outcome.chain.unwrap_or_else(|| {
                panic!("{} found no chain on the paper scenario", algorithm.name())
            });
            assert!(chain.satisfaction > 0.0, "{}", algorithm.name());
        }
    }

    #[test]
    fn greedy_matches_exhaustive_on_paper_scenario() {
        let scenario = qosc_workload::paper::figure6_scenario(true);
        let options = SelectOptions::default();
        let greedy = run_algorithm(&scenario, Algorithm::Greedy, &options)
            .unwrap()
            .chain
            .unwrap();
        let exact = run_algorithm(&scenario, Algorithm::Exhaustive, &options)
            .unwrap()
            .chain
            .unwrap();
        assert!((greedy.satisfaction - exact.satisfaction).abs() < 1e-9);
    }

    #[test]
    fn sat2_truncates() {
        assert_eq!(sat2(23.0 / 30.0), "0.76");
        assert_eq!(sat2(1.0), "1.00");
    }
}
