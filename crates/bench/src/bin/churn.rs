//! X8 — service churn through SLP-style leases: intermediaries
//! advertise their trans-coders with a TTL and must renew; crashed
//! proxies silently stop renewing and fall out of the graph at lease
//! expiry ("self-organizing" discovery, Section 3's intermediary
//! profiles over JINI/SLP). The experiment drives a seeded churn process
//! and samples composition quality over time.
//!
//! ```text
//! cargo run -p qosc-bench --release --bin churn
//! ```

use qosc_bench::TextTable;
use qosc_core::{Composer, SelectOptions};
use qosc_netsim::{Network, Node, SimTime, Topology};
use qosc_profiles::{
    ContentProfile, ContextProfile, DeviceProfile, NetworkProfile, ProfileSet, UserProfile,
};
use qosc_services::{
    catalog, DiscoveryConfig, DiscoveryDriver, ServiceRegistry, TranscoderDescriptor,
};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

const LEASE_TTL_SECS: u64 = 8;
const TICKS: u64 = 120;

fn main() {
    println!("X8 — composition quality under service churn (lease TTL {LEASE_TTL_SECS} s)");
    println!();

    let mut table = TextTable::new([
        "P(miss renewal)/tick",
        "mean live services",
        "ticks solvable",
        "mean satisfaction",
        "lease expiries",
        "re-registrations",
    ]);
    for &death_probability in &[0.0f64, 0.02, 0.05, 0.10] {
        let stats = run_churn(death_probability, 42);
        table.row([
            format!("{:.0}%", death_probability * 100.0),
            format!("{:.1}", stats.mean_live),
            format!("{}/{TICKS}", stats.solvable_ticks),
            format!("{:.3}", stats.mean_satisfaction),
            stats.expiries.to_string(),
            stats.rebirths.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!(
        "Expected shape: with no churn every tick composes at full quality; \
         rising churn thins the live graph, so some ticks lose the good \
         chain (lower satisfaction) or every chain (unsolvable) — and \
         recovery is automatic because re-registration re-inserts the \
         service without any central coordination."
    );
}

struct ChurnStats {
    mean_live: f64,
    solvable_ticks: u64,
    mean_satisfaction: f64,
    expiries: usize,
    rebirths: usize,
}

fn run_churn(death_probability: f64, seed: u64) -> ChurnStats {
    let mut rng = SmallRng::seed_from_u64(seed);
    let formats = qosc_media::FormatRegistry::with_builtins();

    // Camera — 3 proxies in a row — client (so chains have alternatives).
    let mut topo = Topology::new();
    let server = topo.add_node(Node::unconstrained("server"));
    let proxies: Vec<_> = (0..3)
        .map(|i| topo.add_node(Node::unconstrained(format!("proxy-{i}"))))
        .collect();
    let client = topo.add_node(Node::unconstrained("client"));
    for &p in &proxies {
        topo.connect_simple(server, p, 50e6).unwrap();
        topo.connect_simple(p, client, 2e6).unwrap();
    }
    let network = Network::new(topo);

    // Every proxy advertises the full catalog through the discovery
    // driver (SLP-style soft state: register with a TTL, renew per tick).
    let mut services = ServiceRegistry::new();
    let mut discovery = DiscoveryDriver::new(DiscoveryConfig {
        ttl: SimTime::from_secs(LEASE_TTL_SECS),
    });
    let specs = catalog::full_catalog();
    let mut members = Vec::new();
    for &proxy in &proxies {
        for spec in &specs {
            let descriptor = TranscoderDescriptor::resolve(spec, &formats, proxy).unwrap();
            members.push(discovery.join(&mut services, descriptor, SimTime::ZERO));
        }
    }

    let profiles = ProfileSet {
        user: UserProfile::demo("churn-client"),
        content: ContentProfile::demo_video("live-cam"),
        device: DeviceProfile::demo_pda(),
        context: ContextProfile::default(),
        network: NetworkProfile::broadband(),
    };
    let options = SelectOptions {
        record_trace: false,
        ..SelectOptions::default()
    };

    let mut live_sum = 0usize;
    let mut solvable = 0u64;
    let mut satisfaction_sum = 0.0;
    let mut expiries = 0usize;
    let mut rebirths = 0usize;
    // Crashed members waiting to come back: (revival tick, member).
    let mut pending: Vec<(u64, qosc_services::MemberId)> = Vec::new();

    for tick in 1..=TICKS {
        let now = SimTime::from_secs(tick);
        // The churn process crashes members; crashed members silently
        // stop renewing and their leases expire on their own.
        for &member in &members {
            let already_down = pending.iter().any(|&(_, m)| m == member);
            if !already_down
                && discovery.is_advertised(&services, member)
                && death_probability > 0.0
                && rng.random_range(0.0..1.0) < death_probability
            {
                discovery.crash(member);
                pending.push((tick + rng.random_range(5u64..20), member));
            }
        }
        // Revivals: the proxy process rejoins.
        let due: Vec<_> = pending
            .iter()
            .filter(|&&(t, _)| t <= tick)
            .map(|&(_, m)| m)
            .collect();
        pending.retain(|&(t, _)| t > tick);
        for member in due {
            discovery.revive(&mut services, member, now).unwrap();
            rebirths += 1;
        }
        // One discovery tick: renewals + lease expiry.
        expiries += discovery.tick(&mut services, now);

        live_sum += services.live_count();

        // Sample a composition against the current registry.
        let composer = Composer {
            formats: &formats,
            services: &services,
            network: &network,
        };
        let composition = composer
            .compose(&profiles, server, client, &options)
            .expect("composition runs");
        if let Some(chain) = composition.selection.chain {
            solvable += 1;
            satisfaction_sum += chain.satisfaction;
        }
    }

    ChurnStats {
        mean_live: live_sum as f64 / TICKS as f64,
        solvable_ticks: solvable,
        mean_satisfaction: satisfaction_sum / solvable.max(1) as f64,
        expiries,
        rebirths,
    }
}
