//! X7 — scaling with the number of clients (Section 2's claim that
//! proxy-based adaptation "scal[es] properly with the number of
//! clients"): admit clients one by one through a shared proxy; each
//! composition sees the bandwidth the previous sessions left behind.
//!
//! Two phases expose a tension the paper leaves implicit: satisfaction
//! maximization is *per user*, so unconstrained clients each grab the
//! full rate until the uplink is exhausted (first-come-first-served
//! cliff). Giving every user a per-second budget against a metered
//! uplink turns the budget constraint of Figure 4 into a crude fairness
//! knob: each client affords only a share, so more clients are served
//! at slightly lower quality.
//!
//! ```text
//! cargo run -p qosc-bench --release --bin concurrency
//! ```

use qosc_bench::TextTable;
use qosc_core::{Composer, SelectOptions};
use qosc_media::{
    Axis, AxisDomain, BitrateModel, DomainVector, FormatSpec, MediaKind, VariantSpec,
};
use qosc_netsim::{Link, Network, Node, Topology};
use qosc_profiles::{
    ContentProfile, ContextProfile, ConversionSpec, DeviceProfile, HardwareCaps, NetworkProfile,
    ProfileSet, ServiceSpec, UserProfile,
};
use qosc_services::{ServiceRegistry, TranscoderDescriptor};

fn main() {
    println!("X7 — concurrent clients sharing one 300 kbit/s proxy uplink");
    println!();
    run_phase(
        "phase A: unconstrained users (individual optimum)",
        None,
        0.0,
    );
    println!();
    run_phase(
        "phase B: budgeted users (0.018/s against a 1.0/Mbit metered uplink → ≤18 fps each)",
        Some(0.018),
        1.0,
    );
    println!();
    println!(
        "Shape: in phase A the first 10 clients each take the full 30 fps and \
         client 11 onward starves — per-user satisfaction maximization is \
         first-come-first-served. In phase B the Figure-4 budget meters each \
         user down to 18 fps (satisfaction 0.60), so 17 clients are served \
         (the last one on the residual headroom) before starvation: the \
         budget doubles as a fairness knob."
    );
}

fn run_phase(label: &str, budget: Option<f64>, uplink_price_per_mbit: f64) {
    println!("=== {label} ===");
    // server —(100 Mbit/s)— proxy —(300 kbit/s shared)— access — clients.
    let mut formats = qosc_media::FormatRegistry::new();
    let linear = BitrateModel::LinearOnAxis {
        axis: Axis::FrameRate,
        slope: 1000.0,
    };
    formats.register(FormatSpec::new("master", MediaKind::Video, linear));
    formats.register(FormatSpec::new("mobile", MediaKind::Video, linear));

    let client_count = 24usize;
    let mut topo = Topology::new();
    let server = topo.add_node(Node::unconstrained("server"));
    let proxy = topo.add_node(Node::unconstrained("proxy"));
    let access = topo.add_node(Node::unconstrained("access"));
    topo.connect_simple(server, proxy, 100e6).unwrap();
    topo.connect(Link {
        a: proxy,
        b: access,
        capacity_bps: 300_000.0, // the shared bottleneck
        delay_us: 5_000,
        loss: 0.0,
        price_per_mbit: uplink_price_per_mbit,
        price_flat: 0.0,
    })
    .unwrap();
    let clients: Vec<_> = (0..client_count)
        .map(|i| {
            let node = topo.add_node(Node::unconstrained(format!("client-{i}")));
            topo.connect_simple(access, node, 10e6).unwrap();
            node
        })
        .collect();
    let mut network = Network::new(topo);

    let mut services = ServiceRegistry::new();
    let spec = ServiceSpec::new(
        "mobile-transcoder",
        vec![ConversionSpec::new(
            "master",
            "mobile",
            DomainVector::new().with(
                Axis::FrameRate,
                AxisDomain::Continuous {
                    min: 1.0,
                    max: 30.0,
                },
            ),
        )],
    );
    services.register_static(TranscoderDescriptor::resolve(&spec, &formats, proxy).unwrap());

    let profiles = |name: String| ProfileSet {
        user: {
            let mut user = UserProfile::paper_table1();
            user.budget = budget;
            user
        },
        content: ContentProfile::new(
            format!("stream-for-{name}"),
            vec![VariantSpec {
                format: "master".to_string(),
                offered: DomainVector::new().with(
                    Axis::FrameRate,
                    AxisDomain::Continuous {
                        min: 1.0,
                        max: 30.0,
                    },
                ),
            }],
        ),
        device: DeviceProfile::new(name, vec!["mobile".to_string()], HardwareCaps::pda()),
        context: ContextProfile::default(),
        network: NetworkProfile::cellular(),
    };

    let options = SelectOptions {
        record_trace: false,
        ..SelectOptions::default()
    };
    let mut table = TextTable::new([
        "client",
        "admitted",
        "delivered fps",
        "satisfaction",
        "uplink left (kbit/s)",
    ]);
    let mut admitted = 0usize;
    let mut satisfaction_sum = 0.0;
    for (i, &client) in clients.iter().enumerate() {
        let composer = Composer {
            formats: &formats,
            services: &services,
            network: &network,
        };
        let composition = composer
            .compose(&profiles(format!("client-{i}")), server, client, &options)
            .expect("composition runs");
        let row = match composition.plan {
            // A chain that delivers (almost) nothing is starvation, not
            // service.
            Some(plan) if plan.predicted_satisfaction > 0.05 => {
                // Admit the session: hold its bandwidth for the rest of
                // the experiment so later clients see less headroom.
                let mut ok = true;
                for pair in plan.steps.windows(2) {
                    if network
                        .reserve_between(pair[0].host, pair[1].host, pair[1].input_bps)
                        .is_err()
                    {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    admitted += 1;
                    satisfaction_sum += plan.predicted_satisfaction;
                    let fps = plan
                        .steps
                        .last()
                        .unwrap()
                        .params
                        .get(Axis::FrameRate)
                        .unwrap_or(0.0);
                    (
                        format!("{fps:.1}"),
                        format!("{:.3}", plan.predicted_satisfaction),
                    )
                } else {
                    ("-".to_string(), "admission failed".to_string())
                }
            }
            Some(_) => ("-".to_string(), "starved".to_string()),
            None => ("-".to_string(), "no chain".to_string()),
        };
        let left = network.available_between(proxy, access).unwrap_or(0.0);
        table.row([
            format!("{i}"),
            admitted.to_string(),
            row.0,
            row.1,
            format!("{:.1}", left / 1e3),
        ]);
    }
    print!("{}", table.render());
    println!(
        "served {admitted}/{client_count} clients, mean satisfaction of served: {:.3}",
        satisfaction_sum / admitted.max(1) as f64
    );
}
