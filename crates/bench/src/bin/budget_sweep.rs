//! X3 — the budget constraint of Figure 4: sweep the user's budget on
//! the Figure-6 scenario (where cost = hop count) and report the chain
//! and satisfaction the algorithm can still afford.
//!
//! ```text
//! cargo run -p qosc-bench --bin budget_sweep
//! ```

use qosc_bench::{sat2, TextTable};
use qosc_core::SelectOptions;
use qosc_workload::paper;

fn main() {
    println!("X3 — user-budget sweep on the Figure-6 scenario (cost = hop count)");
    println!();

    let budgets = [0.5, 1.0, 1.5, 2.0, 3.0, 10.0];
    let mut table = TextTable::new(["budget", "chain", "cost", "satisfaction"]);
    for &budget in &budgets {
        let mut scenario = paper::figure6_scenario(true);
        scenario.profiles.user.budget = Some(budget);
        let composition = scenario
            .compose(&SelectOptions::default())
            .expect("composes");
        match composition.selection.chain {
            Some(chain) => {
                table.row([
                    format!("{budget:.1}"),
                    chain.names().join(","),
                    format!("{:.1}", chain.total_cost),
                    sat2(chain.satisfaction),
                ]);
            }
            None => {
                table.row([
                    format!("{budget:.1}"),
                    "TERMINATE(FAILURE)".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                ]);
            }
        }
    }
    print!("{}", table.render());
    println!();
    println!(
        "Expected shape: below 2 monetary units the receiver is unaffordable \
         (every chain needs ≥ 2 hops); at exactly 2 the algorithm delivers \
         the paper's sender,T7,receiver chain; more budget does not improve \
         satisfaction further because T7's 20 fps cap binds, not money."
    );
}
