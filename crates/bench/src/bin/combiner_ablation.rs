//! X6 — combination-function ablation: on multi-axis scenarios, how does
//! the choice of `fcomb` (Equa. 1's harmonic mean vs alternatives) change
//! the selected chain and its quality profile?
//!
//! ```text
//! cargo run -p qosc-bench --release --bin combiner_ablation
//! ```

use qosc_bench::TextTable;
use qosc_core::SelectOptions;
use qosc_media::Axis;
use qosc_satisfaction::Combiner;
use qosc_workload::generator::{random_scenario, GeneratorConfig};

fn main() {
    println!("X6 — fcomb ablation on multi-axis (frame rate × resolution) scenarios");
    println!();

    let combiners: [(&str, Combiner); 4] = [
        ("harmonic (Equa. 1)", Combiner::HarmonicMean),
        ("min", Combiner::Min),
        ("product", Combiner::Product),
        ("arithmetic (strawman)", Combiner::ArithmeticMean),
    ];
    let seeds: Vec<u64> = (0..15).collect();
    let options = SelectOptions {
        record_trace: false,
        ..SelectOptions::default()
    };

    let mut table = TextTable::new([
        "fcomb",
        "solved",
        "mean own-score",
        "mean harmonic-score",
        "mean min axis-sat",
        "mean worst/best axis",
    ]);
    for (name, combiner) in &combiners {
        let mut own_sum = 0.0;
        let mut harmonic_sum = 0.0;
        let mut min_axis_sum = 0.0;
        let mut balance_sum = 0.0;
        let mut solved = 0usize;
        for &seed in &seeds {
            let config = GeneratorConfig {
                multi_axis: true,
                bandwidth_range: (30_000.0, 120_000.0),
                ..GeneratorConfig::default()
            };
            let mut scenario = random_scenario(&config, seed);
            scenario.profiles.user.satisfaction.combiner = combiner.clone();
            let composition = scenario.compose(&options).expect("composes");
            let chain = match composition.selection.chain {
                Some(c) => c,
                None => continue,
            };
            solved += 1;
            own_sum += chain.satisfaction;

            // Re-score the delivered configuration under the harmonic
            // reference and per-axis.
            let delivered = chain.steps.last().unwrap().params;
            let mut reference = scenario.profiles.user.satisfaction.clone();
            reference.combiner = Combiner::HarmonicMean;
            harmonic_sum += reference.score(&delivered);
            let axis_sats: Vec<f64> = [Axis::FrameRate, Axis::PixelCount]
                .iter()
                .filter_map(|&axis| {
                    let pref = reference.get(axis)?;
                    delivered.get(axis).map(|v| pref.function.eval(v))
                })
                .collect();
            if !axis_sats.is_empty() {
                let min = axis_sats.iter().copied().fold(f64::INFINITY, f64::min);
                let max = axis_sats.iter().copied().fold(0.0f64, f64::max);
                min_axis_sum += min;
                balance_sum += if max > 0.0 { min / max } else { 0.0 };
            }
        }
        let n = solved.max(1) as f64;
        table.row([
            name.to_string(),
            format!("{solved}/{}", seeds.len()),
            format!("{:.3}", own_sum / n),
            format!("{:.3}", harmonic_sum / n),
            format!("{:.3}", min_axis_sum / n),
            format!("{:.3}", balance_sum / n),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!(
        "Expected shape: the harmonic mean (and min) keep the axes balanced \
         (worst/best near 1); the arithmetic strawman happily sacrifices one \
         axis for the other, which is exactly why Richards et al. — and the \
         paper — use Equa. 1."
    );
}
