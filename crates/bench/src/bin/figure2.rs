//! E3 — regenerate **Figure 2**: a trans-coding service T1 with input
//! formats {F5, F6} and output formats {F10, F11, F12, F13}, shown as a
//! service descriptor and as a DOT fragment.
//!
//! ```text
//! cargo run -p qosc-bench --bin figure2
//! ```

use qosc_media::{DomainVector, FormatRegistry, MediaKind};
use qosc_netsim::{Node, Topology};
use qosc_profiles::{ConversionSpec, ServiceSpec};
use qosc_services::TranscoderDescriptor;

fn main() {
    println!("E3 — Figure 2: trans-coding service with multiple input and output links");
    println!();

    let mut formats = FormatRegistry::new();
    for name in ["F5", "F6", "F10", "F11", "F12", "F13"] {
        formats.register_abstract(name, MediaKind::Video);
    }
    let mut topo = Topology::new();
    let host = topo.add_node(Node::unconstrained("proxy"));

    let mut conversions = Vec::new();
    for input in ["F5", "F6"] {
        for output in ["F10", "F11", "F12", "F13"] {
            conversions.push(ConversionSpec::new(input, output, DomainVector::new()));
        }
    }
    let spec = ServiceSpec::new("T1", conversions);
    let t1 = TranscoderDescriptor::resolve(&spec, &formats, host).expect("formats interned");

    let inputs: Vec<&str> = t1
        .input_formats()
        .iter()
        .map(|&f| formats.name(f))
        .collect();
    let outputs: Vec<&str> = t1
        .output_formats()
        .iter()
        .map(|&f| formats.name(f))
        .collect();
    println!("service: {}", t1.name);
    println!("  input links : {}", inputs.join(", "));
    println!("  output links: {}", outputs.join(", "));
    println!("  conversions : {}", t1.conversions.len());
    assert_eq!(inputs, ["F5", "F6"], "paper's Figure 2 inputs");
    assert_eq!(
        outputs,
        ["F10", "F11", "F12", "F13"],
        "paper's Figure 2 outputs"
    );

    println!();
    println!("DOT fragment (paper's visual language — formats on edges):");
    println!("digraph figure2 {{");
    println!("  rankdir=LR; T1 [shape=circle];");
    for input in &inputs {
        println!("  in_{input} [shape=point]; in_{input} -> T1 [label=\"{input}\"];");
    }
    for output in &outputs {
        println!("  out_{output} [shape=point]; T1 -> out_{output} [label=\"{output}\"];");
    }
    println!("}}");
}
