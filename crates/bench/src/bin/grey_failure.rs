//! X18 — the grey-failure detection scorecard: grey-fault chaos ×
//! detection mode.
//!
//! Replays the X17 strict mesh and open-loop session stream, but
//! instead of squeezing a link it *sags* the members serving the
//! nominal chain: deterministic windows cut their delivered throughput
//! to 10% of advertised while every liveness signal stays green —
//! `plan_alive` and `plan_routable` keep saying yes, no lease expires,
//! no breaker trips. Each cell runs the session engine with the BOLA
//! buffer model attached, under three detection modes:
//!
//! * **off** — `sla: None`, the PR 7 code path: sessions ride the sick
//!   chain, the buffer drains at 4× real time, and the rebuffer column
//!   shows what undetected grey failure costs,
//! * **binary** — the circuit-breaker baseline: hard failures (plan
//!   death) feed the registry's quarantine, but a grey fault never
//!   kills a plan, so the breaker is provably blind — this cell's
//!   digest must equal `off`'s byte for byte,
//! * **drift** — the estimator/watchdog loop: per-tick observed-QoS
//!   samples flag the sagging service, probation penalizes it in
//!   selection, and a make-before-break evasion moves each session to
//!   a healthy alternative before the buffer runs dry.
//!
//! "p5 satisfaction" is the 5th-percentile per-session *delivered*
//! satisfaction: mean plan satisfaction over active time, discounted
//! by the stalled share of playback — a session that spends half its
//! life rebuffering delivers half its composed satisfaction no matter
//! what the selection scored.
//!
//! Emits `BENCH_grey.json` (first CLI argument overrides the path;
//! `--deterministic` is accepted for CI parity — the file is always
//! deterministic). Every cell runs at 1/2/4/8 workers and the digests
//! must agree byte for byte.
//!
//! The bin asserts the PR's acceptance shape directly: under grey
//! chaos the binary breaker never reacts (availability stays ≈ 1.0
//! while p5 satisfaction and the rebuffer ratio collapse, digest equal
//! to detection-off), and the drift-aware engine strictly improves
//! both — while at calm all three modes are bit-identical, the
//! estimators' do-no-harm bound.

use qosc_bench::TextTable;
use qosc_core::{
    run_sessions, AbrConfig, AbrMode, CompositionRequest, ResilientEngineConfig, SelectOptions,
    SessionEngineConfig, SessionRequest, SessionsReport, SlaConfig, SlaMode,
};
use qosc_media::Axis;
use qosc_pipeline::{ChaosAction, ChaosWorld};
use qosc_satisfaction::{AxisPreference, SatisfactionFn, SatisfactionProfile};
use qosc_services::{DiscoveryConfig, QosEstimatorConfig};
use qosc_workload::arrivals::{session_arrivals, ArrivalPattern, SessionPattern};
use qosc_workload::generator::{random_scenario, GeneratorConfig};
use qosc_workload::Scenario;

const TOPOLOGY_SEED: u64 = 5;
const ARRIVAL_SEED: u64 = 42;
/// Virtual run length.
const HORIZON_US: u64 = 30_000_000;
/// Arrivals stop 5 virtual seconds before the horizon so the tail can
/// drain.
const ARRIVAL_HORIZON_US: u64 = 25_000_000;
/// Long holds — 6–12 s against a 4 s buffer — so sag windows land
/// mid-stream and outlast the startup credit.
const HOLD_RANGE_US: (u64, u64) = (6_000_000, 12_000_000);
/// Per-session full-quality bitrate demand, bits per second (see X17).
const DEMAND_RANGE_BPS: (u64, u64) = (1_000, 4_000);
/// Session opens per virtual second (mean concurrency ≈ rate × 9 s).
const ARRIVAL_RATE_PER_SEC: u64 = 2;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const CHAOS: [&str; 2] = ["calm", "grey"];
const DETECTORS: [&str; 3] = ["off", "binary", "drift"];

/// Deterministic sag windows `(start_us, end_us, throughput_permille)`
/// applied to every member serving the nominal chain. 100‰ means the
/// sick members deliver a tenth of advertised — the buffer drains at
/// 0.9× real time, far faster than BOLA's ladder can absorb, while
/// every liveness check stays green.
fn sag_windows(chaos: &str) -> &'static [(u64, u64, u16)] {
    match chaos {
        "calm" => &[],
        "grey" => &[(3_000_000, 11_000_000, 100), (16_000_000, 24_000_000, 100)],
        other => panic!("unknown chaos {other}"),
    }
}

/// The sagging share of the horizon — the scalar the JSON reports as
/// the cell's intensity.
fn sag_fraction(chaos: &str) -> f64 {
    let busy: u64 = sag_windows(chaos).iter().map(|(s, e, _)| e - s).sum();
    busy as f64 / HORIZON_US as f64
}

fn generator_config() -> GeneratorConfig {
    GeneratorConfig {
        services_per_layer: 5,
        multi_axis: true,
        ..GeneratorConfig::default()
    }
}

/// The steady-state-scorecard mesh with the strict user (12 fps floor,
/// weight 3) — identical to X17 so the two scorecards compare.
fn strict_scenario() -> Scenario {
    let mut scenario = random_scenario(&generator_config(), TOPOLOGY_SEED);
    scenario.profiles.user.satisfaction = SatisfactionProfile::new()
        .with(AxisPreference::weighted(
            Axis::FrameRate,
            SatisfactionFn::Linear {
                min_acceptable: 12.0,
                ideal: 30.0,
            },
            3.0,
        ))
        .with(AxisPreference::weighted(
            Axis::PixelCount,
            SatisfactionFn::Linear {
                min_acceptable: 0.0,
                ideal: 307_200.0,
            },
            1.0,
        ));
    scenario
}

fn session_pattern() -> SessionPattern {
    SessionPattern {
        arrivals: ArrivalPattern {
            horizon_us: ARRIVAL_HORIZON_US,
            rate_per_sec: ARRIVAL_RATE_PER_SEC,
            ..ArrivalPattern::default()
        },
        hold_range_us: HOLD_RANGE_US,
        demand_range_bps: DEMAND_RANGE_BPS,
    }
}

fn sla_config(detector: &str) -> Option<SlaConfig> {
    match detector {
        "off" => None,
        "binary" => Some(SlaConfig {
            mode: SlaMode::Binary,
            ..SlaConfig::default()
        }),
        "drift" => Some(SlaConfig::default()),
        other => panic!("unknown detector {other}"),
    }
}

fn engine_config(detector: &str, workers: usize) -> SessionEngineConfig {
    SessionEngineConfig {
        resilient: ResilientEngineConfig {
            workers,
            ..ResilientEngineConfig::default()
        },
        // No admission queue: the sweep isolates detection; X16 already
        // covers admission interplay.
        admission: None,
        tick_us: 250_000,
        max_recompositions: 8,
        horizon_us: Some(HORIZON_US),
        session_spans: true,
        // Every cell streams through the BOLA buffer model so rebuffer
        // time is the common currency the detectors are judged in.
        abr: Some(AbrConfig::with_mode(AbrMode::Bola)),
        sla: sla_config(detector),
    }
}

/// FNV-1a over the rendered report: every worker count must agree on
/// it byte for byte.
struct Digest(u64);

impl Digest {
    fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, text: &str) {
        for byte in text.bytes().chain(std::iter::once(0x1e)) {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

fn report_digest(report: &SessionsReport) -> u64 {
    let mut digest = Digest::new();
    for outcome in &report.outcomes {
        digest.update(&format!("{outcome:?}"));
    }
    digest.update(&format!("{:?}", report.counters));
    digest.update(&format!("end={}", report.end_us));
    digest.0
}

/// Per-session delivered satisfaction: composed satisfaction per
/// active µs, discounted by the stalled share of playback.
fn delivered_ratios(report: &SessionsReport) -> Vec<f64> {
    report
        .outcomes
        .iter()
        .filter_map(|o| {
            let active = o.active_us();
            if active == 0 {
                return None;
            }
            let playing = active.saturating_sub(o.rebuffer_us) as f64 / active as f64;
            Some((o.satisfaction_us / active as f64) * playing)
        })
        .collect()
}

/// 5th percentile by sorted rank — deterministic, no interpolation.
fn p5(mut ratios: Vec<f64>) -> f64 {
    if ratios.is_empty() {
        return 0.0;
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    ratios[(ratios.len() - 1) * 5 / 100]
}

fn run_once(detector: &str, chaos: &str, workers: usize) -> SessionsReport {
    // The world is stateful (grey windows, discovery, probation), so
    // every run gets a fresh copy of the *same* seeded scenario.
    let scenario = strict_scenario();
    // Compose the nominal chain once to learn which members serve it:
    // those are the ones the grey windows make sick. Member index =
    // position in `live_services()` order, which is join order below.
    let nominal = scenario
        .compose(&SelectOptions::default())
        .expect("the seeded scenario composes")
        .plan
        .expect("the strict mesh has a feasible chain");
    let sick_members: Vec<usize> = nominal
        .steps
        .iter()
        .filter_map(|s| s.service)
        .map(|id| {
            scenario
                .services
                .live_services()
                .position(|(live, _)| live == id)
                .expect("a composed service is live")
        })
        .collect();
    assert!(
        !sick_members.is_empty(),
        "the nominal chain rides at least one transcoder"
    );
    let descriptors: Vec<_> = scenario
        .services
        .live_services()
        .map(|(_, d)| d.clone())
        .collect();
    let mut world = ChaosWorld::new(
        &scenario.formats,
        scenario.network,
        DiscoveryConfig::default(),
    );
    for descriptor in descriptors {
        world.join(descriptor);
    }
    for &(start, end, permille) in sag_windows(chaos) {
        for &index in &sick_members {
            world.schedule_action(
                start,
                ChaosAction::SagMember {
                    index,
                    throughput_permille: permille,
                },
            );
            world.schedule_action(end, ChaosAction::UnsagMember(index));
        }
    }

    let requests: Vec<SessionRequest> = session_arrivals(&session_pattern(), ARRIVAL_SEED)
        .into_iter()
        .map(|sa| SessionRequest {
            request: CompositionRequest {
                profiles: scenario.profiles.clone(),
                sender_host: scenario.sender_host,
                receiver_host: scenario.receiver_host,
            },
            arrival: sa.meta,
            hold_us: sa.hold_us,
            demand_bps: sa.demand_bps,
        })
        .collect();

    run_sessions(
        &mut world,
        &requests,
        &engine_config(detector, workers),
        &qosc_telemetry::NoopSink,
    )
}

struct Cell {
    chaos: &'static str,
    intensity: f64,
    detector: &'static str,
    offered: usize,
    completed: usize,
    starved: usize,
    recompositions: u64,
    switches: u64,
    evasions: u64,
    sla_violations: u64,
    rebuffer_us: u64,
    rebuffer_ratio: f64,
    p5_satisfaction: f64,
    availability: f64,
    digest: u64,
}

fn run_cell(chaos: &'static str, detector: &'static str) -> Cell {
    let mut reference: Option<(u64, SessionsReport)> = None;
    for &workers in &WORKER_COUNTS {
        let report = run_once(detector, chaos, workers);
        let digest = report_digest(&report);
        match &reference {
            None => reference = Some((digest, report)),
            Some((expected, _)) => assert_eq!(
                digest, *expected,
                "{chaos} × {detector}: workers={workers} diverged from workers=1"
            ),
        }
    }
    let (digest, report) = reference.expect("at least one worker count runs");
    Cell {
        chaos,
        intensity: sag_fraction(chaos),
        detector,
        offered: report.counters.offered,
        completed: report.counters.completed,
        starved: report.counters.starved,
        recompositions: report.recompositions(),
        switches: report.switches(),
        evasions: report.evasions(),
        sla_violations: report.sla_violations(),
        rebuffer_us: report.rebuffer_us(),
        rebuffer_ratio: report.rebuffer_ratio(),
        p5_satisfaction: p5(delivered_ratios(&report)),
        availability: report.availability(),
        digest,
    }
}

fn cell<'a>(cells: &'a [Cell], chaos: &str, detector: &str) -> &'a Cell {
    cells
        .iter()
        .find(|c| c.chaos == chaos && c.detector == detector)
        .expect("swept cell")
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_grey.json".to_string());
    let deterministic = std::env::args().nth(2).as_deref() == Some("--deterministic");

    println!(
        "X18 — grey-failure detection scorecard (topology seed {TOPOLOGY_SEED}, arrival seed \
         {ARRIVAL_SEED}, horizon {}s, chain-member sag schedule, workers {WORKER_COUNTS:?})",
        HORIZON_US / 1_000_000
    );
    println!();

    let mut cells: Vec<Cell> = Vec::new();
    for &chaos in &CHAOS {
        for &detector in &DETECTORS {
            cells.push(run_cell(chaos, detector));
        }
    }

    let mut table = TextTable::new([
        "chaos",
        "detector",
        "offered",
        "completed",
        "violations",
        "evasions",
        "switches",
        "rebuf ms",
        "rebuf ratio",
        "p5 satisf",
        "avail",
    ]);
    for c in &cells {
        table.row([
            c.chaos.to_string(),
            c.detector.to_string(),
            c.offered.to_string(),
            c.completed.to_string(),
            c.sla_violations.to_string(),
            c.evasions.to_string(),
            c.switches.to_string(),
            (c.rebuffer_us / 1_000).to_string(),
            format!("{:.4}", c.rebuffer_ratio),
            format!("{:.4}", c.p5_satisfaction),
            format!("{:.4}", c.availability),
        ]);
    }
    println!("{}", table.render());

    // Do-no-harm at calm: with nothing to detect, all three modes are
    // bit-identical — the estimators observe nominal QoS, never flag,
    // and touch nothing.
    let calm_off = cell(&cells, "calm", "off");
    for detector in ["binary", "drift"] {
        let c = cell(&cells, "calm", detector);
        assert_eq!(
            c.digest, calm_off.digest,
            "calm × {detector} must be bit-identical to detection-off"
        );
    }

    // The grey-failure headline.
    let grey_off = cell(&cells, "grey", "off");
    let grey_binary = cell(&cells, "grey", "binary");
    let grey_drift = cell(&cells, "grey", "drift");
    assert!(
        grey_off.rebuffer_ratio > calm_off.rebuffer_ratio,
        "the sag windows must starve undetected sessions: grey {:.6} vs calm {:.6}",
        grey_off.rebuffer_ratio,
        calm_off.rebuffer_ratio
    );
    // A grey fault never kills a plan, so the binary breaker has
    // nothing to see: its run is bit-identical to no detection at all.
    assert_eq!(
        grey_binary.digest, grey_off.digest,
        "the binary breaker must be provably blind to grey faults"
    );
    assert_eq!(grey_binary.sla_violations, 0);
    assert_eq!(grey_binary.evasions, 0);
    // Availability stays green everywhere — grey failure is invisible
    // to liveness, and drift's evasions are make-before-break.
    for c in [grey_off, grey_binary, grey_drift] {
        assert!(
            c.availability > 0.999,
            "{} × {}: grey faults must not dent availability, got {:.6}",
            c.chaos,
            c.detector,
            c.availability
        );
    }
    // The drift-aware engine detects, probates, evades — and both
    // QoE columns recover.
    assert!(
        grey_drift.sla_violations > 0 && grey_drift.evasions > 0,
        "drift must flag the sagging chain and evade: {} violations, {} evasions",
        grey_drift.sla_violations,
        grey_drift.evasions
    );
    assert!(
        grey_drift.rebuffer_ratio < grey_off.rebuffer_ratio,
        "drift must strictly cut the rebuffer ratio vs no detection: {:.6} vs {:.6}",
        grey_drift.rebuffer_ratio,
        grey_off.rebuffer_ratio
    );
    assert!(
        grey_drift.p5_satisfaction > grey_off.p5_satisfaction
            && grey_drift.p5_satisfaction > grey_binary.p5_satisfaction,
        "drift must lift p5 delivered satisfaction: drift {:.6} vs off {:.6} / binary {:.6}",
        grey_drift.p5_satisfaction,
        grey_off.p5_satisfaction,
        grey_binary.p5_satisfaction
    );
    println!(
        "grey check: rebuffer drift {:.4} < off {:.4}; p5 satisfaction drift {:.4} > off {:.4}; \
         binary digest == off digest (blind breaker)",
        grey_drift.rebuffer_ratio,
        grey_off.rebuffer_ratio,
        grey_drift.p5_satisfaction,
        grey_off.p5_satisfaction
    );

    let config = generator_config();
    let estimator = QosEstimatorConfig::default();
    let sla = SlaConfig::default();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"grey_failure\",\n");
    json.push_str(&format!(
        "  \"scenario\": {{\"topology_seed\": {TOPOLOGY_SEED}, \"layers\": {}, \"services_per_layer\": {}, \"formats_per_layer\": {}, \"multi_axis\": true, \"fps_floor\": 12.0}},\n",
        config.layers, config.services_per_layer, config.formats_per_layer
    ));
    json.push_str(&format!(
        "  \"run\": {{\"arrival_seed\": {ARRIVAL_SEED}, \"horizon_us\": {HORIZON_US}, \"hold_range_us\": [{}, {}], \"demand_range_bps\": [{}, {}], \"rate_per_sec\": {ARRIVAL_RATE_PER_SEC}, \"tick_us\": 250000, \"max_recompositions\": 8}},\n",
        HOLD_RANGE_US.0, HOLD_RANGE_US.1, DEMAND_RANGE_BPS.0, DEMAND_RANGE_BPS.1
    ));
    json.push_str("  \"sag_windows\": {");
    for (i, chaos) in CHAOS.iter().enumerate() {
        let windows = sag_windows(chaos)
            .iter()
            .map(|(s, e, p)| format!("[{s}, {e}, {p}]"))
            .collect::<Vec<_>>()
            .join(", ");
        json.push_str(&format!(
            "\"{chaos}\": [{windows}]{}",
            if i + 1 == CHAOS.len() { "" } else { ", " }
        ));
    }
    json.push_str("},\n");
    json.push_str(&format!(
        "  \"sla\": {{\"ewma_shift\": {}, \"window\": {}, \"quantile_permille\": {}, \"throughput_tolerance_ppm\": {}, \"latency_tolerance_ppm\": {}, \"dwell_us\": {}, \"min_samples\": {}, \"evade_dwell_us\": {}}},\n",
        estimator.ewma_shift,
        estimator.window,
        estimator.quantile_permille,
        estimator.throughput_tolerance_ppm,
        estimator.latency_tolerance_ppm,
        estimator.dwell_us,
        estimator.min_samples,
        sla.evade_dwell_us
    ));
    json.push_str(&format!(
        "  \"workers_verified\": [{}],\n",
        WORKER_COUNTS
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!("  \"deterministic\": {deterministic},\n"));
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"chaos\": \"{}\", \"intensity\": {:.2}, \"detector\": \"{}\", \"offered\": {}, \"completed\": {}, \"starved\": {}, \"recompositions\": {}, \"switches\": {}, \"evasions\": {}, \"sla_violations\": {}, \"rebuffer_us\": {}, \"rebuffer_ratio\": {:.6}, \"p5_satisfaction\": {:.6}, \"availability\": {:.6}, \"digest\": \"{:016x}\"}}{}\n",
            c.chaos,
            c.intensity,
            c.detector,
            c.offered,
            c.completed,
            c.starved,
            c.recompositions,
            c.switches,
            c.evasions,
            c.sla_violations,
            c.rebuffer_us,
            c.rebuffer_ratio,
            c.p5_satisfaction,
            c.availability,
            c.digest,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write scorecard");
    println!("wrote {out_path}");
}
