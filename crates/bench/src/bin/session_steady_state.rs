//! X16 — the steady-state session scorecard: offered session load ×
//! chaos intensity.
//!
//! Sweeps an open-loop stream of long-lived sessions
//! ([`session_arrivals`]) over the strict 12 fps mesh at three target
//! concurrencies, under the deterministic chaos generator
//! ([`ChaosPlan`]) at three intensities, serving each cell through the
//! continuous session engine ([`run_sessions`]) on a [`ChaosWorld`]:
//! admission decides every session open and re-composition, progress
//! ticks detect plans broken by mid-session faults or lease expiry,
//! and each break re-composes on the surviving graph.
//!
//! Emits `BENCH_session.json` (first CLI argument overrides the path;
//! `--deterministic` as the second argument is accepted for CI parity
//! with the other scorecards — the file is always deterministic).
//! Every cell runs at 1/2/4/8 workers and the run digests must agree
//! byte for byte; the digest of the workers=1 run is what the file
//! records.
//!
//! Expected shape: at calm intensity availability is ~1 and nothing
//! re-composes. As intensity rises, recompositions per session-hour
//! climb and availability dips by the (virtual) dark time between a
//! break and its repair; heavier offered load adds admission shedding
//! on top. Satisfaction degrades gracefully — the p5 session tracks
//! the brown-out ladder, not zero.

use qosc_bench::TextTable;
use qosc_core::{
    run_sessions, AdmissionConfig, CompositionRequest, ResilientEngineConfig, SessionEngineConfig,
    SessionRequest, SessionsReport,
};
use qosc_media::Axis;
use qosc_pipeline::{ChaosModel, ChaosPlan, ChaosWorld};
use qosc_satisfaction::{AxisPreference, SatisfactionFn, SatisfactionProfile};
use qosc_services::{DiscoveryConfig, TranscoderDescriptor};
use qosc_workload::arrivals::{session_arrivals, ArrivalPattern, SessionPattern};
use qosc_workload::generator::{random_scenario, GeneratorConfig};
use qosc_workload::Scenario;

const TOPOLOGY_SEED: u64 = 5;
const ARRIVAL_SEED: u64 = 42;
const CHAOS_SEED: u64 = 11;
/// Virtual run length; matches the chaos model's default horizon.
const HORIZON_US: u64 = 30_000_000;
/// Arrivals stop 5 virtual seconds before the horizon so the tail can
/// drain; sessions still open then are censored as `active_at_end`.
const ARRIVAL_HORIZON_US: u64 = 25_000_000;
/// Session holding times: 0.5–1.5 s, mean 1 s, so the target mean
/// concurrency equals the arrival rate (Little's law).
const HOLD_RANGE_US: (u64, u64) = (500_000, 1_500_000);
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Offered load as target mean concurrent sessions.
const LOADS: [(&str, u64); 3] = [("light", 2), ("busy", 6), ("heavy", 16)];
const INTENSITIES: [(&str, f64); 3] = [("calm", 0.0), ("gusty", 0.5), ("storm", 1.0)];
const VIRTUAL_CORES: u32 = 4;

fn generator_config() -> GeneratorConfig {
    GeneratorConfig {
        services_per_layer: 5,
        multi_axis: true,
        ..GeneratorConfig::default()
    }
}

/// The overload-scorecard mesh with the strict user (12 fps floor,
/// weight 3) — degradation visibly rescores what it serves.
fn strict_scenario() -> Scenario {
    let mut scenario = random_scenario(&generator_config(), TOPOLOGY_SEED);
    scenario.profiles.user.satisfaction = SatisfactionProfile::new()
        .with(AxisPreference::weighted(
            Axis::FrameRate,
            SatisfactionFn::Linear {
                min_acceptable: 12.0,
                ideal: 30.0,
            },
            3.0,
        ))
        .with(AxisPreference::weighted(
            Axis::PixelCount,
            SatisfactionFn::Linear {
                min_acceptable: 0.0,
                ideal: 307_200.0,
            },
            1.0,
        ));
    scenario
}

fn session_pattern(concurrency: u64) -> SessionPattern {
    SessionPattern {
        arrivals: ArrivalPattern {
            horizon_us: ARRIVAL_HORIZON_US,
            rate_per_sec: concurrency,
            ..ArrivalPattern::default()
        },
        hold_range_us: HOLD_RANGE_US,
        demand_range_bps: (0, 0),
    }
}

fn engine_config(workers: usize) -> SessionEngineConfig {
    SessionEngineConfig {
        resilient: ResilientEngineConfig {
            workers,
            ..ResilientEngineConfig::default()
        },
        admission: Some(AdmissionConfig {
            virtual_cores: VIRTUAL_CORES,
            initial_limit: VIRTUAL_CORES,
            max_limit: 8,
            ..AdmissionConfig::protected()
        }),
        tick_us: 250_000,
        max_recompositions: 8,
        horizon_us: Some(HORIZON_US),
        session_spans: true,
        abr: None,
        sla: None,
    }
}

/// FNV-1a over the rendered report: every worker count must agree on
/// it byte for byte.
struct Digest(u64);

impl Digest {
    fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, text: &str) {
        for byte in text.bytes().chain(std::iter::once(0x1e)) {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

fn report_digest(report: &SessionsReport) -> u64 {
    let mut digest = Digest::new();
    for outcome in &report.outcomes {
        digest.update(&format!("{outcome:?}"));
    }
    digest.update(&format!("{:?}", report.counters));
    digest.update(&format!("{:?}", report.admission));
    digest.update(&format!("end={}", report.end_us));
    digest.0
}

fn run_once(concurrency: u64, intensity: f64, workers: usize) -> SessionsReport {
    // The world is stateful (faults, lease churn), so every run gets a
    // fresh copy of the *same* seeded scenario.
    let scenario = strict_scenario();
    let chaos = {
        let topology = scenario.network.topology();
        let backbone = topology
            .node_by_name("backbone")
            .expect("generated meshes have a backbone");
        let model = ChaosModel {
            protect: vec![scenario.sender_host, scenario.receiver_host, backbone],
            ..ChaosModel::default()
        };
        ChaosPlan::generate(
            topology,
            scenario.services.live_count(),
            &model,
            CHAOS_SEED,
            intensity,
        )
    };
    let descriptors: Vec<TranscoderDescriptor> = scenario
        .services
        .live_services()
        .map(|(_, d)| d.clone())
        .collect();
    let mut world = ChaosWorld::new(
        &scenario.formats,
        scenario.network,
        DiscoveryConfig::default(),
    );
    for descriptor in descriptors {
        world.join(descriptor);
    }
    world.load_plan(&chaos);

    let requests: Vec<SessionRequest> =
        session_arrivals(&session_pattern(concurrency), ARRIVAL_SEED)
            .into_iter()
            .map(|sa| SessionRequest {
                request: CompositionRequest {
                    profiles: scenario.profiles.clone(),
                    sender_host: scenario.sender_host,
                    receiver_host: scenario.receiver_host,
                },
                arrival: sa.meta,
                hold_us: sa.hold_us,
                demand_bps: sa.demand_bps,
            })
            .collect();

    run_sessions(
        &mut world,
        &requests,
        &engine_config(workers),
        &qosc_telemetry::NoopSink,
    )
}

struct Cell {
    load: &'static str,
    concurrency: u64,
    intensity_label: &'static str,
    intensity: f64,
    offered: usize,
    opened: usize,
    completed: usize,
    shed: usize,
    starved: usize,
    gave_up: usize,
    failed_open: usize,
    active_at_end: usize,
    recompositions: u64,
    availability: f64,
    mean_satisfaction: f64,
    p5_satisfaction: f64,
    recompositions_per_session_hour: f64,
    digest: u64,
}

fn run_cell(
    load: &'static str,
    concurrency: u64,
    intensity_label: &'static str,
    intensity: f64,
) -> Cell {
    let mut reference: Option<(u64, SessionsReport)> = None;
    for &workers in &WORKER_COUNTS {
        let report = run_once(concurrency, intensity, workers);
        let digest = report_digest(&report);
        match &reference {
            None => reference = Some((digest, report)),
            Some((expected, _)) => assert_eq!(
                digest, *expected,
                "load {load} × {intensity_label}: workers={workers} diverged from workers=1"
            ),
        }
    }
    let (digest, report) = reference.expect("at least one worker count runs");

    // Per-session mean satisfaction over sessions that streamed at all.
    let mut sats: Vec<f64> = report
        .outcomes
        .iter()
        .filter(|o| o.active_us() > 0)
        .map(|o| o.mean_satisfaction())
        .collect();
    sats.sort_by(|a, b| a.partial_cmp(b).expect("satisfaction is finite"));
    let mean_satisfaction = if sats.is_empty() {
        0.0
    } else {
        sats.iter().sum::<f64>() / sats.len() as f64
    };
    let p5_satisfaction = if sats.is_empty() {
        0.0
    } else {
        sats[(sats.len() * 5) / 100]
    };

    Cell {
        load,
        concurrency,
        intensity_label,
        intensity,
        offered: report.counters.offered,
        opened: report.counters.opened,
        completed: report.counters.completed,
        shed: report.counters.shed,
        starved: report.counters.starved,
        gave_up: report.counters.gave_up,
        failed_open: report.counters.failed_open,
        active_at_end: report.counters.active_at_end,
        recompositions: report.recompositions(),
        availability: report.availability(),
        mean_satisfaction,
        p5_satisfaction,
        recompositions_per_session_hour: report.recompositions_per_session_hour(),
        digest,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_session.json".to_string());
    let deterministic = std::env::args().nth(2).as_deref() == Some("--deterministic");

    println!(
        "X16 — steady-state session scorecard (topology seed {TOPOLOGY_SEED}, arrival seed \
         {ARRIVAL_SEED}, chaos seed {CHAOS_SEED}, horizon {}s, workers {WORKER_COUNTS:?})",
        HORIZON_US / 1_000_000
    );
    println!();

    let mut cells: Vec<Cell> = Vec::new();
    for &(load, concurrency) in &LOADS {
        for &(intensity_label, intensity) in &INTENSITIES {
            cells.push(run_cell(load, concurrency, intensity_label, intensity));
        }
    }

    let mut table = TextTable::new([
        "load",
        "chaos",
        "offered",
        "opened",
        "completed",
        "shed",
        "recomp",
        "avail",
        "sat mean",
        "sat p5",
        "recomp/h",
    ]);
    for c in &cells {
        table.row([
            c.load.to_string(),
            c.intensity_label.to_string(),
            c.offered.to_string(),
            c.opened.to_string(),
            c.completed.to_string(),
            c.shed.to_string(),
            c.recompositions.to_string(),
            format!("{:.4}", c.availability),
            format!("{:.3}", c.mean_satisfaction),
            format!("{:.3}", c.p5_satisfaction),
            format!("{:.1}", c.recompositions_per_session_hour),
        ]);
    }
    println!("{}", table.render());

    let config = generator_config();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"session_steady_state\",\n");
    json.push_str(&format!(
        "  \"scenario\": {{\"topology_seed\": {TOPOLOGY_SEED}, \"layers\": {}, \"services_per_layer\": {}, \"formats_per_layer\": {}, \"multi_axis\": true, \"fps_floor\": 12.0}},\n",
        config.layers, config.services_per_layer, config.formats_per_layer
    ));
    json.push_str(&format!(
        "  \"run\": {{\"arrival_seed\": {ARRIVAL_SEED}, \"chaos_seed\": {CHAOS_SEED}, \"horizon_us\": {HORIZON_US}, \"hold_range_us\": [{}, {}], \"tick_us\": 250000, \"max_recompositions\": 8, \"virtual_cores\": {VIRTUAL_CORES}}},\n",
        HOLD_RANGE_US.0, HOLD_RANGE_US.1
    ));
    json.push_str(&format!(
        "  \"workers_verified\": [{}],\n",
        WORKER_COUNTS
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!("  \"deterministic\": {deterministic},\n"));
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"load\": \"{}\", \"concurrency\": {}, \"chaos\": \"{}\", \"intensity\": {:.2}, \"offered\": {}, \"opened\": {}, \"completed\": {}, \"shed\": {}, \"starved\": {}, \"gave_up\": {}, \"failed_open\": {}, \"active_at_end\": {}, \"recompositions\": {}, \"availability\": {:.6}, \"mean_satisfaction\": {:.6}, \"p5_satisfaction\": {:.6}, \"recompositions_per_session_hour\": {:.6}, \"digest\": \"{:016x}\"}}{}\n",
            c.load,
            c.concurrency,
            c.intensity_label,
            c.intensity,
            c.offered,
            c.opened,
            c.completed,
            c.shed,
            c.starved,
            c.gave_up,
            c.failed_open,
            c.active_at_end,
            c.recompositions,
            c.availability,
            c.mean_satisfaction,
            c.p5_satisfaction,
            c.recompositions_per_session_hour,
            c.digest,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write scorecard");
    println!("wrote {out_path}");
}
