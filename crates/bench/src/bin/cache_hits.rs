//! X9 — composition caching at a proxy front-end (motivated by the
//! paper's reference [7], Chang & Chen's trans-coding proxy caches):
//! replay a skewed request stream with and without the
//! [`CompositionCache`](qosc_core::CompositionCache), under light
//! service churn so cached chains occasionally go stale.
//!
//! ```text
//! cargo run -p qosc-bench --release --bin cache_hits
//! ```

use qosc_bench::TextTable;
use qosc_core::{Composer, CompositionCache, SelectOptions};
use qosc_media::FormatRegistry;
use qosc_netsim::{Network, Node, SimTime, Topology};
use qosc_profiles::{
    ContentProfile, ContextProfile, DeviceProfile, HardwareCaps, NetworkProfile, ProfileSet,
    UserProfile,
};
use qosc_services::{catalog, ServiceRegistry, TranscoderDescriptor};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

const REQUESTS: usize = 400;
const LEASE_TTL_SECS: u64 = 20;

fn main() {
    println!("X9 — composition caching under a skewed request stream with churn");
    println!();

    let mut table = TextTable::new([
        "churn/request",
        "hit rate",
        "stale",
        "uncached (ms total)",
        "cached (ms total)",
        "speedup",
    ]);
    for &churn in &[0.0f64, 0.01, 0.05] {
        let (uncached_ms, _, _) = replay(churn, false);
        let (cached_ms, hit_rate, stale) = replay(churn, true);
        table.row([
            format!("{:.0}%", churn * 100.0),
            format!("{:.1}%", hit_rate * 100.0),
            stale.to_string(),
            format!("{uncached_ms:.1}"),
            format!("{cached_ms:.1}"),
            format!("{:.1}×", uncached_ms / cached_ms.max(0.001)),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!(
        "Expected shape: the request mix is dominated by a few popular \
         (content, device) classes, so the cache answers most requests \
         after one cold composition each; churn converts some hits into \
         revalidation failures (stale → recompose) but never serves a \
         chain through a dead service — staleness is checked against the \
         live registry and network on every hit."
    );
}

/// Eight request classes with a skewed popularity (class 0 is ~40 % of
/// traffic).
fn request_class(i: usize) -> ProfileSet {
    let devices = [
        DeviceProfile::demo_pda(),
        DeviceProfile::new(
            "desktop",
            vec!["video/mpeg1".to_string(), "video/h263".to_string()],
            HardwareCaps::desktop(),
        ),
    ];
    let users = ["alice", "bob", "carol", "dave"];
    ProfileSet {
        user: UserProfile::demo(users[i % users.len()]),
        content: ContentProfile::demo_video(if i < 4 {
            "headline-video"
        } else {
            "archive-clip"
        }),
        device: devices[i % devices.len()].clone(),
        context: ContextProfile::default(),
        network: NetworkProfile::broadband(),
    }
}

fn replay(churn_per_request: f64, use_cache: bool) -> (f64, f64, usize) {
    let formats = FormatRegistry::with_builtins();
    let mut topo = Topology::new();
    let server = topo.add_node(Node::unconstrained("server"));
    let proxy_a = topo.add_node(Node::unconstrained("proxy-a"));
    let proxy_b = topo.add_node(Node::unconstrained("proxy-b"));
    let client = topo.add_node(Node::unconstrained("client"));
    for &p in &[proxy_a, proxy_b] {
        topo.connect_simple(server, p, 100e6).unwrap();
        topo.connect_simple(p, client, 2e6).unwrap();
    }
    let network = Network::new(topo);

    let mut services = ServiceRegistry::new();
    let specs = catalog::full_catalog();
    let mut instance_of: Vec<(usize, qosc_netsim::NodeId)> = Vec::new();
    for &p in &[proxy_a, proxy_b] {
        for (si, spec) in specs.iter().enumerate() {
            services.register(
                TranscoderDescriptor::resolve(spec, &formats, p).unwrap(),
                SimTime::ZERO,
                LEASE_TTL_SECS * 1_000_000,
            );
            instance_of.push((si, p));
        }
    }

    let mut rng = SmallRng::seed_from_u64(99);
    let options = SelectOptions {
        record_trace: false,
        ..SelectOptions::default()
    };
    let mut cache = CompositionCache::new();
    let start = Instant::now();
    for request in 0..REQUESTS {
        let now = SimTime::from_secs(request as u64);
        // Churn: a random live service misses its renewal…
        let live: Vec<_> = services.live_services().map(|(id, _)| id).collect();
        for id in live {
            if churn_per_request > 0.0 && rng.random_range(0.0..1.0) < churn_per_request {
                let _ = services.renew(id, SimTime::ZERO, 1);
            } else {
                let _ = services.renew(id, now, LEASE_TTL_SECS * 1_000_000);
            }
        }
        let expired = services.expire_leases(now);
        // …and immediately re-registers (fresh proxy process).
        for _ in expired {
            let (si, p) = instance_of[rng.random_range(0..instance_of.len())];
            services.register(
                TranscoderDescriptor::resolve(&specs[si], &formats, p).unwrap(),
                now,
                LEASE_TTL_SECS * 1_000_000,
            );
        }

        // Skewed class choice: 40 % class 0, rest uniform.
        let class = if rng.random_range(0.0..1.0) < 0.4 {
            0
        } else {
            rng.random_range(1..8)
        };
        let profiles = request_class(class);
        let composer = Composer {
            formats: &formats,
            services: &services,
            network: &network,
        };
        let plan = if use_cache {
            cache
                .compose(&composer, &profiles, server, client, &options)
                .expect("composition runs")
        } else {
            composer
                .compose(&profiles, server, client, &options)
                .expect("composition runs")
                .plan
        };
        assert!(
            plan.is_some(),
            "redundant proxies keep every class solvable"
        );
    }
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    let stats = cache.stats();
    (elapsed_ms, stats.hit_rate(), stats.stale)
}
