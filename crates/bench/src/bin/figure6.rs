//! E7 — regenerate **Figure 6**: the worked-example graph with the
//! selected path, with and without trans-coding service T7.
//!
//! ```text
//! cargo run -p qosc-bench --bin figure6
//! ```

use qosc_bench::sat2;
use qosc_core::graph::dot;
use qosc_core::SelectOptions;
use qosc_media::Axis;
use qosc_workload::paper;

fn run(include_t7: bool) -> (Vec<String>, f64, f64, String) {
    let scenario = paper::figure6_scenario(include_t7);
    let composition = scenario
        .compose(&SelectOptions::default())
        .expect("figure-6 scenario composes");
    let chain = composition.selection.chain.expect("receiver reachable");
    let names: Vec<String> = chain.names().iter().map(|s| s.to_string()).collect();
    let fps = chain
        .steps
        .last()
        .unwrap()
        .params
        .get(Axis::FrameRate)
        .unwrap_or(0.0);
    let dot_text =
        dot::to_dot(&composition.graph, &scenario.formats, &names).expect("graph renders");
    (names, fps, chain.satisfaction, dot_text)
}

fn main() {
    println!("E7 — Figure 6: selected path with and without trans-coding service T7");
    println!();

    let (with_names, with_fps, with_sat, with_dot) = run(true);
    println!(
        "with T7   : {}  @ {:.1} fps, satisfaction {}  (paper: sender,T7,receiver @ 20 fps, 0.66)",
        with_names.join(" → "),
        with_fps,
        sat2(with_sat)
    );

    let (without_names, without_fps, without_sat, _) = run(false);
    println!(
        "without T7: {}  @ {:.1} fps, satisfaction {}  (degraded fallback over the 18 kbit/s link)",
        without_names.join(" → "),
        without_fps,
        sat2(without_sat)
    );
    println!();
    println!(
        "T7's presence is worth {} satisfaction to this user.",
        sat2(with_sat - without_sat)
    );
    println!();
    println!("DOT of the full Figure-6 graph (selected path highlighted):");
    print!("{with_dot}");
}
