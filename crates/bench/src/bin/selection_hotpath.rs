//! X15: the selection hot path — incremental graph store vs
//! rebuild-per-request.
//!
//! Sweeps registry churn rate × request repeat rate and serves every
//! request twice in the same run: once through a store-backed
//! [`ShardedCompositionCache`] (graph reuse + delta maintenance) and
//! once through a store-free cache (the historical rebuild-per-compose
//! path). Reports per-request compose p50/p99 for both paths, the
//! store's rebuild/delta/reuse counters, the arena-reuse count of the
//! zero-allocation selection kernel, and — the point of the exercise —
//! asserts the two paths produce **bitwise-identical plans** and
//! identical hit/miss/stale classification, then repeats the identity
//! assertion across 1/2/4/8 workers.
//!
//! Output goes to `BENCH_hotpath.json` (first CLI argument overrides
//! the path). Passing `--deterministic` as the second argument omits
//! every timing-derived field so two runs of the bin produce
//! byte-identical files — the CI smoke step runs it twice and `cmp`s.

use qosc_bench::TextTable;
use qosc_core::{
    arena_reuse_total, serve_batch, AdaptationPlan, Composer, CompositionRequest, EngineConfig,
    SelectOptions, ShardedCompositionCache,
};
use qosc_netsim::SimTime;
use qosc_profiles::ProfileSet;
use qosc_services::QuarantineConfig;
use qosc_workload::generator::{random_scenario, GeneratorConfig};
use qosc_workload::Scenario;
use std::time::Instant;

const CHURN_RATES: [f64; 3] = [0.0, 0.05, 0.25];
const REPEAT_RATES: [f64; 2] = [0.0, 0.9];
const REQUESTS_PER_CELL: usize = 96;
const WORKERS: [usize; 4] = [1, 2, 4, 8];
const SEED: u64 = 7;

/// FNV-1a over the rendered plans: the digest two paths (or two worker
/// counts) must agree on byte for byte.
struct Digest(u64);

impl Digest {
    fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, text: &str) {
        for byte in text.bytes().chain(std::iter::once(0x1e)) {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// `n` profile sets with `repeat_rate` of them re-using an earlier
/// cache key (same construction as the throughput sweep).
fn profile_mix(scenario: &Scenario, n: usize, repeat_rate: f64) -> Vec<ProfileSet> {
    let distinct = ((n as f64) * (1.0 - repeat_rate)).ceil().max(1.0) as usize;
    (0..n)
        .map(|i| {
            let mut profiles = scenario.profiles.clone();
            profiles.user.name = format!("hotpath-user-{}", i % distinct);
            profiles
        })
        .collect()
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    let index = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[index]
}

struct PathStats {
    seconds: f64,
    p50_us: f64,
    p99_us: f64,
}

fn path_stats(latencies_us: &mut [f64]) -> PathStats {
    let seconds = latencies_us.iter().sum::<f64>() / 1e6;
    latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    PathStats {
        seconds,
        p50_us: percentile(latencies_us, 0.50),
        p99_us: percentile(latencies_us, 0.99),
    }
}

struct Cell {
    churn_rate: f64,
    repeat_rate: f64,
    requests: usize,
    solved: usize,
    churn_ops: usize,
    hits: usize,
    misses: usize,
    stale: usize,
    rebuilds: u64,
    deltas: u64,
    delta_ops: u64,
    reuses: u64,
    digest: u64,
    store: PathStats,
    baseline: PathStats,
}

/// Serve one cell sequentially, composing every request through both
/// caches and checking the plans agree bitwise.
fn run_cell(config: &GeneratorConfig, churn_rate: f64, repeat_rate: f64) -> Cell {
    let mut scenario = random_scenario(config, SEED);
    scenario.services.set_quarantine_config(QuarantineConfig {
        failure_threshold: 1,
        cooldown_us: 1_000_000,
    });
    let ids: Vec<_> = scenario
        .services
        .live_services()
        .map(|(id, _)| id)
        .collect();
    let profiles = profile_mix(&scenario, REQUESTS_PER_CELL, repeat_rate);
    let options = SelectOptions::default();

    let store_cache = ShardedCompositionCache::new(16);
    let base_cache = ShardedCompositionCache::new_without_graph_store(16);
    let mut store_latencies = Vec::with_capacity(profiles.len());
    let mut base_latencies = Vec::with_capacity(profiles.len());
    let mut digest = Digest::new();
    let mut solved = 0usize;
    let mut churn_ops = 0usize;
    let mut churn_due = 0.0f64;
    let mut now_us = 1_000u64;

    for profiles in &profiles {
        // Deterministic churn pacing: `churn_rate` ops per request on
        // average, alternating a threshold-1 quarantine with a release
        // far enough ahead that the breaker reopens.
        churn_due += churn_rate;
        while churn_due >= 1.0 {
            churn_due -= 1.0;
            now_us += 2_000_000;
            if churn_ops.is_multiple_of(2) {
                let id = ids[(churn_ops / 2) % ids.len()];
                let _ = scenario.services.report_failure(id, SimTime(now_us));
            } else {
                scenario.services.release_quarantines(SimTime(now_us));
            }
            churn_ops += 1;
        }
        let composer = Composer {
            formats: &scenario.formats,
            services: &scenario.services,
            network: &scenario.network,
        };

        let start = Instant::now();
        let via_store = store_cache
            .compose(
                &composer,
                profiles,
                scenario.sender_host,
                scenario.receiver_host,
                &options,
            )
            .expect("compose");
        store_latencies.push(start.elapsed().as_secs_f64() * 1e6);

        let start = Instant::now();
        let via_rebuild = base_cache
            .compose(
                &composer,
                profiles,
                scenario.sender_host,
                scenario.receiver_host,
                &options,
            )
            .expect("compose");
        base_latencies.push(start.elapsed().as_secs_f64() * 1e6);

        let rendered = format!("{via_store:?}");
        assert_eq!(
            rendered,
            format!("{via_rebuild:?}"),
            "store-backed and rebuild-per-request plans diverged"
        );
        digest.update(&rendered);
        if via_store.is_some() {
            solved += 1;
        }
    }

    let store_stats = store_cache.stats();
    assert_eq!(
        store_stats,
        base_cache.stats(),
        "epoch revalidation must not alter hit/miss/stale classification"
    );
    let graph = store_cache.graph_stats();
    Cell {
        churn_rate,
        repeat_rate,
        requests: profiles.len(),
        solved,
        churn_ops,
        hits: store_stats.hits,
        misses: store_stats.misses,
        stale: store_stats.stale,
        rebuilds: graph.rebuilds,
        deltas: graph.deltas,
        delta_ops: graph.delta_ops,
        reuses: graph.reuses,
        digest: digest.0,
        store: path_stats(&mut store_latencies),
        baseline: path_stats(&mut base_latencies),
    }
}

/// The cross-worker identity check: one repeat-heavy mix served by
/// `serve_batch` at each worker count, plans digested in request order.
fn worker_digests(config: &GeneratorConfig) -> u64 {
    let scenario = random_scenario(config, SEED);
    let profiles = profile_mix(&scenario, 64, 0.5);
    let requests: Vec<CompositionRequest> = profiles
        .into_iter()
        .map(|profiles| CompositionRequest {
            profiles,
            sender_host: scenario.sender_host,
            receiver_host: scenario.receiver_host,
        })
        .collect();
    let composer = scenario.composer();
    let digest_of = |plans: &[qosc_core::Result<Option<AdaptationPlan>>]| {
        let mut digest = Digest::new();
        for plan in plans {
            digest.update(&format!("{:?}", plan.as_ref().expect("compose")));
        }
        digest.0
    };

    let mut reference = None;
    for &workers in &WORKERS {
        let cache = ShardedCompositionCache::new(16);
        let engine = EngineConfig {
            workers,
            options: SelectOptions::default(),
        };
        let served = serve_batch(&composer, &cache, &requests, &engine);
        let digest = digest_of(&served);
        match reference {
            None => reference = Some(digest),
            Some(expected) => assert_eq!(
                digest, expected,
                "plans diverged between 1 and {workers} workers"
            ),
        }
    }
    // The rebuild-per-request path must land on the same bytes too.
    let cache = ShardedCompositionCache::new_without_graph_store(16);
    let engine = EngineConfig {
        workers: 1,
        options: SelectOptions::default(),
    };
    let served = serve_batch(&composer, &cache, &requests, &engine);
    let reference = reference.expect("at least one worker count");
    assert_eq!(
        digest_of(&served),
        reference,
        "rebuild-per-request batch diverged from store-backed batch"
    );
    reference
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_hotpath.json".to_string());
    let deterministic = std::env::args().nth(2).as_deref() == Some("--deterministic");
    // Single-conversion services keep the per-edge `Optimize()` cost
    // low, so graph construction — the work the store amortizes — is
    // the dominant share of a cold compose, as in a deep CDN-style
    // deployment with many single-purpose transcoders.
    let config = GeneratorConfig {
        layers: 5,
        services_per_layer: 12,
        formats_per_layer: 3,
        conversions_per_service: 1,
        ..GeneratorConfig::default()
    };

    // Warm-up so code pages and allocator state don't bill to the
    // first timed cell.
    let _ = run_cell(&config, 0.0, 0.0);

    let arena_before = arena_reuse_total();
    let mut cells = Vec::new();
    for &churn_rate in &CHURN_RATES {
        for &repeat_rate in &REPEAT_RATES {
            cells.push(run_cell(&config, churn_rate, repeat_rate));
        }
    }
    let arena_reuses = arena_reuse_total() - arena_before;
    let batch_digest = worker_digests(&config);

    let mut table = TextTable::new(vec![
        "churn",
        "repeat",
        "requests",
        "hits",
        "stale",
        "rebuilds",
        "deltas",
        "reuses",
        "store p50 us",
        "rebuild p50 us",
        "speedup",
    ]);
    for cell in &cells {
        table.row(vec![
            format!("{:.2}", cell.churn_rate),
            format!("{:.1}", cell.repeat_rate),
            cell.requests.to_string(),
            cell.hits.to_string(),
            cell.stale.to_string(),
            cell.rebuilds.to_string(),
            cell.deltas.to_string(),
            cell.reuses.to_string(),
            format!("{:.1}", cell.store.p50_us),
            format!("{:.1}", cell.baseline.p50_us),
            format!("{:.2}x", cell.baseline.seconds / cell.store.seconds),
        ]);
    }
    println!("{}", table.render());
    println!(
        "arena reuses: {arena_reuses}, batch digest: {batch_digest:016x}, \
         all plans bitwise identical across paths and 1/2/4/8 workers"
    );

    // The headline acceptance number: at zero churn, all-distinct
    // requests (every compose a miss), graph reuse must at least halve
    // the compose cost relative to rebuild-per-request.
    let headline = cells
        .iter()
        .find(|c| c.churn_rate == 0.0 && c.repeat_rate == 0.0)
        .expect("zero-churn cell");
    let speedup = headline.baseline.seconds / headline.store.seconds;
    if !deterministic {
        assert!(
            speedup >= 2.0,
            "expected >= 2x compose speedup at low churn, measured {speedup:.2}x"
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"selection_hotpath\",\n");
    json.push_str(&format!(
        "  \"scenario\": {{\"seed\": {SEED}, \"layers\": {}, \"services_per_layer\": {}, \"formats_per_layer\": {}}},\n",
        config.layers, config.services_per_layer, config.formats_per_layer
    ));
    json.push_str(&format!("  \"deterministic\": {deterministic},\n"));
    json.push_str(&format!("  \"arena_reuses\": {arena_reuses},\n"));
    json.push_str(&format!("  \"batch_digest\": \"{batch_digest:016x}\",\n"));
    json.push_str("  \"workers_checked\": [1, 2, 4, 8],\n");
    if !deterministic {
        json.push_str(&format!("  \"low_churn_speedup\": {speedup:.2},\n"));
    }
    json.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"churn_rate\": {:.2}, \"repeat_rate\": {:.1}, \"requests\": {}, \"solved\": {}, \"churn_ops\": {}, \"hits\": {}, \"misses\": {}, \"stale\": {}, \"rebuilds\": {}, \"deltas\": {}, \"delta_ops\": {}, \"reuses\": {}, \"plan_digest\": \"{:016x}\"",
            cell.churn_rate,
            cell.repeat_rate,
            cell.requests,
            cell.solved,
            cell.churn_ops,
            cell.hits,
            cell.misses,
            cell.stale,
            cell.rebuilds,
            cell.deltas,
            cell.delta_ops,
            cell.reuses,
            cell.digest,
        ));
        if !deterministic {
            json.push_str(&format!(
                ", \"store\": {{\"seconds\": {:.6}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}}, \"rebuild\": {{\"seconds\": {:.6}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}}, \"speedup\": {:.2}",
                cell.store.seconds,
                cell.store.p50_us,
                cell.store.p99_us,
                cell.baseline.seconds,
                cell.baseline.p50_us,
                cell.baseline.p99_us,
                cell.baseline.seconds / cell.store.seconds,
            ));
        }
        json.push_str(&format!(
            "}}{}\n",
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write summary");
    println!("wrote {out_path}");
}
