//! X19 — the cross-session bandwidth-broker scorecard: shared fat-tree
//! links × sharing policy × session scale.
//!
//! A k=4 fat-tree carries every session from one sender host through an
//! unconstrained transcoding proxy to receivers spread across the other
//! pods, so the sender-side access link is a genuine shared bottleneck.
//! Access capacity is dimensioned *per offered session*
//! ([`ACCESS_PER_SESSION_BPS`]), so every scale runs at the same
//! contention ratio and the sweep isolates how a sharing policy behaves
//! as the population grows. Each scale runs under three modes:
//!
//! * **none** — no broker attached: every session divides each link by
//!   the worst-hop shared-fate model of PR 7/8. A `baseline` shadow run
//!   that never even calls `set_sharing` must be bit-identical — the
//!   broker code path is provably cold when disabled,
//! * **fcfs** — the admission-order baseline: the broker grants each
//!   flow its guaranteed floor, then tops flows up to their caps in
//!   strict arrival order. Early sessions stream at full refill rate
//!   while the tail is pinned at its floor — p5 delivered satisfaction
//!   collapses,
//! * **maxmin** — deterministic weighted max-min water-filling:
//!   priority-weighted shares (weights 4/2/1 for interactive, standard
//!   and background) computed by iterative bottleneck freezing. The
//!   tail holds while aggregate delivery stays no worse than FCFS.
//!
//! Every cell runs at 1/2/4/8 workers and the digests must agree byte
//! for byte; grants react through the session engine's buffer model
//! (BOLA), so the scorecard's currency is *delivered* satisfaction —
//! composed satisfaction discounted by the stalled share of playback.
//!
//! Emits `BENCH_broker.json` (first CLI argument overrides the path;
//! `--deterministic` is accepted for CI parity — the file is always
//! deterministic). `--scales=100,1000` restricts the sweep for smoke
//! runs.

use qosc_bench::TextTable;
use qosc_core::{
    run_sessions, AbrConfig, AbrMode, CompositionRequest, ResilientEngineConfig,
    SessionEngineConfig, SessionRequest, SessionsReport,
};
use qosc_media::FormatRegistry;
use qosc_netsim::generators::{fat_tree, LinkTemplate};
use qosc_netsim::{Network, Node, NodeId};
use qosc_pipeline::{ChaosWorld, DeliveryCacheStats, SharingPolicy};
use qosc_profiles::{
    ContentProfile, ContextProfile, DeviceProfile, NetworkProfile, ProfileSet, UserProfile,
};
use qosc_services::{catalog, DiscoveryConfig, TranscoderDescriptor};
use qosc_workload::arrivals::{
    session_arrivals_with_mix, ArrivalPattern, DemandMix, SessionPattern,
};

const TOPOLOGY_SEED: u64 = 19;
const ARRIVAL_SEED: u64 = 42;
/// Virtual run length: arrivals stop at 4 s, holds drain by ~16 s.
const HORIZON_US: u64 = 16_000_000;
const ARRIVAL_HORIZON_US: u64 = 4_000_000;
/// Long holds against the 4 s arrival window, so nearly the whole
/// offered population is concurrent at peak.
const HOLD_RANGE_US: (u64, u64) = (8_000_000, 12_000_000);
/// Shared access capacity per offered session, bits per second — the
/// knob that keeps the contention ratio constant across scales. The
/// plan's raw sender-side rate is ~0.9 Mbps, so ~1.1 Mbps per session
/// funds everyone's real-time rate but not everyone's 2× refill cap:
/// the policies must ration.
const ACCESS_PER_SESSION_BPS: u64 = 1_100_000;
/// Fabric links are 4× the access link so the access tier is the
/// bottleneck (single-path routing concentrates sender-side flows).
const FABRIC_MULT: u64 = 4;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SCALES: [usize; 3] = [100, 1_000, 10_000];

/// The full worker sweep below 10k sessions; at 10k a run costs
/// minutes, so invariance is proven at the extremes only.
fn worker_counts(scale: usize) -> &'static [usize] {
    if scale >= 10_000 {
        &[1, 8]
    } else {
        &WORKER_COUNTS
    }
}

/// Per-class full-quality demand, bits per second: interactive sessions
/// ask for more than the plan's own edge rate (their final hop floors
/// higher), standard sits below it, background takes the plan as-is.
const MIX: DemandMix = DemandMix {
    interactive_bps: (1_500_000, 3_000_000),
    standard_bps: (400_000, 800_000),
    background_bps: (0, 0),
};

/// Sharing mode of one sweep cell. `Baseline` never touches
/// `set_sharing` at all — the shadow the `none` cell must match byte
/// for byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Baseline,
    None,
    Fcfs,
    MaxMin,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Baseline => "baseline",
            Mode::None => "none",
            Mode::Fcfs => "fcfs",
            Mode::MaxMin => "maxmin",
        }
    }
}

fn profiles() -> ProfileSet {
    ProfileSet {
        user: UserProfile::demo("user-0"),
        content: ContentProfile::demo_video("clip"),
        device: DeviceProfile::demo_pda(),
        context: ContextProfile::default(),
        network: NetworkProfile::broadband(),
    }
}

fn session_pattern(scale: usize) -> SessionPattern {
    SessionPattern {
        arrivals: ArrivalPattern {
            horizon_us: ARRIVAL_HORIZON_US,
            rate_per_sec: (scale as u64) * 1_000_000 / ARRIVAL_HORIZON_US,
            // No burst windows: the sweep isolates sharing, not
            // admission transients.
            burst_period_us: 0,
            ..ArrivalPattern::default()
        },
        hold_range_us: HOLD_RANGE_US,
        demand_range_bps: (0, 0),
    }
}

fn engine_config(workers: usize) -> SessionEngineConfig {
    SessionEngineConfig {
        resilient: ResilientEngineConfig {
            workers,
            ..ResilientEngineConfig::default()
        },
        admission: None,
        tick_us: 500_000,
        max_recompositions: 8,
        horizon_us: Some(HORIZON_US),
        session_spans: false,
        // Grants reach sessions through the buffer model: a shrunk
        // grant drains the buffer, BOLA reacts, delivered satisfaction
        // records the damage.
        abr: Some(AbrConfig::with_mode(AbrMode::Bola)),
        sla: None,
    }
}

/// The shared-bottleneck world: a k=4 fat-tree whose access tier is
/// dimensioned per offered session, plus an unconstrained transcoding
/// proxy hanging off the sender's edge switch on an uncontended link.
fn build_world<'a>(
    formats: &'a FormatRegistry,
    scale: usize,
) -> (ChaosWorld<'a>, NodeId, Vec<NodeId>) {
    let access_bps = (scale as u64 * ACCESS_PER_SESSION_BPS) as f64;
    let fabric_bps = (scale as u64 * ACCESS_PER_SESSION_BPS * FABRIC_MULT) as f64;
    let (mut topo, hosts, _cores) = fat_tree(
        4,
        LinkTemplate::fixed(access_bps, 500),
        LinkTemplate::fixed(fabric_bps, 1_000),
        TOPOLOGY_SEED,
    );
    // The proxy runs the whole transcoder catalog and must never be the
    // scarce resource itself: unconstrained node, access-tier-free link
    // into the sender's edge switch (hosts[0] and hosts[1] hang off
    // edge-0-0, so `edge` below is their shared switch).
    let proxy = topo.add_node(Node::unconstrained("proxy"));
    let edge = topo
        .neighbors(hosts[0])
        .first()
        .expect("a fat-tree host has its edge switch")
        .0;
    topo.connect_simple(proxy, edge, fabric_bps * 100.0)
        .expect("proxy uplink");
    let sender = hosts[0];
    // Receivers live in the other three pods (hosts 4..16): every flow
    // crosses the sender-side access bottleneck, then fans out.
    let receivers: Vec<NodeId> = hosts[4..].to_vec();
    let mut world = ChaosWorld::new(formats, Network::new(topo), DiscoveryConfig::default());
    for spec in catalog::full_catalog() {
        world.join(TranscoderDescriptor::resolve(&spec, formats, proxy).expect("catalog resolves"));
    }
    (world, sender, receivers)
}

fn requests(scale: usize, sender: NodeId, receivers: &[NodeId]) -> Vec<SessionRequest> {
    session_arrivals_with_mix(&session_pattern(scale), &MIX, ARRIVAL_SEED)
        .into_iter()
        .enumerate()
        .map(|(i, sa)| SessionRequest {
            request: CompositionRequest {
                profiles: profiles(),
                sender_host: sender,
                receiver_host: receivers[i % receivers.len()],
            },
            arrival: sa.meta,
            hold_us: sa.hold_us,
            demand_bps: sa.demand_bps,
        })
        .collect()
}

/// FNV-1a over the rendered report: every worker count must agree on
/// it byte for byte.
struct Digest(u64);

impl Digest {
    fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, text: &str) {
        for byte in text.bytes().chain(std::iter::once(0x1e)) {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

fn report_digest(report: &SessionsReport) -> u64 {
    let mut digest = Digest::new();
    for outcome in &report.outcomes {
        digest.update(&format!("{outcome:?}"));
    }
    digest.update(&format!("{:?}", report.counters));
    digest.update(&format!("end={}", report.end_us));
    digest.0
}

/// Per-session delivered satisfaction: composed satisfaction per
/// active µs, discounted by the stalled share of playback.
fn delivered_ratios(report: &SessionsReport) -> Vec<f64> {
    report
        .outcomes
        .iter()
        .filter_map(|o| {
            let active = o.active_us();
            if active == 0 {
                return None;
            }
            let playing = active.saturating_sub(o.rebuffer_us) as f64 / active as f64;
            Some((o.satisfaction_us / active as f64) * playing)
        })
        .collect()
}

/// 5th percentile by sorted rank — deterministic, no interpolation.
fn p5(mut ratios: Vec<f64>) -> f64 {
    if ratios.is_empty() {
        return 0.0;
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    ratios[(ratios.len() - 1) * 5 / 100]
}

fn mean(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        return 0.0;
    }
    ratios.iter().sum::<f64>() / ratios.len() as f64
}

fn run_once(scale: usize, mode: Mode, workers: usize) -> (SessionsReport, DeliveryCacheStats, u64) {
    let formats = FormatRegistry::with_builtins();
    let (mut world, sender, receivers) = build_world(&formats, scale);
    match mode {
        Mode::Baseline => {}
        Mode::None => world.set_sharing(None),
        Mode::Fcfs => world.set_sharing(Some(SharingPolicy::Fcfs)),
        Mode::MaxMin => world.set_sharing(Some(SharingPolicy::WeightedMaxMin)),
    }
    let reqs = requests(scale, sender, &receivers);
    let report = run_sessions(
        &mut world,
        &reqs,
        &engine_config(workers),
        &qosc_telemetry::NoopSink,
    );
    let reallocations = world.broker().map_or(0, |b| b.reallocations());
    (report, world.delivery_cache_stats(), reallocations)
}

struct Cell {
    scale: usize,
    mode: Mode,
    offered: usize,
    completed: usize,
    starved: usize,
    recompositions: u64,
    switches: u64,
    grant_updates: u64,
    reallocations: u64,
    rebuffer_ratio: f64,
    p5_satisfaction: f64,
    mean_satisfaction: f64,
    cache: DeliveryCacheStats,
    digest: u64,
}

fn run_cell(scale: usize, mode: Mode) -> Cell {
    let mut reference = None;
    for &workers in worker_counts(scale) {
        let (report, cache, reallocations) = run_once(scale, mode, workers);
        let digest = report_digest(&report);
        match &reference {
            None => reference = Some((digest, report, cache, reallocations)),
            Some((expected, _, _, _)) => assert_eq!(
                digest,
                *expected,
                "{scale} × {}: workers={workers} diverged from workers=1",
                mode.label()
            ),
        }
    }
    let (digest, report, cache, reallocations) = reference.expect("at least one worker count runs");
    let ratios = delivered_ratios(&report);
    Cell {
        scale,
        mode,
        offered: report.counters.offered,
        completed: report.counters.completed,
        starved: report.counters.starved,
        recompositions: report.recompositions(),
        switches: report.switches(),
        grant_updates: report.outcomes.iter().map(|o| o.grant_updates as u64).sum(),
        reallocations,
        rebuffer_ratio: report.rebuffer_ratio(),
        p5_satisfaction: p5(ratios.clone()),
        mean_satisfaction: mean(&ratios),
        cache,
        digest,
    }
}

fn cell(cells: &[Cell], scale: usize, mode: Mode) -> &Cell {
    cells
        .iter()
        .find(|c| c.scale == scale && c.mode == mode)
        .expect("swept cell")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_broker.json".to_string());
    let deterministic = args.iter().any(|a| a == "--deterministic");
    let scales: Vec<usize> = args
        .iter()
        .find_map(|a| a.strip_prefix("--scales="))
        .map(|list| {
            list.split(',')
                .map(|s| s.trim().parse().expect("numeric scale"))
                .collect()
        })
        .unwrap_or_else(|| SCALES.to_vec());

    println!(
        "X19 — cross-session bandwidth-broker scorecard (k=4 fat-tree, topology seed \
         {TOPOLOGY_SEED}, arrival seed {ARRIVAL_SEED}, horizon {}s, access \
         {ACCESS_PER_SESSION_BPS} bps/session, workers {WORKER_COUNTS:?}, scales {scales:?})",
        HORIZON_US / 1_000_000
    );
    println!();

    let mut cells: Vec<Cell> = Vec::new();
    for &scale in &scales {
        // The none/baseline pair only needs one scale to prove the cold
        // path; the policy contrast runs everywhere.
        let modes: &[Mode] = if scale == scales[0] {
            &[Mode::Baseline, Mode::None, Mode::Fcfs, Mode::MaxMin]
        } else {
            &[Mode::Fcfs, Mode::MaxMin]
        };
        for &mode in modes {
            cells.push(run_cell(scale, mode));
        }
    }

    let mut table = TextTable::new([
        "scale",
        "policy",
        "offered",
        "completed",
        "switches",
        "grant upd",
        "reallocs",
        "cache h/r/m",
        "rebuf ratio",
        "p5 satisf",
        "mean satisf",
    ]);
    for c in &cells {
        table.row([
            c.scale.to_string(),
            c.mode.label().to_string(),
            c.offered.to_string(),
            c.completed.to_string(),
            c.switches.to_string(),
            c.grant_updates.to_string(),
            c.reallocations.to_string(),
            format!("{}/{}/{}", c.cache.hits, c.cache.refreshes, c.cache.misses),
            format!("{:.4}", c.rebuffer_ratio),
            format!("{:.4}", c.p5_satisfaction),
            format!("{:.4}", c.mean_satisfaction),
        ]);
    }
    println!("{}", table.render());

    // The cold path: a world whose sharing was explicitly set to `None`
    // is bit-identical to one that never heard of the broker.
    let baseline = cell(&cells, scales[0], Mode::Baseline);
    let none = cell(&cells, scales[0], Mode::None);
    assert_eq!(
        none.digest, baseline.digest,
        "sharing=None must be bit-identical to the broker never existing"
    );
    assert_eq!(none.cache, DeliveryCacheStats::default());
    assert_eq!(none.grant_updates, 0);

    for &scale in &scales {
        let fcfs = cell(&cells, scale, Mode::Fcfs);
        let maxmin = cell(&cells, scale, Mode::MaxMin);
        // Brokered cells must actually exercise the machinery: the
        // delivery memo serves hits and grant-only refreshes, and
        // reallocation epochs reach sessions as grant updates.
        for c in [fcfs, maxmin] {
            assert!(
                c.cache.hits > 0 && c.cache.refreshes > 0,
                "scale {scale} × {}: delivery memo must be exercised, got {:?}",
                c.mode.label(),
                c.cache
            );
            assert!(c.reallocations > 0);
            assert!(
                c.grant_updates > 0,
                "scale {scale} × {}: reallocations must reach sessions",
                c.mode.label()
            );
        }
        // The headline: weighted max-min holds the tail FCFS collapses,
        // at an aggregate no worse than FCFS's.
        assert!(
            maxmin.p5_satisfaction > fcfs.p5_satisfaction,
            "scale {scale}: max-min must lift p5 delivered satisfaction over FCFS: {:.6} vs {:.6}",
            maxmin.p5_satisfaction,
            fcfs.p5_satisfaction
        );
        assert!(
            maxmin.mean_satisfaction >= fcfs.mean_satisfaction - 1e-9,
            "scale {scale}: max-min aggregate must be no worse than FCFS: {:.6} vs {:.6}",
            maxmin.mean_satisfaction,
            fcfs.mean_satisfaction
        );
        println!(
            "scale {scale}: p5 maxmin {:.4} > fcfs {:.4}; mean maxmin {:.4} >= fcfs {:.4}",
            maxmin.p5_satisfaction,
            fcfs.p5_satisfaction,
            maxmin.mean_satisfaction,
            fcfs.mean_satisfaction
        );
    }
    println!();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"broker_fairness\",\n");
    json.push_str(&format!(
        "  \"scenario\": {{\"topology\": \"fat_tree\", \"k\": 4, \"topology_seed\": {TOPOLOGY_SEED}, \"access_per_session_bps\": {ACCESS_PER_SESSION_BPS}, \"fabric_mult\": {FABRIC_MULT}}},\n"
    ));
    json.push_str(&format!(
        "  \"run\": {{\"arrival_seed\": {ARRIVAL_SEED}, \"horizon_us\": {HORIZON_US}, \"arrival_horizon_us\": {ARRIVAL_HORIZON_US}, \"hold_range_us\": [{}, {}], \"tick_us\": 500000, \"max_recompositions\": 8}},\n",
        HOLD_RANGE_US.0, HOLD_RANGE_US.1
    ));
    json.push_str(&format!(
        "  \"demand_mix_bps\": {{\"interactive\": [{}, {}], \"standard\": [{}, {}], \"background\": [{}, {}]}},\n",
        MIX.interactive_bps.0,
        MIX.interactive_bps.1,
        MIX.standard_bps.0,
        MIX.standard_bps.1,
        MIX.background_bps.0,
        MIX.background_bps.1
    ));
    json.push_str(
        "  \"priority_weights\": {\"interactive\": 4, \"standard\": 2, \"background\": 1},\n",
    );
    json.push_str("  \"workers_verified\": {\"default\": [1, 2, 4, 8], \"at_10000\": [1, 8]},\n");
    json.push_str(&format!("  \"deterministic\": {deterministic},\n"));
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scale\": {}, \"policy\": \"{}\", \"offered\": {}, \"completed\": {}, \"starved\": {}, \"recompositions\": {}, \"switches\": {}, \"grant_updates\": {}, \"reallocations\": {}, \"cache\": {{\"hits\": {}, \"refreshes\": {}, \"misses\": {}}}, \"rebuffer_ratio\": {:.6}, \"p5_satisfaction\": {:.6}, \"mean_satisfaction\": {:.6}, \"digest\": \"{:016x}\"}}{}\n",
            c.scale,
            c.mode.label(),
            c.offered,
            c.completed,
            c.starved,
            c.recompositions,
            c.switches,
            c.grant_updates,
            c.reallocations,
            c.cache.hits,
            c.cache.refreshes,
            c.cache.misses,
            c.rebuffer_ratio,
            c.p5_satisfaction,
            c.mean_satisfaction,
            c.digest,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write scorecard");
    println!("wrote {out_path}");
}
