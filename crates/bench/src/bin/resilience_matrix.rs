//! X12 — the resilience scorecard: chaos intensity × recovery policy.
//!
//! Sweeps the deterministic chaos generator ([`ChaosPlan`]) over a
//! seeded random mesh and measures how each recovery policy holds up:
//!
//! * `none`       — keep the dead chain (the X4 ablation),
//! * `recompose`  — detect and re-run selection on the surviving graph,
//! * `preplan`    — re-compose plus pre-planned backup chains,
//! * `ladder`     — re-compose plus the degradation ladder (relaxed
//!   floors → weighted combiner → drop secondary axes) when composition
//!   at the user's own floors comes back empty or below the floor.
//!
//! Emits `BENCH_resilience.json` (first CLI argument overrides the
//! path). Every value is derived from seeds and simulated time — no
//! wall clock — so the file is byte-identical across runs with the same
//! seeds, and CI snapshots it.
//!
//! Expected shape: availability falls with intensity for every policy;
//! `recompose` beats `none`; the `ladder` dominates `recompose` because
//! a squeezed path that no longer clears the user's 12 fps floor still
//! carries a degraded stream instead of going dark.

use qosc_bench::TextTable;
use qosc_media::Axis;
use qosc_pipeline::{run_resilient, ChaosModel, ChaosPlan, ResilienceConfig, ResilientRun};
use qosc_satisfaction::{AxisPreference, SatisfactionFn, SatisfactionProfile};
use qosc_workload::generator::{random_scenario, GeneratorConfig};
use qosc_workload::Scenario;

const TOPOLOGY_SEED: u64 = 5;
const CHAOS_SEEDS: [u64; 3] = [101, 202, 303];
const INTENSITIES: [f64; 4] = [0.25, 0.5, 0.75, 1.0];
const POLICIES: [&str; 4] = ["none", "recompose", "preplan", "ladder"];

fn generator_config() -> GeneratorConfig {
    GeneratorConfig {
        services_per_layer: 5,
        multi_axis: true,
        ..GeneratorConfig::default()
    }
}

/// The generated mesh with a *strict* user on top: a 12 fps quality
/// floor (weight 3) beside the resolution preference (weight 1).
/// Bandwidth squeezes push delivered frame rates below the floor, which
/// is exactly the regime that separates the ladder from plain
/// re-composition.
fn strict_scenario() -> Scenario {
    let mut scenario = random_scenario(&generator_config(), TOPOLOGY_SEED);
    scenario.profiles.user.satisfaction = SatisfactionProfile::new()
        .with(AxisPreference::weighted(
            Axis::FrameRate,
            SatisfactionFn::Linear {
                min_acceptable: 12.0,
                ideal: 30.0,
            },
            3.0,
        ))
        .with(AxisPreference::weighted(
            Axis::PixelCount,
            SatisfactionFn::Linear {
                min_acceptable: 0.0,
                ideal: 307_200.0,
            },
            1.0,
        ));
    scenario
}

fn policy_config(policy: &str, seed: u64) -> ResilienceConfig {
    ResilienceConfig {
        recompose: policy != "none",
        preplan_backups: policy == "preplan",
        ladder: policy == "ladder",
        seed,
        ..ResilienceConfig::default()
    }
}

struct Cell {
    intensity: f64,
    policy: &'static str,
    chaos_seed: u64,
    fault_events: usize,
    availability: f64,
    mean_satisfaction: f64,
    predicted_mean: f64,
    degraded_fraction: f64,
    recompositions: usize,
    failovers: usize,
    gave_up: bool,
    recovery_gap_us: Option<u64>,
}

/// Time-weighted mean of the *predicted* satisfaction over the run.
fn predicted_mean(run: &ResilientRun) -> f64 {
    let total: f64 = run.segments.iter().map(|s| s.duration.as_secs_f64()).sum();
    if total <= 0.0 {
        return 0.0;
    }
    // +0.0 renormalizes the -0.0 an empty `Sum for f64` starts from.
    (run.segments
        .iter()
        .map(|s| s.predicted * s.duration.as_secs_f64())
        .sum::<f64>()
        + 0.0)
        / total
}

/// Fraction of the run served on a rung below `Full`.
fn degraded_fraction(run: &ResilientRun) -> f64 {
    let total: f64 = run.segments.iter().map(|s| s.duration.as_secs_f64()).sum();
    if total <= 0.0 {
        return 0.0;
    }
    (run.segments
        .iter()
        .filter(|s| {
            s.rung
                .map(|r| r > qosc_core::DegradationRung::Full)
                .unwrap_or(false)
        })
        .map(|s| s.duration.as_secs_f64())
        .sum::<f64>()
        + 0.0)
        / total
}

fn run_cell(intensity: f64, policy: &'static str, chaos_seed: u64) -> Cell {
    // Network is stateful (faults, reservations), so each cell gets a
    // fresh copy of the *same* seeded scenario.
    let mut scenario = strict_scenario();
    let plan = {
        let topology = scenario.network.topology();
        let backbone = topology
            .node_by_name("backbone")
            .expect("generated meshes have a backbone");
        let model = ChaosModel {
            protect: vec![scenario.sender_host, scenario.receiver_host, backbone],
            ..ChaosModel::default()
        };
        ChaosPlan::generate(topology, 0, &model, chaos_seed, intensity)
    };
    let config = policy_config(policy, chaos_seed);
    let run = run_resilient(
        &scenario.formats,
        &scenario.services,
        &mut scenario.network,
        &scenario.profiles,
        scenario.sender_host,
        scenario.receiver_host,
        plan.schedule(),
        &config,
    )
    .expect("resilient run completes");
    Cell {
        intensity,
        policy,
        chaos_seed,
        fault_events: plan.summary().fault_events,
        availability: run.availability(),
        mean_satisfaction: run.mean_satisfaction,
        predicted_mean: predicted_mean(&run),
        degraded_fraction: degraded_fraction(&run),
        recompositions: run.recompositions,
        failovers: run.failovers,
        gave_up: run.gave_up,
        recovery_gap_us: run.recovery_gap.map(|g| g.as_micros()),
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_resilience.json".to_string());

    println!(
        "X12 — resilience scorecard (topology seed {TOPOLOGY_SEED}, chaos seeds {CHAOS_SEEDS:?})"
    );
    println!();

    let mut cells: Vec<Cell> = Vec::new();
    for &intensity in &INTENSITIES {
        for &policy in &POLICIES {
            for &chaos_seed in &CHAOS_SEEDS {
                cells.push(run_cell(intensity, policy, chaos_seed));
            }
        }
    }

    // Per-(intensity, policy) means over the chaos seeds.
    let mut table = TextTable::new([
        "intensity",
        "policy",
        "availability",
        "measured sat",
        "predicted sat",
        "degraded time",
        "recomps",
        "failovers",
        "gave up",
    ]);
    let seeds = CHAOS_SEEDS.len() as f64;
    for &intensity in &INTENSITIES {
        for &policy in &POLICIES {
            let group: Vec<&Cell> = cells
                .iter()
                .filter(|c| c.intensity == intensity && c.policy == policy)
                .collect();
            table.row([
                format!("{intensity:.2}"),
                policy.to_string(),
                format!(
                    "{:.3}",
                    group.iter().map(|c| c.availability).sum::<f64>() / seeds
                ),
                format!(
                    "{:.3}",
                    group.iter().map(|c| c.mean_satisfaction).sum::<f64>() / seeds
                ),
                format!(
                    "{:.3}",
                    group.iter().map(|c| c.predicted_mean).sum::<f64>() / seeds
                ),
                format!(
                    "{:.3}",
                    group.iter().map(|c| c.degraded_fraction).sum::<f64>() / seeds
                ),
                group
                    .iter()
                    .map(|c| c.recompositions)
                    .sum::<usize>()
                    .to_string(),
                group.iter().map(|c| c.failovers).sum::<usize>().to_string(),
                group.iter().filter(|c| c.gave_up).count().to_string(),
            ]);
        }
    }
    println!("{}", table.render());

    let config = generator_config();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"resilience_matrix\",\n");
    json.push_str(&format!(
        "  \"scenario\": {{\"topology_seed\": {TOPOLOGY_SEED}, \"layers\": {}, \"services_per_layer\": {}, \"formats_per_layer\": {}, \"multi_axis\": true, \"fps_floor\": 12.0}},\n",
        config.layers, config.services_per_layer, config.formats_per_layer
    ));
    json.push_str(&format!(
        "  \"chaos_seeds\": [{}],\n",
        CHAOS_SEEDS
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"intensity\": {:.2}, \"policy\": \"{}\", \"chaos_seed\": {}, \"fault_events\": {}, \"availability\": {:.6}, \"mean_satisfaction\": {:.6}, \"predicted_mean\": {:.6}, \"degraded_fraction\": {:.6}, \"recompositions\": {}, \"failovers\": {}, \"gave_up\": {}, \"recovery_gap_us\": {}}}{}\n",
            cell.intensity,
            cell.policy,
            cell.chaos_seed,
            cell.fault_events,
            cell.availability,
            cell.mean_satisfaction,
            cell.predicted_mean,
            cell.degraded_fraction,
            cell.recompositions,
            cell.failovers,
            cell.gave_up,
            cell.recovery_gap_us
                .map(|g| g.to_string())
                .unwrap_or_else(|| "null".to_string()),
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write scorecard");
    println!("wrote {out_path}");
}
