//! X17 — the buffer-aware adaptation scorecard: squeeze intensity ×
//! mid-stream controller.
//!
//! Sweeps an open-loop stream of long-lived sessions over the strict
//! 12 fps mesh while a deterministic schedule of bandwidth squeezes
//! chokes the receiver's access link. The generated mesh is a star —
//! every route terminates on that one link — so re-composition cannot
//! route around a squeeze; the only way to keep a stream alive is down
//! the degradation ladder. Each cell runs through the session engine
//! with a playout-buffer model attached, under three controllers:
//!
//! * **static** — the rung chosen at open is requested forever;
//!   bandwidth squeezes drain the buffer and the rebuffer column shows
//!   what riding a too-high rung costs,
//! * **reactive** — PR 6 semantics: a squeeze kills the plan and a
//!   reactive re-composition descends the ladder (never climbing
//!   back), with the buffer absorbing the dark gap,
//! * **bola** — the BOLA-style Lyapunov controller scores every rung by
//!   `(utility + gamma_b · headroom) / cost` per progress tick,
//!   down-switching before the buffer runs dry and up-switching when
//!   headroom returns (make-before-break).
//!
//! Emits `BENCH_abr.json` (first CLI argument overrides the path;
//! `--deterministic` is accepted for CI parity — the file is always
//! deterministic). Every cell runs at 1/2/4/8 workers and the digests
//! must agree byte for byte.
//!
//! The bin asserts the PR's acceptance shape directly: at storm
//! intensity BOLA strictly cuts the rebuffer ratio versus the static
//! ladder while holding a mean rung no worse than reactive
//! re-composition, and every session's switch count respects the
//! dwell-window bound `switches ≤ 1 + active/dwell`.

use qosc_bench::TextTable;
use qosc_core::{
    run_sessions, AbrConfig, AbrMode, CompositionRequest, ResilientEngineConfig,
    SessionEngineConfig, SessionRequest, SessionsReport,
};
use qosc_media::Axis;
use qosc_pipeline::{ChaosWorld, FailureEvent};
use qosc_satisfaction::{AxisPreference, SatisfactionFn, SatisfactionProfile};
use qosc_services::DiscoveryConfig;
use qosc_workload::arrivals::{session_arrivals, ArrivalPattern, SessionPattern};
use qosc_workload::generator::{random_scenario, GeneratorConfig};
use qosc_workload::Scenario;

const TOPOLOGY_SEED: u64 = 5;
const ARRIVAL_SEED: u64 = 42;
/// Virtual run length.
const HORIZON_US: u64 = 30_000_000;
/// Arrivals stop 5 virtual seconds before the horizon so the tail can
/// drain.
const ARRIVAL_HORIZON_US: u64 = 25_000_000;
/// Long holds — 6–12 s against a 4 s buffer — so squeeze windows land
/// mid-stream, outlast the startup credit, and leave post-window time
/// for BOLA to climb back up the ladder.
const HOLD_RANGE_US: (u64, u64) = (6_000_000, 12_000_000);
/// Per-session full-quality bitrate demand, bits per second; floors
/// the final-hop requirement inside the delivery model. Kept well
/// below the generated access capacities (15–60 kbit/s) so a healthy
/// plan sustains real time and the floor only documents the plumbing.
const DEMAND_RANGE_BPS: (u64, u64) = (1_000, 4_000);
/// Session opens per virtual second (mean concurrency ≈ rate × 9 s).
const ARRIVAL_RATE_PER_SEC: u64 = 2;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const INTENSITIES: [&str; 3] = ["calm", "gusty", "storm"];
const CONTROLLERS: [(&str, AbrMode); 3] = [
    ("static", AbrMode::StaticLadder),
    ("reactive", AbrMode::Reactive),
    ("bola", AbrMode::Bola),
];

/// Deterministic squeeze windows `(start_us, end_us, permille)` applied
/// to the receiver's access link. Windows outlast the 4 s playout
/// buffer at storm so a static ladder *must* stall, while the residual
/// capacity still carries the lower rungs.
fn squeeze_windows(intensity: &str) -> &'static [(u64, u64, u16)] {
    match intensity {
        "calm" => &[],
        "gusty" => &[(6_000_000, 9_000_000, 700), (18_000_000, 21_000_000, 700)],
        "storm" => &[
            (3_000_000, 9_000_000, 900),
            (13_000_000, 19_000_000, 900),
            (23_000_000, 29_000_000, 900),
        ],
        other => panic!("unknown intensity {other}"),
    }
}

/// The squeeze share of the horizon — the scalar the JSON reports as
/// the cell's intensity.
fn squeeze_fraction(intensity: &str) -> f64 {
    let busy: u64 = squeeze_windows(intensity)
        .iter()
        .map(|(s, e, _)| e - s)
        .sum();
    busy as f64 / HORIZON_US as f64
}

fn generator_config() -> GeneratorConfig {
    GeneratorConfig {
        services_per_layer: 5,
        multi_axis: true,
        ..GeneratorConfig::default()
    }
}

/// The steady-state-scorecard mesh with the strict user (12 fps floor,
/// weight 3) — the ladder visibly rescores what it serves.
fn strict_scenario() -> Scenario {
    let mut scenario = random_scenario(&generator_config(), TOPOLOGY_SEED);
    scenario.profiles.user.satisfaction = SatisfactionProfile::new()
        .with(AxisPreference::weighted(
            Axis::FrameRate,
            SatisfactionFn::Linear {
                min_acceptable: 12.0,
                ideal: 30.0,
            },
            3.0,
        ))
        .with(AxisPreference::weighted(
            Axis::PixelCount,
            SatisfactionFn::Linear {
                min_acceptable: 0.0,
                ideal: 307_200.0,
            },
            1.0,
        ));
    scenario
}

fn session_pattern() -> SessionPattern {
    SessionPattern {
        arrivals: ArrivalPattern {
            horizon_us: ARRIVAL_HORIZON_US,
            rate_per_sec: ARRIVAL_RATE_PER_SEC,
            ..ArrivalPattern::default()
        },
        hold_range_us: HOLD_RANGE_US,
        demand_range_bps: DEMAND_RANGE_BPS,
    }
}

fn abr_config(mode: AbrMode) -> AbrConfig {
    AbrConfig::with_mode(mode)
}

fn engine_config(mode: AbrMode, workers: usize) -> SessionEngineConfig {
    SessionEngineConfig {
        resilient: ResilientEngineConfig {
            workers,
            ..ResilientEngineConfig::default()
        },
        // No admission queue: the sweep isolates the mid-stream
        // controllers; X16 already covers admission interplay.
        admission: None,
        tick_us: 250_000,
        max_recompositions: 8,
        horizon_us: Some(HORIZON_US),
        session_spans: true,
        abr: Some(abr_config(mode)),
        sla: None,
    }
}

/// FNV-1a over the rendered report: every worker count must agree on
/// it byte for byte.
struct Digest(u64);

impl Digest {
    fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, text: &str) {
        for byte in text.bytes().chain(std::iter::once(0x1e)) {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

fn report_digest(report: &SessionsReport) -> u64 {
    let mut digest = Digest::new();
    for outcome in &report.outcomes {
        digest.update(&format!("{outcome:?}"));
    }
    digest.update(&format!("{:?}", report.counters));
    digest.update(&format!("end={}", report.end_us));
    digest.0
}

fn run_once(mode: AbrMode, intensity: &str, workers: usize) -> SessionsReport {
    // The world is stateful (faults, discovery), so every run gets a
    // fresh copy of the *same* seeded scenario.
    let scenario = strict_scenario();
    // The star topology gives the receiver exactly one access link;
    // every plan's final hop crosses it, so squeezing it cannot be
    // routed around.
    let access_link = {
        let neighbors = scenario
            .network
            .topology()
            .neighbors(scenario.receiver_host);
        assert_eq!(
            neighbors.len(),
            1,
            "generated star meshes attach the receiver by one access link"
        );
        neighbors[0].1
    };
    let descriptors: Vec<_> = scenario
        .services
        .live_services()
        .map(|(_, d)| d.clone())
        .collect();
    let mut world = ChaosWorld::new(
        &scenario.formats,
        scenario.network,
        DiscoveryConfig::default(),
    );
    for descriptor in descriptors {
        world.join(descriptor);
    }
    for &(start, end, permille) in squeeze_windows(intensity) {
        world.schedule_fault(
            start,
            FailureEvent::Squeeze {
                link: access_link,
                permille,
            },
        );
        world.schedule_fault(end, FailureEvent::Unsqueeze(access_link));
    }

    let requests: Vec<SessionRequest> = session_arrivals(&session_pattern(), ARRIVAL_SEED)
        .into_iter()
        .map(|sa| SessionRequest {
            request: CompositionRequest {
                profiles: scenario.profiles.clone(),
                sender_host: scenario.sender_host,
                receiver_host: scenario.receiver_host,
            },
            arrival: sa.meta,
            hold_us: sa.hold_us,
            demand_bps: sa.demand_bps,
        })
        .collect();

    run_sessions(
        &mut world,
        &requests,
        &engine_config(mode, workers),
        &qosc_telemetry::NoopSink,
    )
}

struct Cell {
    intensity_label: &'static str,
    intensity: f64,
    controller: &'static str,
    offered: usize,
    completed: usize,
    starved: usize,
    gave_up: usize,
    failed_open: usize,
    recompositions: u64,
    switches: u64,
    rebuffer_us: u64,
    rebuffer_events: u64,
    rebuffer_ratio: f64,
    mean_rung: f64,
    availability: f64,
    buffer_peak_us: u64,
    digest: u64,
}

fn run_cell(intensity_label: &'static str, controller: &'static str) -> Cell {
    let mode = CONTROLLERS
        .iter()
        .find(|(name, _)| *name == controller)
        .expect("known controller")
        .1;
    let mut reference: Option<(u64, SessionsReport)> = None;
    for &workers in &WORKER_COUNTS {
        let report = run_once(mode, intensity_label, workers);
        let digest = report_digest(&report);
        match &reference {
            None => reference = Some((digest, report)),
            Some((expected, _)) => assert_eq!(
                digest, *expected,
                "{intensity_label} × {controller}: workers={workers} diverged from workers=1"
            ),
        }
    }
    let (digest, report) = reference.expect("at least one worker count runs");

    // The TLA+ switch-rate bound: at most one committed switch per
    // dwell window, plus the window in flight.
    let dwell = abr_config(mode).switch_dwell_us.max(1);
    for (i, outcome) in report.outcomes.iter().enumerate() {
        let bound = 1 + outcome.active_us() / dwell;
        assert!(
            (outcome.switches as u64) <= bound,
            "{intensity_label} × {controller}: session {i} made {} switches over {}us active \
             (bound {bound})",
            outcome.switches,
            outcome.active_us()
        );
    }

    Cell {
        intensity_label,
        intensity: squeeze_fraction(intensity_label),
        controller,
        offered: report.counters.offered,
        completed: report.counters.completed,
        starved: report.counters.starved,
        gave_up: report.counters.gave_up,
        failed_open: report.counters.failed_open,
        recompositions: report.recompositions(),
        switches: report.switches(),
        rebuffer_us: report.rebuffer_us(),
        rebuffer_events: report
            .outcomes
            .iter()
            .map(|o| o.rebuffer_events as u64)
            .sum(),
        rebuffer_ratio: report.rebuffer_ratio(),
        mean_rung: report.mean_rung_index(),
        availability: report.availability(),
        buffer_peak_us: report
            .outcomes
            .iter()
            .map(|o| o.buffer_peak_us)
            .max()
            .unwrap_or(0),
        digest,
    }
}

fn cell<'a>(cells: &'a [Cell], intensity: &str, controller: &str) -> &'a Cell {
    cells
        .iter()
        .find(|c| c.intensity_label == intensity && c.controller == controller)
        .expect("swept cell")
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_abr.json".to_string());
    let deterministic = std::env::args().nth(2).as_deref() == Some("--deterministic");

    println!(
        "X17 — buffer-aware adaptation scorecard (topology seed {TOPOLOGY_SEED}, arrival seed \
         {ARRIVAL_SEED}, horizon {}s, access-link squeeze schedule, workers {WORKER_COUNTS:?})",
        HORIZON_US / 1_000_000
    );
    println!();

    let mut cells: Vec<Cell> = Vec::new();
    for &intensity_label in &INTENSITIES {
        for &(controller, _) in &CONTROLLERS {
            cells.push(run_cell(intensity_label, controller));
        }
    }

    let mut table = TextTable::new([
        "chaos",
        "controller",
        "offered",
        "completed",
        "starved",
        "recomp",
        "switches",
        "rebuf ms",
        "rebuf ratio",
        "mean rung",
        "avail",
    ]);
    for c in &cells {
        table.row([
            c.intensity_label.to_string(),
            c.controller.to_string(),
            c.offered.to_string(),
            c.completed.to_string(),
            c.starved.to_string(),
            c.recompositions.to_string(),
            c.switches.to_string(),
            (c.rebuffer_us / 1_000).to_string(),
            format!("{:.4}", c.rebuffer_ratio),
            format!("{:.3}", c.mean_rung),
            format!("{:.4}", c.availability),
        ]);
    }
    println!("{}", table.render());

    // The robustness headline, asserted where it matters: storm.
    let storm_static = cell(&cells, "storm", "static");
    let storm_reactive = cell(&cells, "storm", "reactive");
    let storm_bola = cell(&cells, "storm", "bola");
    assert!(
        storm_static.rebuffer_ratio > 0.0,
        "storm squeeze must starve the static ladder's buffer at least once"
    );
    assert!(
        storm_bola.rebuffer_ratio < storm_static.rebuffer_ratio,
        "BOLA must strictly cut the rebuffer ratio vs the static ladder at storm: \
         bola {:.6} vs static {:.6}",
        storm_bola.rebuffer_ratio,
        storm_static.rebuffer_ratio
    );
    assert!(
        storm_bola.mean_rung <= storm_reactive.mean_rung,
        "BOLA's mean rung must be no worse than reactive at storm: bola {:.4} vs reactive {:.4}",
        storm_bola.mean_rung,
        storm_reactive.mean_rung
    );
    println!(
        "storm check: rebuffer bola {:.4} < static {:.4}; mean rung bola {:.3} <= reactive {:.3}",
        storm_bola.rebuffer_ratio,
        storm_static.rebuffer_ratio,
        storm_bola.mean_rung,
        storm_reactive.mean_rung
    );

    let config = generator_config();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"abr_controller\",\n");
    json.push_str(&format!(
        "  \"scenario\": {{\"topology_seed\": {TOPOLOGY_SEED}, \"layers\": {}, \"services_per_layer\": {}, \"formats_per_layer\": {}, \"multi_axis\": true, \"fps_floor\": 12.0}},\n",
        config.layers, config.services_per_layer, config.formats_per_layer
    ));
    json.push_str(&format!(
        "  \"run\": {{\"arrival_seed\": {ARRIVAL_SEED}, \"horizon_us\": {HORIZON_US}, \"hold_range_us\": [{}, {}], \"demand_range_bps\": [{}, {}], \"rate_per_sec\": {ARRIVAL_RATE_PER_SEC}, \"tick_us\": 250000, \"max_recompositions\": 8}},\n",
        HOLD_RANGE_US.0, HOLD_RANGE_US.1, DEMAND_RANGE_BPS.0, DEMAND_RANGE_BPS.1
    ));
    json.push_str("  \"squeeze_windows\": {");
    for (i, intensity) in INTENSITIES.iter().enumerate() {
        let windows = squeeze_windows(intensity)
            .iter()
            .map(|(s, e, p)| format!("[{s}, {e}, {p}]"))
            .collect::<Vec<_>>()
            .join(", ");
        json.push_str(&format!(
            "\"{intensity}\": [{windows}]{}",
            if i + 1 == INTENSITIES.len() { "" } else { ", " }
        ));
    }
    json.push_str("},\n");
    let abr = AbrConfig::default();
    json.push_str(&format!(
        "  \"abr\": {{\"buffer_capacity_us\": {}, \"startup_buffer_us\": {}, \"gamma_b_ppm\": {}, \"switch_dwell_us\": {}, \"rung_utility\": {:?}, \"rung_cost_pct\": {:?}}},\n",
        abr.buffer_capacity_us,
        abr.startup_buffer_us,
        abr.gamma_b_ppm,
        abr.switch_dwell_us,
        abr.rung_utility,
        abr.rung_cost_pct
    ));
    json.push_str(&format!(
        "  \"workers_verified\": [{}],\n",
        WORKER_COUNTS
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!("  \"deterministic\": {deterministic},\n"));
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"chaos\": \"{}\", \"intensity\": {:.2}, \"controller\": \"{}\", \"offered\": {}, \"completed\": {}, \"starved\": {}, \"gave_up\": {}, \"failed_open\": {}, \"recompositions\": {}, \"switches\": {}, \"rebuffer_us\": {}, \"rebuffer_events\": {}, \"rebuffer_ratio\": {:.6}, \"mean_rung\": {:.6}, \"availability\": {:.6}, \"buffer_peak_us\": {}, \"digest\": \"{:016x}\"}}{}\n",
            c.intensity_label,
            c.intensity,
            c.controller,
            c.offered,
            c.completed,
            c.starved,
            c.gave_up,
            c.failed_open,
            c.recompositions,
            c.switches,
            c.rebuffer_us,
            c.rebuffer_events,
            c.rebuffer_ratio,
            c.mean_rung,
            c.availability,
            c.buffer_peak_us,
            c.digest,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write scorecard");
    println!("wrote {out_path}");
}
