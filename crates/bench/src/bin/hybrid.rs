//! X11 — static vs dynamic vs hybrid adaptation (Section 2's taxonomy):
//!
//! * **static** — the content creator pre-generates variants for known
//!   device classes; no trans-coding services run ("does not require any
//!   runtime processing … requires large storage space"),
//! * **dynamic** — one master variant; every request is served through
//!   trans-coding services,
//! * **hybrid** — a couple of popular variants plus the services.
//!
//! The heterogeneous device population of X10 measures each strategy's
//! coverage and satisfaction, and the master-storage proxy quantifies
//! the static approach's storage bill.
//!
//! ```text
//! cargo run -p qosc-bench --release --bin hybrid
//! ```

use qosc_bench::TextTable;
use qosc_core::{Composer, SelectOptions};
use qosc_media::{Axis, AxisDomain, DomainVector, FormatRegistry, VariantSpec};
use qosc_netsim::{Network, Node, Topology};
use qosc_profiles::{ContentProfile, ContextProfile, NetworkProfile, ProfileSet};
use qosc_services::{catalog, ServiceRegistry, TranscoderDescriptor};
use qosc_workload::profiles_gen::{random_device, random_user};

const POPULATION: u64 = 100;

fn video_offer(max_px: f64) -> DomainVector {
    DomainVector::new()
        .with(
            Axis::FrameRate,
            AxisDomain::Continuous {
                min: 1.0,
                max: 30.0,
            },
        )
        .with(
            Axis::PixelCount,
            AxisDomain::Continuous {
                min: 4_800.0,
                max: max_px,
            },
        )
        .with(
            Axis::ColorDepth,
            AxisDomain::Continuous {
                min: 8.0,
                max: 24.0,
            },
        )
}

fn variant(format: &str, max_px: f64) -> VariantSpec {
    VariantSpec {
        format: format.to_string(),
        offered: video_offer(max_px),
    }
}

/// A storage proxy for one stored variant: one second of its best
/// configuration, in bits (relative numbers are what matter).
fn storage_bits(formats: &FormatRegistry, spec: &VariantSpec) -> f64 {
    let id = formats.lookup(&spec.format).expect("known format");
    let top = spec.offered.top();
    formats
        .spec(id)
        .expect("known id")
        .bitrate
        .bits_per_second(&top)
}

fn main() {
    println!("X11 — static vs dynamic vs hybrid adaptation over {POPULATION} clients");
    println!();

    let strategies: [(&str, Vec<VariantSpec>, bool); 3] = [
        (
            // "Most of this content is created and formatted for the
            // personal computers" (Section 1) — the creator anticipated
            // PC-class formats, not handhelds.
            "static (3 PC-class variants, no services)",
            vec![
                variant("video/mpeg2", 307_200.0),
                variant("video/mpeg1", 307_200.0),
                variant("video/mpeg4", 307_200.0),
            ],
            false,
        ),
        (
            "dynamic (1 master, full service catalog)",
            vec![variant("video/mpeg2", 307_200.0)],
            true,
        ),
        (
            "hybrid (2 variants + catalog)",
            vec![
                variant("video/mpeg2", 307_200.0),
                variant("video/mpeg1", 307_200.0),
            ],
            true,
        ),
    ];

    let mut table = TextTable::new([
        "strategy",
        "storage (relative)",
        "served",
        "mean satisfaction",
        "mean chain length",
    ]);
    for (name, variants, with_services) in &strategies {
        let formats = FormatRegistry::with_builtins();
        let mut topo = Topology::new();
        let server = topo.add_node(Node::unconstrained("server"));
        let proxy = topo.add_node(Node::unconstrained("proxy"));
        let client = topo.add_node(Node::unconstrained("client"));
        topo.connect_simple(server, proxy, 100e6).unwrap();
        topo.connect_simple(proxy, client, 4e6).unwrap();
        let network = Network::new(topo);
        let mut services = ServiceRegistry::new();
        if *with_services {
            for spec in catalog::full_catalog() {
                services.register_static(
                    TranscoderDescriptor::resolve(&spec, &formats, proxy).unwrap(),
                );
            }
        }
        let content = ContentProfile::new("the-clip", variants.clone());
        let storage: f64 = variants.iter().map(|v| storage_bits(&formats, v)).sum();

        let mut served = 0usize;
        let mut satisfaction_sum = 0.0;
        let mut hops_sum = 0usize;
        let options = SelectOptions {
            record_trace: false,
            ..SelectOptions::default()
        };
        for seed in 0..POPULATION {
            let profiles = ProfileSet {
                user: random_user(seed),
                device: random_device(seed),
                content: content.clone(),
                context: ContextProfile::default(),
                network: NetworkProfile::broadband(),
            };
            let composer = Composer {
                formats: &formats,
                services: &services,
                network: &network,
            };
            let composition = composer
                .compose(&profiles, server, client, &options)
                .expect("composition runs");
            if let Some(chain) = composition.selection.chain {
                served += 1;
                satisfaction_sum += chain.satisfaction;
                hops_sum += chain.steps.len() - 1;
            }
        }
        let n = served.max(1) as f64;
        table.row([
            name.to_string(),
            format!("{:.1}×", storage / storage_bits(&formats, &variants[0])),
            format!("{served}/{POPULATION}"),
            format!("{:.3}", satisfaction_sum / n),
            format!("{:.2}", hops_sum as f64 / n),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!(
        "Expected shape (Section 2's trade-off): static serves everyone the \
         creator anticipated at zero runtime cost but multiplies storage; \
         dynamic serves everyone from one master at the cost of a longer \
         chain (runtime trans-coding); hybrid gets the popular classes \
         directly and falls back to services for the rest."
    );
}
