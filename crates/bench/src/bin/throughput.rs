//! E7: aggregate composition throughput of the concurrent front-end.
//!
//! Sweeps the [`serve_batch`] worker count over request mixes with
//! controllable repeat rates (the fraction of requests whose key was
//! already requested — i.e. cache-hit candidates), against one shared
//! [`ShardedCompositionCache`]. Emits a machine-readable summary to
//! `BENCH_throughput.json` (first CLI argument overrides the path) and
//! a human-readable table on stdout.
//!
//! Interpretation note: worker scaling is hardware-dependent. On a
//! single-core host the sweep measures scheduling overhead only — the
//! useful signals there are the cache columns (repeat traffic turning
//! into hits) and the absence of a *large* slowdown from sharing one
//! cache across workers.

use qosc_bench::TextTable;
use qosc_core::{
    serve_batch, Composer, CompositionRequest, EngineConfig, SelectOptions, ShardedCompositionCache,
};
use qosc_workload::generator::{random_scenario, GeneratorConfig};
use qosc_workload::Scenario;
use std::time::Instant;

const WORKERS: [usize; 4] = [1, 2, 4, 8];
const REPEAT_RATES: [f64; 3] = [0.0, 0.5, 0.9];
const REQUESTS_PER_CELL: usize = 48;
const SEED: u64 = 7;

/// A request mix with `repeat_rate` of the requests re-using an earlier
/// key: `distinct = ceil(n * (1 - repeat_rate))` profile variants,
/// round-robined. Every variant differs only in the user name, so all
/// requests cost the same to compose and differ only in cache key.
fn request_mix(scenario: &Scenario, n: usize, repeat_rate: f64) -> Vec<CompositionRequest> {
    let distinct = ((n as f64) * (1.0 - repeat_rate)).ceil().max(1.0) as usize;
    (0..n)
        .map(|i| {
            let mut profiles = scenario.profiles.clone();
            profiles.user.name = format!("throughput-user-{}", i % distinct);
            CompositionRequest {
                profiles,
                sender_host: scenario.sender_host,
                receiver_host: scenario.receiver_host,
            }
        })
        .collect()
}

struct Cell {
    workers: usize,
    repeat_rate: f64,
    requests: usize,
    solved: usize,
    seconds: f64,
    throughput_rps: f64,
    hits: usize,
    misses: usize,
    stale: usize,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_throughput.json".to_string());
    let config = GeneratorConfig {
        layers: 3,
        services_per_layer: 6,
        formats_per_layer: 3,
        conversions_per_service: 2,
        ..GeneratorConfig::default()
    };
    let scenario = random_scenario(&config, SEED);
    let composer = Composer {
        formats: &scenario.formats,
        services: &scenario.services,
        network: &scenario.network,
    };

    let mut cells: Vec<Cell> = Vec::new();
    for &repeat_rate in &REPEAT_RATES {
        let requests = request_mix(&scenario, REQUESTS_PER_CELL, repeat_rate);
        for &workers in &WORKERS {
            let engine = EngineConfig {
                workers,
                options: SelectOptions::default(),
            };
            // Untimed warm-up against a throwaway cache: page in code
            // and per-thread allocator state.
            let _ = serve_batch(
                &composer,
                &ShardedCompositionCache::default(),
                &requests,
                &engine,
            );

            let cache = ShardedCompositionCache::default();
            let start = Instant::now();
            let served = serve_batch(&composer, &cache, &requests, &engine);
            let seconds = start.elapsed().as_secs_f64();
            let solved = served.iter().filter(|r| matches!(r, Ok(Some(_)))).count();
            let stats = cache.stats();
            assert_eq!(
                stats.hits + stats.misses + stats.stale,
                requests.len(),
                "stats must aggregate exactly"
            );
            cells.push(Cell {
                workers,
                repeat_rate,
                requests: requests.len(),
                solved,
                seconds,
                throughput_rps: requests.len() as f64 / seconds,
                hits: stats.hits,
                misses: stats.misses,
                stale: stats.stale,
            });
        }
    }

    let mut table = TextTable::new(vec![
        "repeat rate",
        "workers",
        "requests",
        "solved",
        "seconds",
        "req/s",
        "hits",
        "misses",
    ]);
    for cell in &cells {
        table.row(vec![
            format!("{:.1}", cell.repeat_rate),
            cell.workers.to_string(),
            cell.requests.to_string(),
            cell.solved.to_string(),
            format!("{:.4}", cell.seconds),
            format!("{:.1}", cell.throughput_rps),
            cell.hits.to_string(),
            cell.misses.to_string(),
        ]);
    }
    println!("{}", table.render());

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"throughput\",\n");
    json.push_str(&format!(
        "  \"scenario\": {{\"seed\": {SEED}, \"layers\": {}, \"services_per_layer\": {}, \"formats_per_layer\": {}}},\n",
        config.layers, config.services_per_layer, config.formats_per_layer
    ));
    json.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    json.push_str("  \"note\": \"worker scaling is hardware-dependent; on a single-core host the sweep measures scheduling overhead, not speedup\",\n");
    json.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"repeat_rate\": {:.1}, \"workers\": {}, \"requests\": {}, \"solved\": {}, \"seconds\": {:.6}, \"throughput_rps\": {:.2}, \"hits\": {}, \"misses\": {}, \"stale\": {}}}{}\n",
            cell.repeat_rate,
            cell.workers,
            cell.requests,
            cell.solved,
            cell.seconds,
            cell.throughput_rps,
            cell.hits,
            cell.misses,
            cell.stale,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write summary");
    println!("wrote {out_path}");
}
