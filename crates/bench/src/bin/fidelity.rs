//! X5 — predicted vs delivered: run streaming sessions over the plans
//! the algorithm produced and compare the algorithm's *predicted*
//! satisfaction against the *measured* satisfaction at the receiver,
//! with increasing link loss and background-traffic fluctuation.
//!
//! ```text
//! cargo run -p qosc-bench --release --bin fidelity
//! ```

use qosc_bench::TextTable;
use qosc_core::SelectOptions;
use qosc_pipeline::{run_session, SessionConfig};
use qosc_workload::generator::{random_scenario, GeneratorConfig};

fn main() {
    println!("X5 — predicted vs measured satisfaction under loss");
    println!();

    let loss_levels = [0.0, 0.01, 0.05, 0.1, 0.2];
    let seeds: Vec<u64> = (0..10).collect();
    let options = SelectOptions {
        record_trace: false,
        ..SelectOptions::default()
    };

    let mut table = TextTable::new([
        "link loss",
        "sessions",
        "admission-rejected",
        "mean predicted",
        "mean measured",
        "mean loss frac",
        "mean |Δ|",
    ]);
    for &loss in &loss_levels {
        let mut predicted_sum = 0.0;
        let mut measured_sum = 0.0;
        let mut loss_sum = 0.0;
        let mut gap_sum = 0.0;
        let mut sessions = 0usize;
        let mut rejected = 0usize;
        for &seed in &seeds {
            let config = GeneratorConfig {
                bandwidth_range: (20_000.0, 60_000.0),
                ..GeneratorConfig::default()
            };
            let mut scenario = random_scenario(&config, seed);
            // Inject uniform loss on every link by rebuilding loss via the
            // generator is invasive; instead run the plan on a network
            // whose links carry the configured loss. The generator gives
            // lossless links, so we patch the topology in place.
            // (Topology mutation is test/bench-only surface.)
            let composition = scenario.compose(&options).expect("composes");
            let plan = match composition.plan {
                Some(p) => p,
                None => continue,
            };
            let profile = scenario.profiles.effective_satisfaction();
            patch_loss(&mut scenario.network, loss);
            // Selection's per-hop Equa. 2 can jointly overcommit a shared
            // access link; admission rejection is the honest outcome.
            let report = match run_session(
                &mut scenario.network,
                &scenario.services,
                &plan,
                &profile,
                &SessionConfig {
                    seed,
                    ..SessionConfig::default()
                },
            ) {
                Ok(r) => r,
                Err(qosc_pipeline::PipelineError::AdmissionRejected(_)) => {
                    rejected += 1;
                    continue;
                }
                Err(e) => panic!("session failed: {e}"),
            };
            predicted_sum += plan.predicted_satisfaction;
            measured_sum += report.measured_satisfaction;
            loss_sum += report.loss_fraction();
            gap_sum += (plan.predicted_satisfaction - report.measured_satisfaction).abs();
            sessions += 1;
        }
        let n = sessions.max(1) as f64;
        table.row([
            format!("{:.0}%", loss * 100.0),
            sessions.to_string(),
            rejected.to_string(),
            format!("{:.3}", predicted_sum / n),
            format!("{:.3}", measured_sum / n),
            format!("{:.3}", loss_sum / n),
            format!("{:.3}", gap_sum / n),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!(
        "Expected shape: at zero loss the measured satisfaction tracks the \
         prediction closely (the selection's bandwidth model is honest); \
         rising loss erodes delivered frame rate and opens a gap the \
         selection cannot see — motivating the re-selection loop of X4."
    );
}

/// Set every link's loss probability (bench-only network surgery).
fn patch_loss(network: &mut qosc_netsim::Network, loss: f64) {
    let link_ids: Vec<_> = network.topology().link_ids().collect();
    for link in link_ids {
        if let Ok(spec) = network.topology_mut().link_mut(link) {
            spec.loss = loss;
        }
    }
}
