//! X14 — the telemetry audit: the flight recorder must not perturb the
//! engine and must not depend on the machine.
//!
//! Replays a canned slice of the chaos + overload scorecards with a
//! [`FlightRecorder`] attached and checks the two properties the
//! telemetry layer promises:
//!
//! * **Determinism** — the merged event log (ordered by
//!   `(virtual_time, request_id, seq)`) and the Prometheus metrics
//!   snapshot are byte-identical across 1/2/4/8 composition workers and
//!   across repeated runs. Telemetry carries only virtual time, so the
//!   transcript is a function of the seeds, not of the scheduler.
//! * **Zero perturbation** — an uninstrumented ([`NoopSink`]) run of
//!   the same scenario produces bitwise-identical outcomes (counters,
//!   shed verdicts, satisfaction sums): recording is observation, not
//!   intervention.
//!
//! The replay covers four event sources: the admission front-end at 2×
//! offered load (admitted/shed chains with brown-out rung changes), a
//! cold + warm pass through the sharded composition cache (miss then
//! hit probes on per-request keys), a chaos-schedule resilient stream
//! (failover / re-composition events on the virtual clock), and a
//! scripted registry lease storm (register / renew / expire /
//! quarantine / release / deregister).
//!
//! Emits `BENCH_telemetry.json` (first CLI argument overrides the
//! path): per-kind event counts, histogram snapshots (queue wait,
//! explain-chain depth), and explain-depth statistics. The file is
//! byte-identical across runs and machines, and CI snapshots it.

use qosc_bench::TextTable;
use qosc_core::{
    serve_batch_resilient_traced, serve_batch_traced, serve_batch_with_admission,
    serve_batch_with_admission_traced, AdmissionConfig, CompositionRequest, EngineConfig,
    ResilientEngineConfig, ShardedCompositionCache,
};
use qosc_media::{Axis, FormatRegistry};
use qosc_netsim::{Node, SimTime, Topology};
use qosc_pipeline::{run_resilient_traced, ChaosModel, ChaosPlan, ResilienceConfig};
use qosc_satisfaction::{AxisPreference, SatisfactionFn, SatisfactionProfile};
use qosc_services::{catalog, QuarantineConfig, ServiceRegistry, TranscoderDescriptor};
use qosc_telemetry::{EventKind, FlightRecorder, MetricsRegistry};
use qosc_workload::arrivals::{poisson_burst_arrivals, ArrivalPattern};
use qosc_workload::generator::{random_scenario, GeneratorConfig};
use qosc_workload::Scenario;

const TOPOLOGY_SEED: u64 = 5;
const ARRIVAL_SEED: u64 = 42;
const CHAOS_SEED: u64 = 101;
const CHAOS_INTENSITY: f64 = 0.75;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const VIRTUAL_CORES: u32 = 4;
const MEAN_COST_US: u64 = 20_000;
/// Distinct requests in the cache cold/warm passes.
const CACHE_REQUESTS: usize = 16;

fn generator_config() -> GeneratorConfig {
    GeneratorConfig {
        services_per_layer: 5,
        multi_axis: true,
        ..GeneratorConfig::default()
    }
}

/// The scorecard mesh with the strict 12 fps user (mirrors X12/X13).
fn strict_scenario() -> Scenario {
    let mut scenario = random_scenario(&generator_config(), TOPOLOGY_SEED);
    scenario.profiles.user.satisfaction = SatisfactionProfile::new()
        .with(AxisPreference::weighted(
            Axis::FrameRate,
            SatisfactionFn::Linear {
                min_acceptable: 12.0,
                ideal: 30.0,
            },
            3.0,
        ))
        .with(AxisPreference::weighted(
            Axis::PixelCount,
            SatisfactionFn::Linear {
                min_acceptable: 0.0,
                ideal: 307_200.0,
            },
            1.0,
        ));
    scenario
}

/// X13's `full` policy: shedding + priorities + brown-out coupling.
fn admission_config() -> AdmissionConfig {
    AdmissionConfig {
        virtual_cores: VIRTUAL_CORES,
        initial_limit: VIRTUAL_CORES,
        max_limit: 8,
        ..AdmissionConfig::protected()
    }
}

/// 2× virtual capacity — past saturation, so the transcript contains
/// both admitted chains and shed verdicts.
fn overload_pattern() -> ArrivalPattern {
    let capacity_per_sec = VIRTUAL_CORES as u64 * 1_000_000 / MEAN_COST_US;
    let target_mean = capacity_per_sec * 2;
    ArrivalPattern {
        rate_per_sec: target_mean * 100 / 120,
        ..ArrivalPattern::default()
    }
}

/// Outcome fingerprint used for the no-perturbation check: everything
/// the engine decides, reduced to exactly comparable integers.
#[derive(Debug, PartialEq, Eq)]
struct OutcomeDigest {
    served: usize,
    degraded: usize,
    failed: usize,
    shed: usize,
    deadline_exceeded: usize,
    satisfaction_bits: Vec<u64>,
}

/// One full instrumented replay at `workers` composition workers.
/// Returns the merged transcript (all four phases), the Prometheus
/// snapshot, the overload recorder (for explain/depth stats), the
/// whole-replay per-kind event totals, and the outcome digest of the
/// overload phase.
fn replay(
    workers: usize,
) -> (
    String,
    String,
    FlightRecorder,
    std::collections::BTreeMap<&'static str, u64>,
    OutcomeDigest,
) {
    let recorder = FlightRecorder::new(16);
    let registry = MetricsRegistry::new();

    // Phase 1 — overload: admission front-end at 2× capacity.
    let scenario = strict_scenario();
    let composer = scenario.composer();
    let arrivals = poisson_burst_arrivals(&overload_pattern(), ARRIVAL_SEED);
    let requests: Vec<CompositionRequest> = arrivals
        .iter()
        .map(|_| CompositionRequest {
            profiles: scenario.profiles.clone(),
            sender_host: scenario.sender_host,
            receiver_host: scenario.receiver_host,
        })
        .collect();
    let config = ResilientEngineConfig {
        workers,
        admission: admission_config(),
        ..ResilientEngineConfig::default()
    };
    let result =
        serve_batch_with_admission_traced(&composer, &requests, &arrivals, &config, &recorder);
    let counters = result.batch.counters();
    counters.record_metrics(&registry);
    let queue_wait = registry.histogram(
        "qosc_admission_queue_wait_us",
        &[0, 1_000, 5_000, 20_000, 100_000, 500_000],
    );
    for decision in result.admission.decisions.iter().filter(|d| d.admitted) {
        queue_wait.observe(decision.queue_wait_us);
    }
    let digest = OutcomeDigest {
        served: counters.served,
        degraded: counters.degraded,
        failed: counters.failed,
        shed: counters.shed,
        deadline_exceeded: counters.deadline_exceeded,
        satisfaction_bits: result
            .batch
            .outcomes
            .iter()
            .map(|o| o.satisfaction.to_bits())
            .collect(),
    };
    let overload_log = recorder.render_log();
    let overload_recorder = recorder;

    // Phase 2 — cache: a cold pass over per-request keys (every probe a
    // miss), a warm pass over the same keys (every probe a hit), then a
    // service death and a third pass (entries whose chain used the dead
    // service revalidate as stale). Keys are distinct per request, so
    // the outcome of each probe is independent of how workers
    // interleave.
    let cold = FlightRecorder::new(16);
    let warm = FlightRecorder::new(16);
    let stale = FlightRecorder::new(16);
    let mut cache_scenario = strict_scenario();
    let cache = ShardedCompositionCache::new(8);
    let mut cache_requests = Vec::with_capacity(CACHE_REQUESTS);
    for i in 0..CACHE_REQUESTS {
        let mut profiles = cache_scenario.profiles.clone();
        profiles.user.name = format!("viewer-{i}");
        cache_requests.push(CompositionRequest {
            profiles,
            sender_host: cache_scenario.sender_host,
            receiver_host: cache_scenario.receiver_host,
        });
    }
    let engine_config = EngineConfig {
        workers,
        ..EngineConfig::default()
    };
    let dead_service = {
        let cache_composer = cache_scenario.composer();
        let cold_plans = serve_batch_traced(
            &cache_composer,
            &cache,
            &cache_requests,
            &engine_config,
            &cold,
        );
        serve_batch_traced(
            &cache_composer,
            &cache,
            &cache_requests,
            &engine_config,
            &warm,
        );
        cold_plans
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .filter_map(|p| p.as_ref())
            .flat_map(|plan| plan.steps.iter().filter_map(|step| step.service))
            .min_by_key(|id| id.index())
    };
    if let Some(id) = dead_service {
        cache_scenario
            .services
            .deregister(id)
            .expect("chain service is live");
    }
    {
        let cache_composer = cache_scenario.composer();
        serve_batch_traced(
            &cache_composer,
            &cache,
            &cache_requests,
            &engine_config,
            &stale,
        );
    }
    cache.stats().record_metrics(&registry);
    cache.export_gauges(&registry);

    // Phase 2b — ladder descent: a floor no plan can meet (120 fps)
    // forces every request down the degradation ladder, emitting
    // per-rung spans and rung-change events.
    let ladder = FlightRecorder::new(16);
    let mut ladder_profiles = scenario.profiles.clone();
    ladder_profiles.user.satisfaction = SatisfactionProfile::new().with(AxisPreference::weighted(
        Axis::FrameRate,
        SatisfactionFn::Linear {
            min_acceptable: 120.0,
            ideal: 240.0,
        },
        1.0,
    ));
    let ladder_requests: Vec<CompositionRequest> = (0..4)
        .map(|_| CompositionRequest {
            profiles: ladder_profiles.clone(),
            sender_host: scenario.sender_host,
            receiver_host: scenario.receiver_host,
        })
        .collect();
    let ladder_config = ResilientEngineConfig {
        workers,
        ladder: true,
        ..ResilientEngineConfig::default()
    };
    serve_batch_resilient_traced(&composer, &ladder_requests, &ladder_config, &ladder);

    // Phase 3 — chaos: one resilient stream under the canned fault
    // schedule; failovers and re-compositions land on the virtual clock.
    let chaos = FlightRecorder::new(16);
    let mut chaos_scenario = strict_scenario();
    let chaos_model = ChaosModel {
        protect: vec![
            chaos_scenario.sender_host,
            chaos_scenario.receiver_host,
            chaos_scenario
                .network
                .topology()
                .node_by_name("backbone")
                .expect("generated mesh has a backbone"),
        ],
        ..ChaosModel::default()
    };
    let plan = ChaosPlan::generate(
        chaos_scenario.network.topology(),
        0,
        &chaos_model,
        CHAOS_SEED,
        CHAOS_INTENSITY,
    );
    let resilience = ResilienceConfig {
        ladder: true,
        preplan_backups: true,
        seed: CHAOS_SEED,
        ..ResilienceConfig::default()
    };
    run_resilient_traced(
        &chaos_scenario.formats,
        &chaos_scenario.services,
        &mut chaos_scenario.network,
        &chaos_scenario.profiles,
        chaos_scenario.sender_host,
        chaos_scenario.receiver_host,
        plan.schedule(),
        &resilience,
        &chaos,
    )
    .expect("chaos replay composes");

    // Phase 4 — registry: a scripted lease storm over the real catalog,
    // replayed into the recorder off the registry's timed event log.
    let churn = FlightRecorder::new(16);
    let formats = FormatRegistry::with_builtins();
    let mut topo = Topology::new();
    let edge = topo.add_node(Node::unconstrained("edge"));
    let mut services = ServiceRegistry::new();
    services.set_quarantine_config(QuarantineConfig {
        failure_threshold: 3,
        cooldown_us: 2_000_000,
    });
    let specs = catalog::full_catalog();
    let ids: Vec<_> = specs
        .iter()
        .take(6)
        .map(|spec| {
            let descriptor =
                TranscoderDescriptor::resolve(spec, &formats, edge).expect("catalog resolves");
            services.register(descriptor, SimTime::ZERO, 1_000_000)
        })
        .collect();
    for &id in ids.iter().step_by(2) {
        services
            .renew(id, SimTime(500_000), 1_000_000)
            .expect("renew live lease");
    }
    services.expire_leases(SimTime(1_200_000));
    for step in 0..3 {
        services
            .report_failure(ids[0], SimTime(1_300_000 + step * 100_000))
            .expect("failing service is live");
    }
    services.release_quarantines(SimTime(4_000_000));
    services.deregister(ids[2]).expect("deregister live lease");
    services.record_telemetry(&churn);

    // The combined transcript: the four phases in a fixed order, each a
    // merged `(virtual_time, request_id, seq)`-ordered log.
    let transcript = format!(
        "== overload ==\n{overload_log}== cache cold ==\n{}== cache warm ==\n{}== cache stale ==\n{}== ladder ==\n{}== chaos ==\n{}== registry ==\n{}",
        cold.render_log(),
        warm.render_log(),
        stale.render_log(),
        ladder.render_log(),
        chaos.render_log(),
        churn.render_log(),
    );

    // Metrics: whole-replay per-kind event totals (the recorders share
    // request-id spaces, so sum their counts rather than merging logs),
    // plus the explain-depth histogram over the overload phase.
    let mut event_totals: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    for source in [
        &overload_recorder,
        &cold,
        &warm,
        &stale,
        &ladder,
        &chaos,
        &churn,
    ] {
        for (label, count) in source.event_counts() {
            *event_totals.entry(label).or_insert(0) += count;
        }
    }
    for (label, count) in &event_totals {
        registry
            .counter(&format!("qosc_events_total{{kind=\"{label}\"}}"))
            .store(*count);
    }
    let depth_histogram = registry.histogram("qosc_explain_depth", &[1, 2, 3, 4, 6, 8]);
    for id in overload_recorder.request_ids() {
        depth_histogram.observe(overload_recorder.explain_depth(id) as u64);
    }
    let prometheus = registry.to_prometheus_text();

    (
        transcript,
        prometheus,
        overload_recorder,
        event_totals,
        digest,
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_telemetry.json".to_string());

    println!(
        "X14 — telemetry audit (topology seed {TOPOLOGY_SEED}, arrival seed {ARRIVAL_SEED}, \
         chaos seed {CHAOS_SEED}, workers {WORKER_COUNTS:?})"
    );
    println!();

    // Reference replay at 4 workers, then the determinism sweep.
    let (reference_log, reference_metrics, recorder, event_totals, reference_digest) = replay(4);
    let mut rows: Vec<(usize, usize, bool, bool)> = Vec::new();
    for &workers in &WORKER_COUNTS {
        let (log, metrics, _, _, digest) = replay(workers);
        let log_identical = log == reference_log;
        let metrics_identical = metrics == reference_metrics;
        assert!(
            log_identical,
            "merged event log differs at {workers} workers"
        );
        assert!(
            metrics_identical,
            "metrics snapshot differs at {workers} workers"
        );
        assert_eq!(
            digest, reference_digest,
            "engine outcomes differ at {workers} workers"
        );
        rows.push((
            workers,
            log.lines().count(),
            log_identical,
            metrics_identical,
        ));
    }

    // Repeated run at the reference worker count: same process, fresh
    // state, byte-identical transcript.
    let (repeat_log, repeat_metrics, _, _, _) = replay(4);
    assert_eq!(repeat_log, reference_log, "repeated run diverged");
    assert_eq!(
        repeat_metrics, reference_metrics,
        "repeated metrics diverged"
    );

    // No-perturbation: the uninstrumented engine decides exactly the
    // same things the instrumented one did.
    let scenario = strict_scenario();
    let composer = scenario.composer();
    let arrivals = poisson_burst_arrivals(&overload_pattern(), ARRIVAL_SEED);
    let requests: Vec<CompositionRequest> = arrivals
        .iter()
        .map(|_| CompositionRequest {
            profiles: scenario.profiles.clone(),
            sender_host: scenario.sender_host,
            receiver_host: scenario.receiver_host,
        })
        .collect();
    let config = ResilientEngineConfig {
        workers: 4,
        admission: admission_config(),
        ..ResilientEngineConfig::default()
    };
    let noop = serve_batch_with_admission(&composer, &requests, &arrivals, &config);
    let noop_counters = noop.batch.counters();
    let noop_digest = OutcomeDigest {
        served: noop_counters.served,
        degraded: noop_counters.degraded,
        failed: noop_counters.failed,
        shed: noop_counters.shed,
        deadline_exceeded: noop_counters.deadline_exceeded,
        satisfaction_bits: noop
            .batch
            .outcomes
            .iter()
            .map(|o| o.satisfaction.to_bits())
            .collect(),
    };
    assert_eq!(
        noop_digest, reference_digest,
        "NoopSink run diverged from instrumented run"
    );

    let mut table = TextTable::new(["workers", "log lines", "log", "metrics"]);
    for (workers, lines, log_ok, metrics_ok) in &rows {
        table.row([
            workers.to_string(),
            lines.to_string(),
            if *log_ok { "identical" } else { "DIFFERS" }.to_string(),
            if *metrics_ok { "identical" } else { "DIFFERS" }.to_string(),
        ]);
    }
    println!("{}", table.render());

    // Explain-chain depth statistics over every request in the replay.
    let ids = recorder.request_ids();
    let depths: Vec<usize> = ids.iter().map(|&id| recorder.explain_depth(id)).collect();
    let depth_min = depths.iter().copied().min().unwrap_or(0);
    let depth_max = depths.iter().copied().max().unwrap_or(0);
    let depth_mean = if depths.is_empty() {
        0.0
    } else {
        depths.iter().sum::<usize>() as f64 / depths.len() as f64
    };
    println!(
        "explain chains: {} requests, depth min {depth_min} mean {depth_mean:.3} max {depth_max}",
        ids.len()
    );

    // Two worked explain chains: the first shed request and the first
    // brown-out (admitted below the full rung) request.
    let merged = recorder.merged();
    let shed_id = merged
        .iter()
        .find(|e| matches!(e.kind, EventKind::RequestShed { .. }))
        .map(|e| e.request_id);
    let brownout_id = merged
        .iter()
        .find(|e| matches!(&e.kind, EventKind::RequestAdmitted { rung, .. } if *rung != "full"))
        .map(|e| e.request_id);
    if let Some(id) = shed_id {
        println!("\nexplain({id}) — shed:\n{}", recorder.explain(id));
    }
    if let Some(id) = brownout_id {
        println!("explain({id}) — brown-out:\n{}", recorder.explain(id));
    }

    let config = generator_config();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"telemetry_audit\",\n");
    json.push_str(&format!(
        "  \"scenario\": {{\"topology_seed\": {TOPOLOGY_SEED}, \"layers\": {}, \"services_per_layer\": {}, \"formats_per_layer\": {}, \"multi_axis\": true, \"fps_floor\": 12.0}},\n",
        config.layers, config.services_per_layer, config.formats_per_layer
    ));
    json.push_str(&format!(
        "  \"replay\": {{\"arrival_seed\": {ARRIVAL_SEED}, \"chaos_seed\": {CHAOS_SEED}, \"chaos_intensity\": {CHAOS_INTENSITY:.2}, \"cache_requests\": {CACHE_REQUESTS}, \"virtual_cores\": {VIRTUAL_CORES}, \"mean_cost_us\": {MEAN_COST_US}}},\n"
    ));
    json.push_str(&format!(
        "  \"determinism\": {{\"worker_counts\": [{}], \"log_identical\": true, \"metrics_identical\": true, \"repeated_run_identical\": true, \"noop_outcomes_identical\": true, \"log_lines\": {}}},\n",
        WORKER_COUNTS
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        reference_log.lines().count()
    ));
    json.push_str("  \"events\": {\n");
    let entries: Vec<(&str, u64)> = event_totals.iter().map(|(&k, &v)| (k, v)).collect();
    for (i, (kind, count)) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    \"{kind}\": {count}{}\n",
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"explain\": {{\"requests\": {}, \"depth_min\": {depth_min}, \"depth_mean\": {depth_mean:.6}, \"depth_max\": {depth_max}}},\n",
        ids.len()
    ));
    json.push_str("  \"histograms\": [\n");
    let histograms = [
        (
            "qosc_admission_queue_wait_us",
            reference_metrics_snapshot(&reference_metrics, "qosc_admission_queue_wait_us"),
        ),
        (
            "qosc_explain_depth",
            reference_metrics_snapshot(&reference_metrics, "qosc_explain_depth"),
        ),
    ];
    for (i, (name, snapshot)) in histograms.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{name}\", {snapshot}}}{}\n",
            if i + 1 == histograms.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write scorecard");
    println!("wrote {out_path}");
}

/// Re-derive a histogram snapshot (as a JSON fragment) from the
/// Prometheus text so the emitted file reflects exactly the snapshot
/// that was compared across worker counts.
fn reference_metrics_snapshot(prometheus: &str, name: &str) -> String {
    let mut buckets: Vec<(String, u64)> = Vec::new();
    let mut sum = 0u64;
    let mut count = 0u64;
    for line in prometheus.lines() {
        if let Some(rest) = line.strip_prefix(&format!("{name}_bucket{{le=\"")) {
            let (le, value) = rest.split_once("\"} ").expect("bucket line");
            buckets.push((le.to_string(), value.parse().expect("bucket count")));
        } else if let Some(value) = line.strip_prefix(&format!("{name}_sum ")) {
            sum = value.parse().expect("sum");
        } else if let Some(value) = line.strip_prefix(&format!("{name}_count ")) {
            count = value.parse().expect("count");
        }
    }
    let rendered: Vec<String> = buckets
        .iter()
        .map(|(le, v)| format!("{{\"le\": \"{le}\", \"count\": {v}}}"))
        .collect();
    format!(
        "\"buckets\": [{}], \"sum\": {sum}, \"count\": {count}",
        rendered.join(", ")
    )
}
