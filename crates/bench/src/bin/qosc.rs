//! `qosc` — command-line front door to the composition framework.
//!
//! ```text
//! qosc compose <request.json> [--downlink <bit/s>] [--trace] [--dot]
//!     Load a ProfileSet request (user/content/device/context/network,
//!     the JSON stand-in for MPEG-21 descriptions), compose an
//!     adaptation chain through a proxy running the built-in service
//!     catalog, and print the plan.
//!
//! qosc table1
//!     Regenerate the paper's Table 1 (same as the `table1` binary).
//!
//! qosc catalog
//!     List the built-in trans-coding service catalog.
//! ```
//!
//! Run through cargo: `cargo run -p qosc-bench --bin qosc -- compose …`

use qosc_core::graph::dot;
use qosc_core::{Composer, SelectOptions};
use qosc_media::FormatRegistry;
use qosc_netsim::{Network, Node, Topology};
use qosc_profiles::ProfileSet;
use qosc_services::{catalog, ServiceRegistry, TranscoderDescriptor};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compose") => compose(&args[1..]),
        Some("table1") => {
            table1();
            ExitCode::SUCCESS
        }
        Some("catalog") => {
            print_catalog();
            ExitCode::SUCCESS
        }
        Some("--help") | Some("-h") | None => {
            usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`");
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "qosc — QoS-based service composition for content adaptation (ICDE 2007 reproduction)\n\
         \n\
         USAGE:\n\
         \u{20}   qosc compose <request.json> [--downlink <bit/s>] [--trace] [--dot]\n\
         \u{20}   qosc table1\n\
         \u{20}   qosc catalog\n\
         \n\
         `compose` builds a server — proxy — client network (the proxy runs\n\
         the built-in trans-coder catalog), loads the JSON profile set and\n\
         prints the satisfaction-optimal adaptation plan. See\n\
         examples/data/request.json for the request format."
    );
}

fn compose(args: &[String]) -> ExitCode {
    let mut path: Option<&str> = None;
    let mut downlink = 2e6;
    let mut show_trace = false;
    let mut show_dot = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--downlink" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => downlink = v,
                _ => {
                    eprintln!("--downlink needs a positive number of bit/s");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => show_trace = true,
            "--dot" => show_dot = true,
            other if path.is_none() && !other.starts_with('-') => path = Some(other),
            other => {
                eprintln!("unexpected argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("compose needs a request.json path");
        return ExitCode::FAILURE;
    };
    let json = match std::fs::read_to_string(path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let profiles = match ProfileSet::from_json(&json) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{path} is not a valid profile set: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = profiles.validate() {
        eprintln!("request rejected: {e}");
        return ExitCode::FAILURE;
    }

    let formats = FormatRegistry::with_builtins();
    let mut topo = Topology::new();
    let server = topo.add_node(Node::unconstrained("server"));
    let proxy = topo.add_node(Node::new("proxy", 4_000.0, 8e9));
    let client = topo.add_node(Node::unconstrained("client"));
    topo.connect_simple(server, proxy, 100e6)
        .expect("valid link");
    topo.connect_simple(proxy, client, downlink)
        .expect("valid link");
    let network = Network::new(topo);
    let mut services = ServiceRegistry::new();
    for spec in catalog::full_catalog() {
        services.register_static(
            TranscoderDescriptor::resolve(&spec, &formats, proxy).expect("catalog resolves"),
        );
    }

    let composer = Composer {
        formats: &formats,
        services: &services,
        network: &network,
    };
    let composition = match composer.compose(&profiles, server, client, &SelectOptions::default()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("composition failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if show_trace {
        print!("{}", composition.selection.trace.to_table1_string());
        println!();
    }
    match &composition.plan {
        Some(plan) => print!("{}", plan.describe(&formats)),
        None => {
            println!(
                "no chain: {}",
                composition
                    .selection
                    .failure
                    .as_ref()
                    .map(|f| f.to_string())
                    .unwrap_or_default()
            );
            return ExitCode::FAILURE;
        }
    }
    if show_dot {
        let highlight: Vec<String> = composition
            .plan
            .as_ref()
            .map(|p| p.steps.iter().map(|s| s.name.clone()).collect())
            .unwrap_or_default();
        println!();
        print!(
            "{}",
            dot::to_dot(&composition.graph, &formats, &highlight).expect("graph renders")
        );
    }
    ExitCode::SUCCESS
}

fn table1() {
    let scenario = qosc_workload::paper::figure6_scenario(true);
    let composition = scenario
        .compose(&SelectOptions::default())
        .expect("paper scenario composes");
    print!("{}", composition.selection.trace.to_table1_string());
    match qosc_workload::paper::verify_table1(&composition.selection.trace) {
        None => println!("\nVERDICT: matches the paper's Table 1 row-for-row."),
        Some(m) => println!("\nVERDICT: MISMATCH — {m}"),
    }
}

fn print_catalog() {
    println!("built-in trans-coding service catalog:");
    for spec in catalog::full_catalog() {
        let conversions: Vec<String> = spec
            .conversions
            .iter()
            .map(|c| format!("{} → {}", c.input, c.output))
            .collect();
        println!(
            "  {:<20} {}  ({} MIPS/Mbps, {:.4}+{:.4}/Mbit per s)",
            spec.name,
            conversions.join(", "),
            spec.cpu_mips_per_mbps,
            spec.price.per_second,
            spec.price.per_mbit,
        );
    }
}
