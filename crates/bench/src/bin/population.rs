//! X10 — a heterogeneous client population, the paper's headline
//! motivation: one content master, one proxy fleet, a hundred distinct
//! (user, device) pairs — every request gets its own chain and
//! configuration from the same mechanism.
//!
//! ```text
//! cargo run -p qosc-bench --release --bin population
//! ```

use qosc_bench::TextTable;
use qosc_core::{Composer, SelectOptions};
use qosc_media::{Axis, FormatRegistry};
use qosc_netsim::{Network, Node, Topology};
use qosc_profiles::{ContentProfile, ContextProfile, NetworkProfile, ProfileSet};
use qosc_services::{catalog, ServiceRegistry, TranscoderDescriptor};
use qosc_workload::profiles_gen::{random_device, random_user};
use std::collections::BTreeMap;

const POPULATION: u64 = 100;

fn main() {
    println!("X10 — one mechanism, {POPULATION} heterogeneous clients");
    println!();

    let formats = FormatRegistry::with_builtins();
    let mut topo = Topology::new();
    let server = topo.add_node(Node::unconstrained("server"));
    let proxy = topo.add_node(Node::unconstrained("proxy"));
    let client_node = topo.add_node(Node::unconstrained("client"));
    topo.connect_simple(server, proxy, 100e6).unwrap();
    topo.connect_simple(proxy, client_node, 4e6).unwrap();
    let network = Network::new(topo);
    let mut services = ServiceRegistry::new();
    for spec in catalog::full_catalog() {
        services.register_static(TranscoderDescriptor::resolve(&spec, &formats, proxy).unwrap());
    }

    #[derive(Default)]
    struct Bucket {
        count: usize,
        solved: usize,
        satisfaction_sum: f64,
        fps_sum: f64,
        chains: BTreeMap<String, usize>,
    }
    let mut buckets: BTreeMap<String, Bucket> = BTreeMap::new();
    let options = SelectOptions {
        record_trace: false,
        ..SelectOptions::default()
    };

    for seed in 0..POPULATION {
        let user = random_user(seed);
        let device = random_device(seed);
        let class = device
            .name
            .split('-')
            .next()
            .unwrap_or("unknown")
            .to_string();
        let profiles = ProfileSet {
            user,
            device,
            content: ContentProfile::demo_video("the-one-master"),
            context: ContextProfile::default(),
            network: NetworkProfile::broadband(),
        };
        let composer = Composer {
            formats: &formats,
            services: &services,
            network: &network,
        };
        let composition = composer
            .compose(&profiles, server, client_node, &options)
            .expect("composition runs");
        let bucket = buckets.entry(class).or_default();
        bucket.count += 1;
        if let Some(chain) = composition.selection.chain {
            bucket.solved += 1;
            bucket.satisfaction_sum += chain.satisfaction;
            bucket.fps_sum += chain
                .steps
                .last()
                .unwrap()
                .params
                .get(Axis::FrameRate)
                .unwrap_or(0.0);
            let transcoders: Vec<&str> = chain.names()[1..chain.names().len() - 1].to_vec();
            let label = if transcoders.is_empty() {
                "(direct)".to_string()
            } else {
                transcoders.join("+")
            };
            *bucket.chains.entry(label).or_insert(0) += 1;
        }
    }

    let mut table = TextTable::new([
        "device class",
        "clients",
        "solved",
        "mean satisfaction",
        "mean fps",
        "distinct chains",
        "most common chain",
    ]);
    for (class, bucket) in &buckets {
        let n = bucket.solved.max(1) as f64;
        let top_chain = bucket
            .chains
            .iter()
            .max_by_key(|(_, &count)| count)
            .map(|(chain, count)| format!("{chain} ({count})"))
            .unwrap_or_else(|| "-".to_string());
        table.row([
            class.clone(),
            bucket.count.to_string(),
            bucket.solved.to_string(),
            format!("{:.3}", bucket.satisfaction_sum / n),
            format!("{:.1}", bucket.fps_sum / n),
            bucket.chains.len().to_string(),
            top_chain,
        ]);
    }
    print!("{}", table.render());
    println!();
    println!(
        "Expected shape: every class is served from the same MPEG-2 master \
         through class-appropriate chains (PDAs through the H.263 \
         down-coder, desktops often direct or through lighter re-coders), \
         with satisfaction limited by each device's decoders and caps, not \
         by the mechanism — the interoperability argument of Section 1."
    );
}
