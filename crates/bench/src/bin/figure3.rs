//! E4 — regenerate **Figure 3**: the example adaptation graph built from
//! one sender, seven intermediaries and one receiver, printed as an edge
//! list and as Graphviz DOT.
//!
//! ```text
//! cargo run -p qosc-bench --bin figure3
//! ```

use qosc_bench::TextTable;
use qosc_core::graph::dot;
use qosc_core::SelectOptions;
use qosc_workload::paper;

fn main() {
    println!("E4 — Figure 3: directed trans-coding graph (construction example)");
    println!();

    let scenario = paper::figure3_scenario();
    let composition = scenario
        .compose(&SelectOptions::default())
        .expect("figure-3 scenario composes");
    let graph = &composition.graph;

    println!(
        "vertices: {} (sender + 7 intermediaries + receiver), edges: {}",
        graph.vertex_count(),
        graph.edge_count()
    );
    println!();

    let mut table = TextTable::new(["from", "format", "to", "bandwidth (bit/s)"]);
    for edge_id in graph.edge_ids() {
        let edge = graph.edge(edge_id).unwrap();
        table.row([
            graph.vertex(edge.from).unwrap().name.clone(),
            scenario.formats.name(edge.format).to_string(),
            graph.vertex(edge.to).unwrap().name.clone(),
            if edge.available_bps.is_infinite() {
                "∞ (same host)".to_string()
            } else {
                format!("{:.0}", edge.available_bps)
            },
        ]);
    }
    print!("{}", table.render());
    println!();

    let highlight: Vec<String> = composition
        .plan
        .as_ref()
        .map(|p| p.steps.iter().map(|s| s.name.clone()).collect())
        .unwrap_or_default();
    println!("selected chain: {}", highlight.join(" → "));
    println!();
    println!("DOT (selected chain highlighted):");
    print!(
        "{}",
        dot::to_dot(graph, &scenario.formats, &highlight).expect("graph renders")
    );
}
