//! X20: registry scale — two-level sharded composition vs the flat
//! Figure-4 path, from 10^3 to 10^6 registered services.
//!
//! Sweeps registry size × churn rate on the clustered scale scenario
//! ([`qosc_workload::scale`]). For every cell it measures
//!
//! * **cold** composes (fresh [`GraphStore`] each time — the full
//!   summary-prune + scoped-build cost vs the full flat build cost),
//! * **warm** composes (one shared store, churn applied between
//!   requests at the cell's rate — the steady-state path),
//! * shards-expanded counts and coordinator rounds for the two-level
//!   path, and
//! * **plan deviation vs the flat path, which must be exactly zero**
//!   wherever the flat baseline runs (sizes ≤ 10^5; at 10^6 the flat
//!   build is the very cost being engineered away).
//!
//! A separate pass re-composes one request mix across 1/2/4/8 worker
//! threads sharing a store and digests the plans in request order: the
//! digest must not depend on the worker count.
//!
//! Output goes to `BENCH_scale.json` (first CLI argument overrides the
//! path). `--deterministic` omits every timing-derived field so two
//! runs produce byte-identical files — the CI `scale-smoke` step runs
//! the bin twice with `--max=10000` and `cmp`s the outputs.

use qosc_bench::TextTable;
use qosc_core::{GraphStore, SelectOptions};
use qosc_netsim::SimTime;
use qosc_workload::scale::{scale_scenario, ScaleConfig, ScaleScenario};
use std::time::Instant;

const SIZES: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];
const CHURN_RATES: [f64; 3] = [0.0, 0.25, 1.0];
const FLAT_MAX_SERVICES: usize = 100_000;
const WORKERS: [usize; 4] = [1, 2, 4, 8];
const WORKER_REQUESTS: usize = 32;

/// FNV-1a over the rendered plans.
struct Digest(u64);

impl Digest {
    fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, text: &str) {
        for byte in text.bytes().chain(std::iter::once(0x1e)) {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    let index = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[index]
}

#[derive(Clone, Copy, Default)]
struct PathStats {
    p50_us: f64,
    p99_us: f64,
}

fn path_stats(latencies_us: &mut [f64]) -> PathStats {
    latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    PathStats {
        p50_us: percentile(latencies_us, 0.50),
        p99_us: percentile(latencies_us, 0.99),
    }
}

fn cold_iters(size: usize) -> usize {
    match size {
        0..=1_000 => 9,
        1_001..=10_000 => 7,
        10_001..=100_000 => 3,
        _ => 2,
    }
}

fn warm_iters(size: usize) -> usize {
    match size {
        0..=1_000 => 32,
        1_001..=10_000 => 16,
        10_001..=100_000 => 8,
        _ => 4,
    }
}

/// The flat baseline is the cost being engineered away — at 10^5 one
/// flat compose runs for tens of seconds, so it gets fewer samples.
fn flat_cold_iters(size: usize) -> usize {
    if size > 10_000 {
        2
    } else {
        cold_iters(size)
    }
}

fn flat_warm_iters(size: usize) -> usize {
    if size > 10_000 {
        3
    } else {
        warm_iters(size)
    }
}

struct Cell {
    services: usize,
    churn_rate: f64,
    clusters: usize,
    shards: u32,
    expanded_shards: usize,
    rounds: u32,
    full_expansion: bool,
    deviations: usize,
    compared: usize,
    flat_ran: bool,
    digest: u64,
    two_cold: PathStats,
    two_warm: PathStats,
    flat_cold: PathStats,
    flat_warm: PathStats,
}

/// Cold + warm sweep of one (size, churn) cell through both paths.
fn run_cell(size: usize, churn_rate: f64) -> Cell {
    let config = ScaleConfig::default().with_total_services(size);
    let mut scenario = scale_scenario(&config);
    let options = SelectOptions::default();
    let flat_ran = size <= FLAT_MAX_SERVICES;
    let mut digest = Digest::new();
    let mut deviations = 0usize;
    let mut compared = 0usize;

    // --- cold: a fresh store per compose, both paths.
    let mut two_cold = Vec::new();
    let mut flat_cold = Vec::new();
    let mut expanded_shards = 0usize;
    let mut rounds = 0u32;
    let mut full_expansion = false;
    for iter in 0..cold_iters(size) {
        let store = GraphStore::new();
        let start = Instant::now();
        let two = scenario
            .composer()
            .compose_with_store(
                &store,
                &scenario.profiles,
                scenario.sender_host,
                scenario.receiver_host,
                &options,
            )
            .expect("two-level compose");
        two_cold.push(start.elapsed().as_secs_f64() * 1e6);
        expanded_shards = two.expanded_shards.len();
        rounds = two.rounds;
        full_expansion = two.full_expansion;
        let rendered = format!("{:?}", two.composition.plan);
        digest.update(&rendered);

        if flat_ran && iter < flat_cold_iters(size) {
            let store = GraphStore::new();
            let start = Instant::now();
            let flat = scenario
                .flat_composer()
                .compose_with_store(
                    &store,
                    &scenario.profiles,
                    scenario.sender_host,
                    scenario.receiver_host,
                    &options,
                )
                .expect("flat compose");
            flat_cold.push(start.elapsed().as_secs_f64() * 1e6);
            compared += 1;
            if rendered != format!("{:?}", flat.plan) {
                deviations += 1;
            }
        }
    }

    // --- warm: one shared store per path, churn between requests.
    // Churn cycles through the losing clusters, so the two-level scoped
    // graph stays reusable while the flat epoch keeps moving.
    let two_store = GraphStore::new();
    let flat_store = GraphStore::new();
    let mut two_warm = Vec::new();
    let mut flat_warm = Vec::new();
    let mut churn_due = 0.0f64;
    let mut churn_seq = 0usize;
    let mut now_us = 1_000u64;
    for iter in 0..warm_iters(size) {
        churn_due += churn_rate;
        while churn_due >= 1.0 {
            churn_due -= 1.0;
            now_us += 1_000;
            let cluster = 1 + churn_seq % (scenario.clusters.max(2) - 1);
            scenario.churn_cycle(cluster, SimTime(now_us));
            churn_seq += 1;
        }
        let start = Instant::now();
        let two = scenario
            .composer()
            .compose_with_store(
                &two_store,
                &scenario.profiles,
                scenario.sender_host,
                scenario.receiver_host,
                &options,
            )
            .expect("two-level compose");
        two_warm.push(start.elapsed().as_secs_f64() * 1e6);
        let rendered = format!("{:?}", two.composition.plan);
        digest.update(&rendered);

        if flat_ran && iter < flat_warm_iters(size) {
            let start = Instant::now();
            let flat = scenario
                .flat_composer()
                .compose_with_store(
                    &flat_store,
                    &scenario.profiles,
                    scenario.sender_host,
                    scenario.receiver_host,
                    &options,
                )
                .expect("flat compose");
            flat_warm.push(start.elapsed().as_secs_f64() * 1e6);
            compared += 1;
            if rendered != format!("{:?}", flat.plan) {
                deviations += 1;
            }
        }
    }

    Cell {
        services: config.total(),
        churn_rate,
        clusters: scenario.clusters,
        shards: scenario.services.shard_count(),
        expanded_shards,
        rounds,
        full_expansion,
        deviations,
        compared,
        flat_ran,
        digest: digest.0,
        two_cold: path_stats(&mut two_cold),
        two_warm: path_stats(&mut two_warm),
        flat_cold: if flat_ran {
            path_stats(&mut flat_cold)
        } else {
            PathStats::default()
        },
        flat_warm: if flat_ran {
            path_stats(&mut flat_warm)
        } else {
            PathStats::default()
        },
    }
}

/// One request mix composed at each worker count over a shared store;
/// plans digested in request order must agree byte for byte.
fn worker_digests(size: usize) -> u64 {
    let config = ScaleConfig::default().with_total_services(size);
    let scenario = scale_scenario(&config);
    let options = SelectOptions::default();
    let digest_for = |workers: usize| -> u64 {
        let store = GraphStore::new();
        let mut plans: Vec<Option<String>> = vec![None; WORKER_REQUESTS];
        std::thread::scope(|scope| {
            let chunks: Vec<_> = plans
                .chunks_mut(WORKER_REQUESTS.div_ceil(workers))
                .collect();
            for (w, chunk) in chunks.into_iter().enumerate() {
                let scenario: &ScaleScenario = &scenario;
                let store = &store;
                let options = &options;
                scope.spawn(move || {
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        let profiles = scenario.request_profiles(w * 1_000 + i);
                        let two = scenario
                            .composer()
                            .compose_with_store(
                                store,
                                &profiles,
                                scenario.sender_host,
                                scenario.receiver_host,
                                options,
                            )
                            .expect("two-level compose");
                        *slot = Some(format!("{:?}", two.composition.plan));
                    }
                });
            }
        });
        let mut digest = Digest::new();
        for plan in &plans {
            digest.update(plan.as_deref().expect("every request served"));
        }
        digest.0
    };

    let mut reference = None;
    for &workers in &WORKERS {
        let digest = digest_for(workers);
        match reference {
            None => reference = Some(digest),
            Some(expected) => assert_eq!(
                digest, expected,
                "plans diverged between 1 and {workers} workers"
            ),
        }
    }
    reference.expect("at least one worker count")
}

fn main() {
    let mut out_path = "BENCH_scale.json".to_string();
    let mut deterministic = false;
    let mut max_services = usize::MAX;
    for arg in std::env::args().skip(1) {
        if arg == "--deterministic" {
            deterministic = true;
        } else if let Some(cap) = arg.strip_prefix("--max=") {
            max_services = cap.parse().expect("--max=N takes an integer");
        } else {
            out_path = arg;
        }
    }
    let sizes: Vec<usize> = SIZES
        .iter()
        .copied()
        .filter(|&s| s <= max_services)
        .collect();

    // Warm-up so code pages and allocator state don't bill to the
    // first timed cell.
    let _ = run_cell(1_000, 0.0);

    let mut cells = Vec::new();
    for &size in &sizes {
        for &churn_rate in &CHURN_RATES {
            cells.push(run_cell(size, churn_rate));
        }
    }
    let worker_size = if sizes.contains(&10_000) {
        10_000
    } else {
        sizes.first().copied().unwrap_or(1_000)
    };
    let batch_digest = worker_digests(worker_size);

    let mut table = TextTable::new(vec![
        "services",
        "churn",
        "expanded",
        "rounds",
        "2L cold p50 us",
        "flat cold p50 us",
        "cold speedup",
        "2L warm p50 us",
        "flat warm p50 us",
    ]);
    for cell in &cells {
        table.row(vec![
            cell.services.to_string(),
            format!("{:.2}", cell.churn_rate),
            format!("{}/{}", cell.expanded_shards, cell.shards),
            cell.rounds.to_string(),
            format!("{:.1}", cell.two_cold.p50_us),
            if cell.flat_ran {
                format!("{:.1}", cell.flat_cold.p50_us)
            } else {
                "-".to_string()
            },
            if cell.flat_ran {
                format!("{:.2}x", cell.flat_cold.p50_us / cell.two_cold.p50_us)
            } else {
                "-".to_string()
            },
            format!("{:.1}", cell.two_warm.p50_us),
            if cell.flat_ran {
                format!("{:.1}", cell.flat_warm.p50_us)
            } else {
                "-".to_string()
            },
        ]);
    }
    println!("{}", table.render());

    let total_deviations: usize = cells.iter().map(|c| c.deviations).sum();
    let total_compared: usize = cells.iter().map(|c| c.compared).sum();
    assert_eq!(
        total_deviations, 0,
        "two-level plans deviated from the flat path in {total_deviations}/{total_compared} composes"
    );
    println!(
        "plan deviation: 0/{total_compared} compared composes, \
         worker digest {batch_digest:016x} invariant across 1/2/4/8 workers"
    );

    // The headline acceptance number: at 10^5 services / low churn, the
    // two-level cold compose must be at least 5x faster than flat.
    if !deterministic {
        if let Some(headline) = cells
            .iter()
            .find(|c| c.services == 100_000 && c.churn_rate == 0.25)
        {
            let speedup = headline.flat_cold.p50_us / headline.two_cold.p50_us;
            assert!(
                speedup >= 5.0,
                "expected >= 5x cold-compose speedup at 10^5 / low churn, measured {speedup:.2}x"
            );
            println!("cold-compose speedup at 10^5 / low churn: {speedup:.2}x");
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"registry_scale\",\n");
    json.push_str(&format!(
        "  \"sizes\": [{}],\n",
        sizes
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!("  \"deterministic\": {deterministic},\n"));
    json.push_str(&format!("  \"flat_max_services\": {FLAT_MAX_SERVICES},\n"));
    json.push_str("  \"workers_checked\": [1, 2, 4, 8],\n");
    json.push_str(&format!("  \"worker_digest\": \"{batch_digest:016x}\",\n"));
    json.push_str(&format!("  \"plan_deviations\": {total_deviations},\n"));
    json.push_str(&format!("  \"plans_compared\": {total_compared},\n"));
    json.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"services\": {}, \"churn_rate\": {:.2}, \"clusters\": {}, \"shards\": {}, \"expanded_shards\": {}, \"rounds\": {}, \"full_expansion\": {}, \"flat_ran\": {}, \"deviations\": {}, \"plan_digest\": \"{:016x}\"",
            cell.services,
            cell.churn_rate,
            cell.clusters,
            cell.shards,
            cell.expanded_shards,
            cell.rounds,
            cell.full_expansion,
            cell.flat_ran,
            cell.deviations,
            cell.digest,
        ));
        if !deterministic {
            json.push_str(&format!(
                ", \"two_level\": {{\"cold_p50_us\": {:.1}, \"cold_p99_us\": {:.1}, \"warm_p50_us\": {:.1}, \"warm_p99_us\": {:.1}}}",
                cell.two_cold.p50_us, cell.two_cold.p99_us, cell.two_warm.p50_us, cell.two_warm.p99_us,
            ));
            if cell.flat_ran {
                json.push_str(&format!(
                    ", \"flat\": {{\"cold_p50_us\": {:.1}, \"cold_p99_us\": {:.1}, \"warm_p50_us\": {:.1}, \"warm_p99_us\": {:.1}}}, \"cold_speedup\": {:.2}",
                    cell.flat_cold.p50_us, cell.flat_cold.p99_us, cell.flat_warm.p50_us, cell.flat_warm.p99_us,
                    cell.flat_cold.p50_us / cell.two_cold.p50_us,
                ));
            }
        }
        json.push_str(&format!(
            "}}{}\n",
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write summary");
    println!("wrote {out_path}");
}
