//! E1 — regenerate **Table 1** of the paper: the round-by-round run of
//! the QoS selection algorithm on the Figure-6 scenario.
//!
//! ```text
//! cargo run -p qosc-bench --bin table1
//! ```

use qosc_core::SelectOptions;
use qosc_workload::paper;

fn main() {
    let scenario = paper::figure6_scenario(true);
    let composition = scenario
        .compose(&SelectOptions::default())
        .expect("paper scenario composes");

    println!("E1 — Table 1: results for each step of the path selection algorithm");
    println!();
    print!("{}", composition.selection.trace.to_table1_string());
    println!();

    match paper::verify_table1(&composition.selection.trace) {
        None => println!("VERDICT: trace matches the paper's Table 1 row-for-row."),
        Some(mismatch) => println!("VERDICT: MISMATCH — {mismatch}"),
    }

    let chain = composition.selection.chain.expect("receiver reached");
    println!(
        "final chain: {} @ {:.0} fps, satisfaction {} (paper: sender,T7,receiver @ 20 fps, 0.66)",
        chain.names().join(","),
        chain
            .steps
            .last()
            .unwrap()
            .params
            .get(qosc_media::Axis::FrameRate)
            .unwrap_or(0.0),
        qosc_bench::sat2(chain.satisfaction),
    );
}
