//! X13 — the overload scorecard: offered load × admission policy.
//!
//! Sweeps a seeded open-loop Poisson-burst arrival schedule
//! ([`poisson_burst_arrivals`]) over the strict 12 fps mesh at
//! 0.5×/1×/2×/4× of virtual capacity, serving each schedule through
//! [`serve_batch_with_admission`] under four policies:
//!
//! * `none`          — unbounded FIFO, fixed concurrency: the
//!   unprotected engine (what `serve_batch_resilient` does implicitly),
//! * `shed`          — deadline-aware shedding + bounded queue + AIMD
//!   adaptive concurrency, one class,
//! * `shed_priority` — plus strict-priority Interactive/Standard/
//!   Background queues,
//! * `full`          — plus brown-out coupling into the degradation
//!   ladder (sustained pressure lowers the starting rung; degraded
//!   compositions are cheaper and drain the queue).
//!
//! Emits `BENCH_overload.json` (first CLI argument overrides the
//! path). Admission runs on a virtual clock and composition is
//! deterministic, so the file is byte-identical across runs and worker
//! counts, and CI snapshots it.
//!
//! Expected shape: at sub-saturation every policy is equivalent (and
//! plans are bitwise identical to the unprotected run — admission is a
//! front-end). Past saturation the unprotected queue grows without
//! bound and interactive goodput collapses; shed keeps goodput near
//! capacity; priority protects the interactive class specifically; and
//! brown-out holds interactive goodput ≥ 0.9 at 4× offered load.

use qosc_bench::TextTable;
use qosc_core::{
    serve_batch_with_admission, AdmissionConfig, CompositionRequest, PriorityClass,
    ResilientEngineConfig,
};
use qosc_media::Axis;
use qosc_satisfaction::{AxisPreference, SatisfactionFn, SatisfactionProfile};
use qosc_workload::arrivals::{poisson_burst_arrivals, ArrivalPattern};
use qosc_workload::generator::{random_scenario, GeneratorConfig};
use qosc_workload::Scenario;

const TOPOLOGY_SEED: u64 = 5;
const ARRIVAL_SEEDS: [u64; 3] = [41, 42, 43];
/// Offered load as a percentage of virtual capacity.
const LOADS: [(&str, u64); 4] = [("0.5x", 50), ("1x", 100), ("2x", 200), ("4x", 400)];
const POLICIES: [&str; 4] = ["none", "shed", "shed_priority", "full"];
const VIRTUAL_CORES: u32 = 4;
const MEAN_COST_US: u64 = 20_000;

fn generator_config() -> GeneratorConfig {
    GeneratorConfig {
        services_per_layer: 5,
        multi_axis: true,
        ..GeneratorConfig::default()
    }
}

/// The resilience-scorecard mesh with the strict user (12 fps floor,
/// weight 3) — brown-out visibly rescores what it serves.
fn strict_scenario() -> Scenario {
    let mut scenario = random_scenario(&generator_config(), TOPOLOGY_SEED);
    scenario.profiles.user.satisfaction = SatisfactionProfile::new()
        .with(AxisPreference::weighted(
            Axis::FrameRate,
            SatisfactionFn::Linear {
                min_acceptable: 12.0,
                ideal: 30.0,
            },
            3.0,
        ))
        .with(AxisPreference::weighted(
            Axis::PixelCount,
            SatisfactionFn::Linear {
                min_acceptable: 0.0,
                ideal: 307_200.0,
            },
            1.0,
        ));
    scenario
}

fn policy_config(policy: &str) -> AdmissionConfig {
    let base = match policy {
        "none" => AdmissionConfig::unprotected(),
        "shed" => AdmissionConfig::shed_only(),
        "shed_priority" => AdmissionConfig::shed_priority(),
        "full" => AdmissionConfig::protected(),
        other => panic!("unknown policy {other}"),
    };
    AdmissionConfig {
        virtual_cores: VIRTUAL_CORES,
        initial_limit: VIRTUAL_CORES,
        max_limit: 8,
        ..base
    }
}

fn pattern_for(load_pct: u64) -> ArrivalPattern {
    // Virtual capacity in requests per second, de-rated for the burst
    // multiplier (mean rate = base rate × 1.2 with the default bursts).
    let capacity_per_sec = VIRTUAL_CORES as u64 * 1_000_000 / MEAN_COST_US;
    let target_mean = capacity_per_sec * load_pct / 100;
    ArrivalPattern {
        rate_per_sec: target_mean * 100 / 120,
        ..ArrivalPattern::default()
    }
}

struct Cell {
    load: &'static str,
    policy: &'static str,
    arrival_seed: u64,
    offered: usize,
    offered_interactive: usize,
    admitted: usize,
    shed_queue_full: usize,
    shed_predicted_late: usize,
    shed_queue_timeout: usize,
    served_full: usize,
    degraded: usize,
    failed: usize,
    deadline_misses: usize,
    goodput: f64,
    interactive_goodput: f64,
    interactive_p99_latency_us: u64,
    brownout_steps: u32,
    peak_rung: &'static str,
    final_limit: u32,
    limit_decreases: u32,
    mean_satisfaction: f64,
}

fn run_cell(load: &'static str, load_pct: u64, policy: &'static str, arrival_seed: u64) -> Cell {
    let scenario = strict_scenario();
    let composer = scenario.composer();
    let arrivals = poisson_burst_arrivals(&pattern_for(load_pct), arrival_seed);
    let requests: Vec<CompositionRequest> = arrivals
        .iter()
        .map(|_| CompositionRequest {
            profiles: scenario.profiles.clone(),
            sender_host: scenario.sender_host,
            receiver_host: scenario.receiver_host,
        })
        .collect();
    let config = ResilientEngineConfig {
        workers: 4,
        admission: policy_config(policy),
        ..ResilientEngineConfig::default()
    };
    let result = serve_batch_with_admission(&composer, &requests, &arrivals, &config);
    let counters = result.batch.counters();
    let stats = result.admission.stats;

    // A request is *good* when it was admitted, produced a plan, and
    // its virtual finish landed within its deadline budget.
    let good = |i: usize| {
        result.admission.decisions[i].deadline_met && result.batch.outcomes[i].plan.is_some()
    };
    let goodput =
        (0..arrivals.len()).filter(|&i| good(i)).count() as f64 / arrivals.len().max(1) as f64;

    let interactive: Vec<usize> = (0..arrivals.len())
        .filter(|&i| arrivals[i].priority == PriorityClass::Interactive)
        .collect();
    let interactive_good = interactive.iter().filter(|&&i| good(i)).count();
    let interactive_goodput = interactive_good as f64 / interactive.len().max(1) as f64;
    let mut interactive_latencies: Vec<u64> = interactive
        .iter()
        .filter(|&&i| result.admission.decisions[i].admitted)
        .map(|&i| result.admission.decisions[i].latency_us)
        .collect();
    interactive_latencies.sort_unstable();
    let interactive_p99_latency_us = if interactive_latencies.is_empty() {
        0
    } else {
        interactive_latencies[(interactive_latencies.len() * 99).div_ceil(100).max(1) - 1]
    };

    let served: Vec<&qosc_core::RequestOutcome> = result
        .batch
        .outcomes
        .iter()
        .filter(|o| o.plan.is_some())
        .collect();
    let mean_satisfaction = if served.is_empty() {
        0.0
    } else {
        served.iter().map(|o| o.satisfaction).sum::<f64>() / served.len() as f64
    };

    Cell {
        load,
        policy,
        arrival_seed,
        offered: arrivals.len(),
        offered_interactive: interactive.len(),
        admitted: stats.admitted,
        shed_queue_full: stats.shed_queue_full,
        shed_predicted_late: stats.shed_predicted_late,
        shed_queue_timeout: stats.shed_queue_timeout,
        served_full: counters.served,
        degraded: counters.degraded,
        failed: counters.failed,
        deadline_misses: stats.deadline_misses,
        goodput,
        interactive_goodput,
        interactive_p99_latency_us,
        brownout_steps: stats.brownout_steps,
        peak_rung: stats.peak_rung.label(),
        final_limit: stats.final_limit,
        limit_decreases: stats.limit_decreases,
        mean_satisfaction,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_overload.json".to_string());

    println!(
        "X13 — overload scorecard (topology seed {TOPOLOGY_SEED}, arrival seeds {ARRIVAL_SEEDS:?}, \
         capacity {} req/s)",
        VIRTUAL_CORES as u64 * 1_000_000 / MEAN_COST_US
    );
    println!();

    let mut cells: Vec<Cell> = Vec::new();
    for &(load, load_pct) in &LOADS {
        for &policy in &POLICIES {
            for &arrival_seed in &ARRIVAL_SEEDS {
                cells.push(run_cell(load, load_pct, policy, arrival_seed));
            }
        }
    }

    let mut table = TextTable::new([
        "load",
        "policy",
        "goodput",
        "interactive",
        "i p99 (ms)",
        "shed",
        "degraded",
        "limit",
    ]);
    let seeds = ARRIVAL_SEEDS.len() as f64;
    for &(load, _) in &LOADS {
        for &policy in &POLICIES {
            let group: Vec<&Cell> = cells
                .iter()
                .filter(|c| c.load == load && c.policy == policy)
                .collect();
            let shed: usize = group
                .iter()
                .map(|c| c.shed_queue_full + c.shed_predicted_late + c.shed_queue_timeout)
                .sum();
            let offered: usize = group.iter().map(|c| c.offered).sum();
            table.row([
                load.to_string(),
                policy.to_string(),
                format!(
                    "{:.3}",
                    group.iter().map(|c| c.goodput).sum::<f64>() / seeds
                ),
                format!(
                    "{:.3}",
                    group.iter().map(|c| c.interactive_goodput).sum::<f64>() / seeds
                ),
                format!(
                    "{:.1}",
                    group
                        .iter()
                        .map(|c| c.interactive_p99_latency_us as f64 / 1_000.0)
                        .sum::<f64>()
                        / seeds
                ),
                format!("{:.0}%", shed as f64 * 100.0 / offered.max(1) as f64),
                group.iter().map(|c| c.degraded).sum::<usize>().to_string(),
                group
                    .iter()
                    .map(|c| c.final_limit.to_string())
                    .collect::<Vec<_>>()
                    .join("/"),
            ]);
        }
    }
    println!("{}", table.render());

    let config = generator_config();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"overload_matrix\",\n");
    json.push_str(&format!(
        "  \"scenario\": {{\"topology_seed\": {TOPOLOGY_SEED}, \"layers\": {}, \"services_per_layer\": {}, \"formats_per_layer\": {}, \"multi_axis\": true, \"fps_floor\": 12.0}},\n",
        config.layers, config.services_per_layer, config.formats_per_layer
    ));
    json.push_str(&format!(
        "  \"capacity\": {{\"virtual_cores\": {VIRTUAL_CORES}, \"mean_cost_us\": {MEAN_COST_US}}},\n"
    ));
    json.push_str(&format!(
        "  \"arrival_seeds\": [{}],\n",
        ARRIVAL_SEEDS
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"load\": \"{}\", \"policy\": \"{}\", \"arrival_seed\": {}, \"offered\": {}, \"offered_interactive\": {}, \"admitted\": {}, \"shed_queue_full\": {}, \"shed_predicted_late\": {}, \"shed_queue_timeout\": {}, \"served_full\": {}, \"degraded\": {}, \"failed\": {}, \"deadline_misses\": {}, \"goodput\": {:.6}, \"interactive_goodput\": {:.6}, \"interactive_p99_latency_us\": {}, \"brownout_steps\": {}, \"peak_rung\": \"{}\", \"final_limit\": {}, \"limit_decreases\": {}, \"mean_satisfaction\": {:.6}}}{}\n",
            c.load,
            c.policy,
            c.arrival_seed,
            c.offered,
            c.offered_interactive,
            c.admitted,
            c.shed_queue_full,
            c.shed_predicted_late,
            c.shed_queue_timeout,
            c.served_full,
            c.degraded,
            c.failed,
            c.deadline_misses,
            c.goodput,
            c.interactive_goodput,
            c.interactive_p99_latency_us,
            c.brownout_steps,
            c.peak_rung,
            c.final_limit,
            c.limit_decreases,
            c.mean_satisfaction,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write scorecard");
    println!("wrote {out_path}");
}
