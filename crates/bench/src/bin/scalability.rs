//! X1 — scalability: wall-clock of graph construction and selection as
//! the service population grows ("finding such a path can be similar to
//! the problem of finding the shortest path … with similar complexity",
//! Section 4.4).
//!
//! ```text
//! cargo run -p qosc-bench --release --bin scalability
//! ```

use qosc_bench::TextTable;
use qosc_core::SelectOptions;
use qosc_workload::generator::{random_scenario, GeneratorConfig};
use std::time::Instant;

fn main() {
    println!("X1 — scalability of graph construction + selection");
    println!();

    let sizes = [10usize, 20, 50, 100, 200, 500, 1000, 2000];
    let repeats = 3;
    let options = SelectOptions {
        record_trace: false,
        ..SelectOptions::default()
    };

    let mut table = TextTable::new([
        "services",
        "graph edges",
        "rounds",
        "optimizations",
        "compose time (ms)",
        "found chain",
    ]);
    for &size in &sizes {
        let config = GeneratorConfig {
            layers: 4,
            formats_per_layer: 4,
            ..GeneratorConfig::default()
        }
        .with_total_services(size);
        let scenario = random_scenario(&config, 7);
        let mut best_ms = f64::INFINITY;
        let mut last = None;
        for _ in 0..repeats {
            let start = Instant::now();
            let composition = scenario.compose(&options).expect("composes");
            best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
            last = Some(composition);
        }
        let composition = last.expect("at least one repeat");
        table.row([
            config.total_services().to_string(),
            composition.graph.edge_count().to_string(),
            composition.selection.rounds.to_string(),
            composition.selection.optimizations.to_string(),
            format!("{best_ms:.2}"),
            composition.selection.chain.is_some().to_string(),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!(
        "Expected shape: time grows near-linearly in the *edge* count \
         (heap-backed label-setting plus one single-source Dijkstra per \
         host for edge annotations) — 'similar complexity to shortest \
         path', as Section 4.4 claims. Pass \
         candidate_store = LinearScan to see the textbook O(V^2) variant."
    );
}
