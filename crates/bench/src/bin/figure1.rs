//! E2 — regenerate **Figure 1**: a satisfaction function for the frame
//! rate, with the minimum-acceptable and ideal markers.
//!
//! ```text
//! cargo run -p qosc-bench --bin figure1
//! ```

use qosc_bench::TextTable;
use qosc_satisfaction::SatisfactionFn;

fn main() {
    println!("E2 — Figure 1: satisfaction functions for the frame-rate parameter");
    println!();

    // The shape Table 1 implies (linear, M = 0, I = 30) and the shape
    // Figure 1 sketches (a ramp starting at a non-zero minimum around
    // 5 fps saturating near 20), plus a diminishing-returns variant.
    let functions: [(&str, SatisfactionFn); 3] = [
        (
            "table1-linear (M=0, I=30)",
            SatisfactionFn::paper_frame_rate(),
        ),
        (
            "figure1-ramp (M=5, I=20)",
            SatisfactionFn::Linear {
                min_acceptable: 5.0,
                ideal: 20.0,
            },
        ),
        (
            "saturating (M=5, I=30, scale=8)",
            SatisfactionFn::Saturating {
                min_acceptable: 5.0,
                ideal: 30.0,
                scale: 8.0,
            },
        ),
    ];

    let mut table = TextTable::new(
        ["fps".to_string()]
            .into_iter()
            .chain(functions.iter().map(|(n, _)| n.to_string())),
    );
    for fps in (0..=30).step_by(2) {
        let mut row = vec![fps.to_string()];
        for (_, f) in &functions {
            row.push(format!("{:.3}", f.eval(fps as f64)));
        }
        table.row(row);
    }
    print!("{}", table.render());

    println!();
    println!("ASCII sketch of the figure1-ramp function:");
    let ramp = &functions[1].1;
    for level in (0..=10).rev() {
        let threshold = level as f64 / 10.0;
        let mut line = String::new();
        for fps in 0..=24 {
            let s = ramp.eval(fps as f64);
            line.push(if s + 1e-9 >= threshold && s < threshold + 0.1 + 1e-9 {
                '*'
            } else if level == 0 {
                '-'
            } else {
                ' '
            });
        }
        println!("{:>4.1} |{line}", threshold);
    }
    println!("      0    5    10   15   20  fps (M=5 → sat 0, I=20 → sat 1)");
    println!();
    println!(
        "table1 checkpoints: 30→{} 27→{} 23→{} 20→{}",
        qosc_bench::sat2(functions[0].1.eval(30.0)),
        qosc_bench::sat2(functions[0].1.eval(27.0)),
        qosc_bench::sat2(functions[0].1.eval(23.0)),
        qosc_bench::sat2(functions[0].1.eval(20.0)),
    );
}
