//! E6 — verify **Figure 5**'s optimality argument empirically: on random
//! monotone scenarios, the greedy selection's final satisfaction equals
//! the exhaustive optimum. Reports a counterexample search.
//!
//! ```text
//! cargo run -p qosc-bench --bin figure5_optimality [--release]
//! ```

use qosc_bench::{run_algorithm, sat2, Algorithm, TextTable};
use qosc_core::SelectOptions;
use qosc_workload::generator::{random_scenario, GeneratorConfig};

fn main() {
    println!("E6 — Figure 5: greedy selection vs exhaustive optimum");
    println!();

    let shapes: [(&str, GeneratorConfig); 3] = [
        ("tiny (2 layers × 3)", GeneratorConfig::tiny()),
        ("default (3 layers × 4)", GeneratorConfig::default()),
        (
            "wide (2 layers × 6)",
            GeneratorConfig {
                layers: 2,
                services_per_layer: 6,
                formats_per_layer: 3,
                ..GeneratorConfig::default()
            },
        ),
    ];
    let seeds_per_shape = 40u64;
    let options = SelectOptions::default();

    let mut table = TextTable::new([
        "shape",
        "seeds",
        "solvable",
        "greedy = optimal",
        "counterexamples",
        "max |Δsat|",
    ]);
    let mut total_counterexamples = 0usize;
    for (name, config) in &shapes {
        let mut solvable = 0usize;
        let mut equal = 0usize;
        let mut counterexamples = 0usize;
        let mut max_gap = 0.0f64;
        for seed in 0..seeds_per_shape {
            let scenario = random_scenario(config, seed);
            let greedy = run_algorithm(&scenario, Algorithm::Greedy, &options)
                .expect("greedy runs")
                .chain;
            let exact = run_algorithm(&scenario, Algorithm::Exhaustive, &options)
                .expect("exhaustive runs")
                .chain;
            match (greedy, exact) {
                (Some(g), Some(e)) => {
                    solvable += 1;
                    let gap = (g.satisfaction - e.satisfaction).abs();
                    max_gap = max_gap.max(gap);
                    if gap < 1e-9 {
                        equal += 1;
                    } else {
                        counterexamples += 1;
                        println!(
                            "  counterexample: shape={name} seed={seed} greedy={} exact={}",
                            sat2(g.satisfaction),
                            sat2(e.satisfaction)
                        );
                    }
                }
                (None, None) => {}
                (g, e) => {
                    counterexamples += 1;
                    println!(
                        "  reachability mismatch: shape={name} seed={seed} greedy={} exact={}",
                        g.is_some(),
                        e.is_some()
                    );
                }
            }
        }
        total_counterexamples += counterexamples;
        table.row([
            name.to_string(),
            seeds_per_shape.to_string(),
            solvable.to_string(),
            format!("{equal}/{solvable}"),
            counterexamples.to_string(),
            format!("{max_gap:.2e}"),
        ]);
    }
    print!("{}", table.render());
    println!();
    if total_counterexamples == 0 {
        println!(
            "VERDICT: no counterexample found — the greedy selection matched the \
             exhaustive optimum on every solvable scenario (Figure 5's claim)."
        );
    } else {
        println!("VERDICT: {total_counterexamples} counterexample(s) found — see above.");
    }
}
