//! X4 — resilient data distribution: stream the Figure-6 content while
//! T7's host dies mid-session, with and without re-composition.
//!
//! ```text
//! cargo run -p qosc-bench --bin resilience
//! ```

use qosc_bench::TextTable;
use qosc_netsim::SimTime;
use qosc_pipeline::{run_resilient, FailureEvent, FailureSchedule, ResilienceConfig};
use qosc_workload::paper;

fn run(recompose: bool, preplan: bool) -> qosc_pipeline::ResilientRun {
    let mut scenario = paper::figure6_scenario(true);
    let t7_host = scenario
        .network
        .topology()
        .node_by_name("host-T7")
        .expect("figure-6 hosts are named");
    let schedule =
        FailureSchedule::new().at(SimTime::from_secs(10), FailureEvent::NodeDown(t7_host));
    let config = ResilienceConfig {
        total_duration: SimTime::from_secs(30),
        detection_timeout: SimTime::from_secs(1),
        recompose,
        preplan_backups: preplan,
        ..ResilienceConfig::default()
    };
    run_resilient(
        &scenario.formats,
        &scenario.services,
        &mut scenario.network,
        &scenario.profiles,
        scenario.sender_host,
        scenario.receiver_host,
        &schedule,
        &config,
    )
    .expect("resilient run completes")
}

fn main() {
    println!("X4 — resilience: T7's host fails at t = 10 s of a 30 s stream");
    println!();

    for (label, recompose, preplan) in [
        ("PRE-PLANNED BACKUP (100 ms failover)", true, true),
        ("REACTIVE RE-COMPOSITION (1 s detection)", true, false),
        ("NO RECOVERY", false, false),
    ] {
        let run = run(recompose, preplan);
        println!("=== {label} ===");
        let mut table =
            TextTable::new(["t (s)", "chain", "delivered fps", "measured satisfaction"]);
        for segment in &run.segments {
            table.row([
                format!(
                    "{:.0}–{:.0}",
                    segment.start.as_secs_f64(),
                    segment.start.as_secs_f64() + segment.duration.as_secs_f64()
                ),
                if segment.chain.is_empty() {
                    "(dark)".to_string()
                } else {
                    segment.chain.join(",")
                },
                format!("{:.1}", segment.report.delivered_fps),
                format!("{:.3}", segment.report.measured_satisfaction),
            ]);
        }
        print!("{}", table.render());
        println!(
            "re-compositions: {}  failovers: {}  recovery gap: {}  time-weighted satisfaction: {:.3}",
            run.recompositions,
            run.failovers,
            run.recovery_gap
                .map(|g| format!("{:.1} s", g.as_secs_f64()))
                .unwrap_or_else(|| "-".to_string()),
            run.mean_satisfaction
        );
        println!();
    }
    println!(
        "Expected shape: the pre-planned backup switches to the \
         sender,T10,receiver fallback within 100 ms; reactive recovery \
         pays the 1 s detection window before re-running selection; \
         without recovery everything after t = 10 s is lost."
    );
}
