//! X2 — satisfaction achieved by the paper's greedy QoS selection versus
//! network-metric baselines (fewest hops, widest path, cheapest path,
//! random walk) and the exhaustive optimum, over seeded random scenarios.
//!
//! ```text
//! cargo run -p qosc-bench --release --bin baselines
//! ```

use qosc_bench::{run_algorithm, Algorithm, TextTable};
use qosc_core::SelectOptions;
use qosc_workload::generator::{random_scenario, GeneratorConfig};

fn main() {
    println!("X2 — greedy QoS selection vs structural baselines");
    println!();

    let config = GeneratorConfig {
        layers: 3,
        services_per_layer: 5,
        formats_per_layer: 3,
        bandwidth_range: (8_000.0, 40_000.0),
        ..GeneratorConfig::default()
    };
    let seeds: Vec<u64> = (0..30).collect();
    let options = SelectOptions {
        record_trace: false,
        ..SelectOptions::default()
    };

    struct Tally {
        satisfaction_sum: f64,
        solved: usize,
        wins: usize, // strictly best among non-exhaustive algorithms
    }
    let mut tallies: Vec<(Algorithm, Tally)> = Algorithm::ALL
        .iter()
        .map(|&a| {
            (
                a,
                Tally {
                    satisfaction_sum: 0.0,
                    solved: 0,
                    wins: 0,
                },
            )
        })
        .collect();

    for &seed in &seeds {
        let scenario = random_scenario(&config, seed);
        let mut per_seed: Vec<(Algorithm, Option<f64>)> = Vec::new();
        for &algorithm in &Algorithm::ALL {
            let outcome = run_algorithm(&scenario, algorithm, &options).expect("runs");
            per_seed.push((algorithm, outcome.chain.map(|c| c.satisfaction)));
        }
        let best_heuristic = per_seed
            .iter()
            .filter(|(a, _)| *a != Algorithm::Exhaustive)
            .filter_map(|(_, s)| *s)
            .fold(f64::NEG_INFINITY, f64::max);
        for (i, (_, sat)) in per_seed.iter().enumerate() {
            if let Some(s) = sat {
                tallies[i].1.satisfaction_sum += s;
                tallies[i].1.solved += 1;
                if tallies[i].0 != Algorithm::Exhaustive && (s - best_heuristic).abs() < 1e-9 {
                    tallies[i].1.wins += 1;
                }
            }
        }
    }

    let mut table = TextTable::new(["algorithm", "solved", "mean satisfaction", "ties-for-best"]);
    for (algorithm, tally) in &tallies {
        let mean = if tally.solved > 0 {
            tally.satisfaction_sum / tally.solved as f64
        } else {
            0.0
        };
        table.row([
            algorithm.name().to_string(),
            format!("{}/{}", tally.solved, seeds.len()),
            format!("{mean:.3}"),
            if *algorithm == Algorithm::Exhaustive {
                "(reference)".to_string()
            } else {
                format!("{}/{}", tally.wins, seeds.len())
            },
        ]);
    }
    print!("{}", table.render());
    println!();
    println!(
        "Expected shape: greedy-qos ties the exhaustive optimum and dominates \
         every structural baseline; hop/width/price metrics leave satisfaction \
         on the table because they ignore the user's preferences (Section 4.4)."
    );
}
