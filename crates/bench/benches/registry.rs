//! Service-registry throughput: registration, format-indexed lookup and
//! lease expiry at population sizes the discovery substrate must sustain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qosc_media::{DomainVector, FormatRegistry, MediaKind};
use qosc_netsim::{Node, SimTime, Topology};
use qosc_profiles::{ConversionSpec, ServiceSpec};
use qosc_services::{ServiceRegistry, TranscoderDescriptor};

fn descriptors(n: usize) -> (FormatRegistry, Vec<TranscoderDescriptor>) {
    let mut formats = FormatRegistry::new();
    let mut topo = Topology::new();
    let host = topo.add_node(Node::unconstrained("host"));
    let descriptors = (0..n)
        .map(|i| {
            let input = format!("in{}", i % 16);
            let output = format!("out{}", i % 16);
            formats.register_abstract(&input, MediaKind::Video);
            formats.register_abstract(&output, MediaKind::Video);
            let spec = ServiceSpec::new(
                format!("svc{i}"),
                vec![ConversionSpec::new(input, output, DomainVector::new())],
            );
            TranscoderDescriptor::resolve(&spec, &formats, host).expect("resolves")
        })
        .collect();
    (formats, descriptors)
}

fn bench_registry(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry");
    for &n in &[100usize, 1000] {
        let (formats, descriptors) = descriptors(n);
        group.bench_with_input(BenchmarkId::new("register", n), &descriptors, |b, d| {
            b.iter(|| {
                let mut registry = ServiceRegistry::new();
                for descriptor in d {
                    registry.register(descriptor.clone(), SimTime::ZERO, 1_000_000);
                }
                registry
            })
        });

        let mut registry = ServiceRegistry::new();
        for descriptor in &descriptors {
            registry.register(descriptor.clone(), SimTime::ZERO, 1_000_000);
        }
        let format = formats.lookup("in3").expect("registered");
        group.bench_with_input(BenchmarkId::new("accepting", n), &registry, |b, r| {
            b.iter(|| r.accepting(format))
        });
        group.bench_with_input(BenchmarkId::new("expire_sweep", n), &registry, |b, r| {
            b.iter(|| r.clone().expire_leases(SimTime(2_000_000)))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_registry
}
criterion_main!(benches);
