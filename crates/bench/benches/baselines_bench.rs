//! Per-algorithm runtime on a fixed random scenario (backs X2's effort
//! column).

use criterion::{criterion_group, criterion_main, Criterion};
use qosc_bench::{run_algorithm, Algorithm};
use qosc_core::SelectOptions;
use qosc_workload::generator::{random_scenario, GeneratorConfig};

fn bench_algorithms(c: &mut Criterion) {
    let config = GeneratorConfig {
        layers: 3,
        services_per_layer: 5,
        formats_per_layer: 3,
        ..GeneratorConfig::default()
    };
    let scenario = random_scenario(&config, 11);
    let options = SelectOptions {
        record_trace: false,
        ..SelectOptions::default()
    };
    let mut group = c.benchmark_group("baselines");
    for algorithm in Algorithm::ALL {
        group.bench_function(algorithm.name(), |b| {
            b.iter(|| run_algorithm(&scenario, algorithm, &options).expect("runs"))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_algorithms
}
criterion_main!(benches);
