//! Adaptation-graph construction and pruning throughput (Section 4.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qosc_core::graph::prune::prune;
use qosc_core::graph::{build, BuildInput};
use qosc_workload::generator::{random_scenario, GeneratorConfig};

fn bench_build_and_prune(c: &mut Criterion) {
    let mut build_group = c.benchmark_group("graph/build");
    for &size in &[50usize, 200, 500] {
        let config = GeneratorConfig {
            layers: 4,
            formats_per_layer: 4,
            ..GeneratorConfig::default()
        }
        .with_total_services(size);
        let scenario = random_scenario(&config, 3);
        let variants = scenario
            .profiles
            .content
            .resolve(&scenario.formats)
            .expect("variants resolve");
        let decoders = scenario
            .profiles
            .device
            .resolve_decoders(&scenario.formats)
            .expect("decoders resolve");
        let caps = scenario.profiles.device.hardware.quality_caps();
        build_group.bench_with_input(BenchmarkId::from_parameter(size), &(), |b, _| {
            b.iter(|| {
                build::build(&BuildInput {
                    formats: &scenario.formats,
                    services: &scenario.services,
                    network: &scenario.network,
                    variants: &variants,
                    sender_host: scenario.sender_host,
                    receiver_host: scenario.receiver_host,
                    decoders: &decoders,
                    receiver_caps: caps,
                })
                .expect("builds")
            })
        });
    }
    build_group.finish();

    let mut prune_group = c.benchmark_group("graph/prune");
    for &size in &[50usize, 200, 500] {
        let config = GeneratorConfig {
            layers: 4,
            formats_per_layer: 4,
            ..GeneratorConfig::default()
        }
        .with_total_services(size);
        let scenario = random_scenario(&config, 3);
        let composition = scenario
            .compose(&qosc_core::SelectOptions {
                record_trace: false,
                ..Default::default()
            })
            .expect("composes");
        prune_group.bench_with_input(
            BenchmarkId::from_parameter(size),
            &composition.graph,
            |b, g| b.iter(|| prune(g).expect("prunes")),
        );
    }
    prune_group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_build_and_prune
}
criterion_main!(benches);
