//! Selection-algorithm runtime vs service count (backs experiment X1 and
//! the Table-1 scenario, E1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qosc_core::{Composer, CompositionCache, SelectOptions};
use qosc_workload::generator::{random_scenario, GeneratorConfig};
use qosc_workload::paper;

fn bench_paper_scenario(c: &mut Criterion) {
    let scenario = paper::figure6_scenario(true);
    let options = SelectOptions::default();
    c.bench_function("selection/table1_trace", |b| {
        b.iter(|| {
            let composition = scenario.compose(&options).expect("composes");
            assert!(composition.selection.chain.is_some());
            composition
        })
    });
}

fn bench_random_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection/services");
    let options = SelectOptions {
        record_trace: false,
        ..SelectOptions::default()
    };
    for &size in &[20usize, 50, 100, 200] {
        let config = GeneratorConfig {
            layers: 4,
            formats_per_layer: 4,
            ..GeneratorConfig::default()
        }
        .with_total_services(size);
        let scenario = random_scenario(&config, 7);
        group.bench_with_input(BenchmarkId::from_parameter(size), &scenario, |b, s| {
            b.iter(|| s.compose(&options).expect("composes"))
        });
    }
    group.finish();
}

fn bench_composition_cache(c: &mut Criterion) {
    let scenario = paper::figure6_scenario(true);
    let options = SelectOptions {
        record_trace: false,
        ..SelectOptions::default()
    };
    let composer = Composer {
        formats: &scenario.formats,
        services: &scenario.services,
        network: &scenario.network,
    };
    c.bench_function("selection/cache_cold", |b| {
        b.iter(|| {
            let mut cache = CompositionCache::new();
            cache
                .compose(
                    &composer,
                    &scenario.profiles,
                    scenario.sender_host,
                    scenario.receiver_host,
                    &options,
                )
                .expect("composes")
        })
    });
    let mut warm = CompositionCache::new();
    warm.compose(
        &composer,
        &scenario.profiles,
        scenario.sender_host,
        scenario.receiver_host,
        &options,
    )
    .expect("composes");
    c.bench_function("selection/cache_warm_hit", |b| {
        b.iter(|| {
            warm.compose(
                &composer,
                &scenario.profiles,
                scenario.sender_host,
                scenario.receiver_host,
                &options,
            )
            .expect("composes")
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_paper_scenario, bench_random_scaling, bench_composition_cache
}
criterion_main!(benches);
