//! Streaming-pipeline throughput: frames simulated per second of a
//! clean session and of a resilient run with one failure.

use criterion::{criterion_group, criterion_main, Criterion};
use qosc_core::SelectOptions;
use qosc_netsim::SimTime;
use qosc_pipeline::{
    run_resilient, run_session, FailureEvent, FailureSchedule, ResilienceConfig, SessionConfig,
};
use qosc_workload::paper;

fn bench_session(c: &mut Criterion) {
    c.bench_function("pipeline/session_10s", |b| {
        let scenario = paper::figure6_scenario(true);
        let composition = scenario
            .compose(&SelectOptions::default())
            .expect("composes");
        let plan = composition.plan.expect("chain");
        let profile = scenario.profiles.effective_satisfaction();
        b.iter(|| {
            let mut scenario = paper::figure6_scenario(true);
            run_session(
                &mut scenario.network,
                &scenario.services,
                &plan,
                &profile,
                &SessionConfig::default(),
            )
            .expect("session runs")
        })
    });
}

fn bench_resilient(c: &mut Criterion) {
    c.bench_function("pipeline/resilient_30s_one_failure", |b| {
        b.iter(|| {
            let mut scenario = paper::figure6_scenario(true);
            let t7 = scenario
                .network
                .topology()
                .node_by_name("host-T7")
                .expect("named host");
            let schedule =
                FailureSchedule::new().at(SimTime::from_secs(10), FailureEvent::NodeDown(t7));
            run_resilient(
                &scenario.formats,
                &scenario.services,
                &mut scenario.network,
                &scenario.profiles,
                scenario.sender_host,
                scenario.receiver_host,
                &schedule,
                &ResilienceConfig::default(),
            )
            .expect("resilient run completes")
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_session, bench_resilient
}
criterion_main!(benches);
