//! Greedy vs exhaustive runtime: where the exponential ground truth
//! stops being affordable (backs X1 and the Figure-5 verification, E6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qosc_bench::{run_algorithm, Algorithm};
use qosc_core::SelectOptions;
use qosc_workload::generator::{random_scenario, GeneratorConfig};

fn bench_crossover(c: &mut Criterion) {
    let options = SelectOptions {
        record_trace: false,
        ..SelectOptions::default()
    };
    for algorithm in [Algorithm::Greedy, Algorithm::Exhaustive] {
        let mut group = c.benchmark_group(format!(
            "vs/{}",
            match algorithm {
                Algorithm::Greedy => "greedy",
                _ => "exhaustive",
            }
        ));
        for &per_layer in &[3usize, 5, 7] {
            let config = GeneratorConfig {
                layers: 3,
                services_per_layer: per_layer,
                formats_per_layer: 3,
                ..GeneratorConfig::default()
            };
            let scenario = random_scenario(&config, 11);
            group.bench_with_input(
                BenchmarkId::from_parameter(per_layer * 3),
                &scenario,
                |b, s| b.iter(|| run_algorithm(s, algorithm, &options).expect("runs")),
            );
        }
        group.finish();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_crossover
}
criterion_main!(benches);
