//! The constrained parameter optimizer (Step 2/8 of Figure 4): fast path
//! vs constrained single-axis vs constrained multi-axis.

use criterion::{criterion_group, criterion_main, Criterion};
use qosc_media::{Axis, AxisDomain, BitrateModel, DomainVector, ParamVector};
use qosc_satisfaction::{
    optimize, AxisPreference, OptimizeOptions, Problem, SatisfactionFn, SatisfactionProfile,
};

fn single_axis_profile() -> SatisfactionProfile {
    SatisfactionProfile::paper_table1()
}

fn multi_axis_profile() -> SatisfactionProfile {
    SatisfactionProfile::new()
        .with(AxisPreference::new(
            Axis::FrameRate,
            SatisfactionFn::Linear {
                min_acceptable: 0.0,
                ideal: 30.0,
            },
        ))
        .with(AxisPreference::new(
            Axis::PixelCount,
            SatisfactionFn::Linear {
                min_acceptable: 0.0,
                ideal: 307_200.0,
            },
        ))
        .with(AxisPreference::new(
            Axis::ColorDepth,
            SatisfactionFn::Linear {
                min_acceptable: 0.0,
                ideal: 24.0,
            },
        ))
}

fn bench_optimizer(c: &mut Criterion) {
    let options = OptimizeOptions::default();
    let free = |_: &ParamVector| 0.0;

    // Fast path: unconstrained top.
    let profile = single_axis_profile();
    let domain = DomainVector::new().with(
        Axis::FrameRate,
        AxisDomain::Continuous {
            min: 0.0,
            max: 30.0,
        },
    );
    let bitrate = BitrateModel::LinearOnAxis {
        axis: Axis::FrameRate,
        slope: 1000.0,
    };
    c.bench_function("optimizer/fast_path", |b| {
        let p = Problem {
            profile: &profile,
            domain: &domain,
            bitrate: &bitrate,
            bandwidth_limit: f64::INFINITY,
            cost: &free,
            budget: f64::INFINITY,
        };
        b.iter(|| optimize(&p, &options).expect("feasible"))
    });

    // Constrained single axis: bisection to the exact boundary.
    c.bench_function("optimizer/single_axis_constrained", |b| {
        let p = Problem {
            profile: &profile,
            domain: &domain,
            bitrate: &bitrate,
            bandwidth_limit: 18_000.0,
            cost: &free,
            budget: f64::INFINITY,
        };
        b.iter(|| optimize(&p, &options).expect("feasible"))
    });

    // Constrained three-axis video: grid + coordinate ascent.
    let profile3 = multi_axis_profile();
    let domain3 = DomainVector::new()
        .with(
            Axis::FrameRate,
            AxisDomain::Continuous {
                min: 1.0,
                max: 30.0,
            },
        )
        .with(
            Axis::PixelCount,
            AxisDomain::Continuous {
                min: 19_200.0,
                max: 307_200.0,
            },
        )
        .with(
            Axis::ColorDepth,
            AxisDomain::Continuous {
                min: 4.0,
                max: 24.0,
            },
        );
    let video = BitrateModel::CompressedVideo {
        compression_ratio: 100.0,
    };
    c.bench_function("optimizer/three_axis_constrained", |b| {
        let p = Problem {
            profile: &profile3,
            domain: &domain3,
            bitrate: &video,
            bandwidth_limit: 400_000.0,
            cost: &free,
            budget: f64::INFINITY,
        };
        b.iter(|| optimize(&p, &options).expect("feasible"))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_optimizer
}
criterion_main!(benches);
