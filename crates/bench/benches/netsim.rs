//! Network-substrate throughput: routing, bandwidth queries,
//! reservations and event-queue operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qosc_netsim::generators::{random_waxman, LinkTemplate};
use qosc_netsim::{EventQueue, Network, SimTime};

fn bench_routing_and_bandwidth(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim");
    for &n in &[50usize, 200] {
        let (topo, nodes) = random_waxman(n, 0.4, 0.3, LinkTemplate::default(), 5);
        let network = Network::new(topo);
        let (a, b) = (nodes[0], nodes[n - 1]);
        group.bench_with_input(
            BenchmarkId::new("available_between", n),
            &network,
            |bch, net| bch.iter(|| net.available_between(a, b).expect("connected")),
        );

        let (topo2, nodes2) = random_waxman(n, 0.4, 0.3, LinkTemplate::default(), 5);
        group.bench_with_input(BenchmarkId::new("reserve_release", n), &(), |bch, _| {
            let mut net = Network::new(topo2.clone());
            bch.iter(|| {
                let id = net
                    .reserve_between(nodes2[0], nodes2[n - 1], 100.0)
                    .expect("headroom");
                net.release(id).expect("active");
            })
        });
    }
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("netsim/event_queue_10k", |b| {
        b.iter(|| {
            let mut queue: EventQueue<u64> = EventQueue::new();
            for i in 0..10_000u64 {
                // Scatter times deterministically.
                queue.schedule(SimTime((i * 7919) % 100_000), i);
            }
            let mut drained = 0u64;
            while queue.pop().is_some() {
                drained += 1;
            }
            drained
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_routing_and_bandwidth, bench_event_queue
}
criterion_main!(benches);
