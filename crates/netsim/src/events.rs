//! Discrete-event simulation core.
//!
//! A minimal, deterministic time-ordered event queue. The streaming
//! pipeline (`qosc-pipeline`) schedules frame departures, link arrivals
//! and failure injections on it. Events at the same timestamp pop in
//! insertion order (a monotone sequence number breaks ties), so runs are
//! reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation time in microseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds. Saturates at `u64::MAX`
    /// microseconds rather than overflowing on long-horizon runs (same
    /// discipline as `RetryPolicy`'s shift-guarded backoff).
    pub fn from_secs(secs: u64) -> SimTime {
        SimTime(secs.saturating_mul(1_000_000))
    }

    /// Construct from milliseconds. Saturates at `u64::MAX`
    /// microseconds.
    pub fn from_millis(ms: u64) -> SimTime {
        SimTime(ms.saturating_mul(1_000))
    }

    /// Microseconds since the start of the run.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This time advanced by `micros`.
    pub fn plus_micros(self, micros: u64) -> SimTime {
        SimTime(self.0.saturating_add(micros))
    }

    /// This time advanced by a float second count (rounded to µs).
    pub fn plus_secs_f64(self, secs: f64) -> SimTime {
        self.plus_micros((secs.max(0.0) * 1e6).round() as u64)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A deterministic time-ordered event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    now: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Entry<E>) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Entry<E>) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Entry<E>) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> EventQueue<E> {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time: the timestamp of the last popped
    /// event (or zero).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is
    /// clamped to `now` (the event fires immediately next pop).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let time = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Schedule `event` at `now + delay_micros`.
    pub fn schedule_in(&mut self, delay_micros: u64, event: E) {
        self.schedule(self.now.plus_micros(delay_micros), event);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(300), "c");
        q.schedule(SimTime(100), "a");
        q.schedule(SimTime(200), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), 1);
        q.schedule(SimTime(100), 2);
        q.schedule(SimTime(100), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(500), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop().unwrap();
        assert_eq!(q.now(), SimTime(500));
    }

    #[test]
    fn scheduling_in_past_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(1_000), "first");
        q.pop().unwrap();
        q.schedule(SimTime(10), "late");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "late");
        assert_eq!(t, SimTime(1_000), "clamped to now");
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(1_000), ());
        q.pop().unwrap();
        q.schedule_in(500, ());
        assert_eq!(q.peek_time(), Some(SimTime(1_500)));
    }

    #[test]
    fn sim_time_conversions() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime(1_500_000).as_secs_f64(), 1.5);
        assert_eq!(SimTime(100).plus_secs_f64(0.5), SimTime(500_100));
        assert_eq!(SimTime(100).to_string(), "0.000100s");
    }

    #[test]
    fn sim_time_constructors_saturate_at_extreme_values() {
        // Pre-fix these overflowed in release (wrapping) and panicked in
        // debug; now they clamp like `plus_micros`.
        assert_eq!(SimTime::from_secs(u64::MAX).as_micros(), u64::MAX);
        assert_eq!(SimTime::from_millis(u64::MAX).as_micros(), u64::MAX);
        assert_eq!(
            SimTime::from_secs(u64::MAX / 1_000_000 + 1).as_micros(),
            u64::MAX
        );
        // In-range values are exact.
        assert_eq!(
            SimTime::from_secs(u64::MAX / 1_000_000).as_micros(),
            (u64::MAX / 1_000_000) * 1_000_000
        );
        assert_eq!(SimTime(u64::MAX).plus_micros(1), SimTime(u64::MAX));
    }

    #[test]
    fn queue_survives_extreme_tick_values() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(u64::MAX), "end-of-time");
        q.schedule(SimTime(u64::MAX - 1), "almost");
        let (t1, e1) = q.pop().unwrap();
        assert_eq!((t1, e1), (SimTime(u64::MAX - 1), "almost"));
        // schedule_in from near-MAX saturates instead of wrapping past 0.
        q.schedule_in(u64::MAX, "saturated");
        let (t2, e2) = q.pop().unwrap();
        assert_eq!((t2, e2), (SimTime(u64::MAX), "end-of-time"));
        let (t3, e3) = q.pop().unwrap();
        assert_eq!((t3, e3), (SimTime(u64::MAX), "saturated"));
    }
}
