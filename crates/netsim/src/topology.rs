//! Nodes, links and the topology graph.

use crate::{NetError, Result};
use serde::{Deserialize, Serialize};

/// Dense identifier of a node within one [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index (valid only for the topology that produced it).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense identifier of a link within one [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub(crate) u32);

impl LinkId {
    /// Raw index (valid only for the topology that produced it).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An intermediate server (or end host) that can run trans-coding
/// services. The resource fields back the intermediary-profile entries
/// "available resources at the intermediary (such as CPU cycles, memory)"
/// (Section 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Human-readable name, e.g. `"proxy-3"`.
    pub name: String,
    /// Processing capacity in abstract MIPS (millions of instructions per
    /// second); trans-coding stages consume this.
    pub cpu_mips: f64,
    /// Memory capacity in bytes.
    pub memory_bytes: f64,
}

impl Node {
    /// A node with the given name and resources.
    pub fn new(name: impl Into<String>, cpu_mips: f64, memory_bytes: f64) -> Node {
        Node {
            name: name.into(),
            cpu_mips,
            memory_bytes,
        }
    }

    /// A generously provisioned node for scenarios where host resources
    /// are not the constraint under study.
    pub fn unconstrained(name: impl Into<String>) -> Node {
        Node::new(name, f64::INFINITY, f64::INFINITY)
    }
}

/// An undirected network link between two nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Capacity in bits per second.
    pub capacity_bps: f64,
    /// One-way propagation delay in microseconds.
    pub delay_us: u64,
    /// Packet-loss probability in `[0, 1]` (used by the pipeline, not by
    /// selection).
    pub loss: f64,
    /// Transmission price in monetary units per megabit, feeding the
    /// `transcoding_and_transmission_cost` of Figure 4, Step 6.
    pub price_per_mbit: f64,
    /// Flat transmission price per session crossing this link (connection
    /// set-up fee), same cost pool as `price_per_mbit`.
    pub price_flat: f64,
}

/// The network graph: nodes plus undirected links, with an adjacency
/// index for routing.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// adjacency[node] = (neighbor, link) pairs in insertion order.
    adjacency: Vec<Vec<(NodeId, LinkId)>>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self, node: Node) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("fewer than 2^32 nodes"));
        self.nodes.push(node);
        self.adjacency.push(Vec::new());
        id
    }

    /// Connect two nodes with a link. Errors on unknown endpoints, a
    /// self-loop, or non-physical parameters.
    pub fn connect(&mut self, link: Link) -> Result<LinkId> {
        self.check_node(link.a)?;
        self.check_node(link.b)?;
        if link.a == link.b {
            return Err(NetError::InvalidParameter(format!(
                "self-loop on node {:?}",
                link.a
            )));
        }
        // Deliberate negated comparison: NaN capacities must be rejected.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(link.capacity_bps > 0.0) {
            return Err(NetError::InvalidParameter(format!(
                "link capacity must be positive, got {}",
                link.capacity_bps
            )));
        }
        if !(0.0..=1.0).contains(&link.loss) {
            return Err(NetError::InvalidParameter(format!(
                "loss must be in [0, 1], got {}",
                link.loss
            )));
        }
        if link.price_per_mbit < 0.0 || link.price_flat < 0.0 {
            return Err(NetError::InvalidParameter(format!(
                "prices must be non-negative, got per_mbit {} flat {}",
                link.price_per_mbit, link.price_flat
            )));
        }
        let id = LinkId(u32::try_from(self.links.len()).expect("fewer than 2^32 links"));
        self.adjacency[link.a.index()].push((link.b, id));
        self.adjacency[link.b.index()].push((link.a, id));
        self.links.push(link);
        Ok(id)
    }

    /// Convenience: connect with default delay (1 ms), no loss, free
    /// transmission.
    pub fn connect_simple(&mut self, a: NodeId, b: NodeId, capacity_bps: f64) -> Result<LinkId> {
        self.connect(Link {
            a,
            b,
            capacity_bps,
            delay_us: 1_000,
            loss: 0.0,
            price_per_mbit: 0.0,
            price_flat: 0.0,
        })
    }

    /// The node for `id`.
    pub fn node(&self, id: NodeId) -> Result<&Node> {
        self.nodes.get(id.index()).ok_or(NetError::UnknownNode(id))
    }

    /// The link for `id`.
    pub fn link(&self, id: LinkId) -> Result<&Link> {
        self.links.get(id.index()).ok_or(NetError::UnknownLink(id))
    }

    /// Mutable link access (used by failure injection to degrade links).
    pub fn link_mut(&mut self, id: LinkId) -> Result<&mut Link> {
        self.links
            .get_mut(id.index())
            .ok_or(NetError::UnknownLink(id))
    }

    /// Neighbors of `node` as `(neighbor, link)` pairs, in insertion order.
    pub fn neighbors(&self, node: NodeId) -> &[(NodeId, LinkId)] {
        self.adjacency
            .get(node.index())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// All node ids in index order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All link ids in index order.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> {
        (0..self.links.len() as u32).map(LinkId)
    }

    /// Find a node by name (linear scan; topologies are small).
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| NodeId(i as u32))
    }

    fn check_node(&self, id: NodeId) -> Result<()> {
        if id.index() < self.nodes.len() {
            Ok(())
        } else {
            Err(NetError::UnknownNode(id))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_connect() {
        let mut t = Topology::new();
        let a = t.add_node(Node::unconstrained("a"));
        let b = t.add_node(Node::unconstrained("b"));
        let l = t.connect_simple(a, b, 1e6).unwrap();
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.link_count(), 1);
        assert_eq!(t.neighbors(a), &[(b, l)]);
        assert_eq!(t.neighbors(b), &[(a, l)]);
        assert_eq!(t.link(l).unwrap().capacity_bps, 1e6);
    }

    #[test]
    fn connect_rejects_bad_links() {
        let mut t = Topology::new();
        let a = t.add_node(Node::unconstrained("a"));
        let b = t.add_node(Node::unconstrained("b"));
        assert!(t.connect_simple(a, a, 1e6).is_err(), "self loop");
        assert!(t.connect_simple(a, NodeId(9), 1e6).is_err(), "unknown node");
        assert!(t.connect_simple(a, b, 0.0).is_err(), "zero capacity");
        assert!(t
            .connect(Link {
                a,
                b,
                capacity_bps: 1.0,
                delay_us: 0,
                loss: 1.5,
                price_per_mbit: 0.0,
                price_flat: 0.0
            })
            .is_err());
        assert!(t
            .connect(Link {
                a,
                b,
                capacity_bps: 1.0,
                delay_us: 0,
                loss: 0.0,
                price_per_mbit: -2.0,
                price_flat: 0.0
            })
            .is_err());
    }

    #[test]
    fn node_by_name() {
        let mut t = Topology::new();
        let a = t.add_node(Node::unconstrained("alpha"));
        assert_eq!(t.node_by_name("alpha"), Some(a));
        assert_eq!(t.node_by_name("beta"), None);
    }

    #[test]
    fn unknown_ids_error() {
        let t = Topology::new();
        assert!(t.node(NodeId(0)).is_err());
        assert!(t.link(LinkId(0)).is_err());
        assert!(t.neighbors(NodeId(3)).is_empty());
    }
}
