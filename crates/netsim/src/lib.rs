//! # qosc-netsim
//!
//! The network substrate of the `qosc` reproduction of *"A QoS-based
//! Service Composition for Content Adaptation"* (ICDE 2007).
//!
//! The paper's selection algorithm consumes one network primitive:
//! `Bandwidth_AvailableBetween(Ti, Tprev)` (Equa. 2) — the bandwidth
//! available between the intermediate server running one trans-coding
//! service and the server running the next, with "an unlimited amount of
//! bandwidth" between services on the same host (Section 4.3). The paper
//! ran on real proxies; we substitute a deterministic simulator that
//! provides exactly that query plus what the streaming pipeline needs:
//!
//! * [`Topology`] — nodes (intermediate servers with CPU/memory capacity)
//!   and links (capacity, propagation delay, loss, transmission price),
//! * [`routing`] — minimum-delay routes between nodes,
//! * [`Network`] — the facade: available bandwidth along a route
//!   (bottleneck of per-link headroom), reservations that consume
//!   capacity for admitted sessions, and seeded background-traffic
//!   dynamics so that bandwidth *fluctuates* over time (Section 3,
//!   "Network Profile"),
//! * [`events`] — a discrete-event core (time-ordered queue) the
//!   streaming pipeline schedules on.
//!
//! Determinism: all randomness is seeded (`StdRng`), all iteration is in
//! index order, so every experiment is reproducible bit-for-bit.

pub mod bandwidth;
pub mod dynamics;
pub mod events;
pub mod generators;
pub mod network;
pub mod routing;
pub mod topology;

pub use bandwidth::{Reservation, ReservationId};
pub use dynamics::BackgroundTraffic;
pub use events::{EventQueue, SimTime};
pub use network::{Network, PathAnnotation};
pub use routing::Route;
pub use topology::{Link, LinkId, Node, NodeId, Topology};

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// A node id was used with a topology it does not belong to.
    UnknownNode(NodeId),
    /// A link id was used with a topology it does not belong to.
    UnknownLink(LinkId),
    /// No route exists between two nodes (partitioned topology).
    NoRoute {
        /// Route origin.
        from: NodeId,
        /// Route destination.
        to: NodeId,
    },
    /// A reservation would exceed a link's available capacity.
    InsufficientBandwidth {
        /// The bottleneck link.
        link: LinkId,
        /// Bits per second requested.
        requested: f64,
        /// Bits per second available.
        available: f64,
    },
    /// A reservation id was released twice or never existed.
    UnknownReservation(ReservationId),
    /// A link or node was declared with a non-physical parameter.
    InvalidParameter(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::UnknownNode(id) => write!(f, "unknown node {id:?}"),
            NetError::UnknownLink(id) => write!(f, "unknown link {id:?}"),
            NetError::NoRoute { from, to } => write!(f, "no route from {from:?} to {to:?}"),
            NetError::InsufficientBandwidth {
                link,
                requested,
                available,
            } => write!(
                f,
                "link {link:?} cannot fit {requested} bit/s (available {available} bit/s)"
            ),
            NetError::UnknownReservation(id) => write!(f, "unknown reservation {id:?}"),
            NetError::InvalidParameter(detail) => write!(f, "invalid parameter: {detail}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NetError>;
