//! Topology generators for experiments.
//!
//! Every generator is seeded and deterministic. Link parameters are drawn
//! from a [`LinkTemplate`]: fixed values by default, uniform ranges when
//! the experiment wants heterogeneity.

use crate::topology::{Link, Node, NodeId, Topology};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Ranges link parameters are drawn from.
#[derive(Debug, Clone, Copy)]
pub struct LinkTemplate {
    /// Capacity range in bits per second (inclusive).
    pub capacity_bps: (f64, f64),
    /// Delay range in microseconds (inclusive).
    pub delay_us: (u64, u64),
    /// Loss-probability range.
    pub loss: (f64, f64),
    /// Price range in monetary units per megabit.
    pub price_per_mbit: (f64, f64),
}

impl Default for LinkTemplate {
    fn default() -> LinkTemplate {
        LinkTemplate {
            capacity_bps: (10e6, 100e6),
            delay_us: (1_000, 20_000),
            loss: (0.0, 0.0),
            price_per_mbit: (0.0, 0.0),
        }
    }
}

impl LinkTemplate {
    /// A homogeneous template: every link identical.
    pub fn fixed(capacity_bps: f64, delay_us: u64) -> LinkTemplate {
        LinkTemplate {
            capacity_bps: (capacity_bps, capacity_bps),
            delay_us: (delay_us, delay_us),
            loss: (0.0, 0.0),
            price_per_mbit: (0.0, 0.0),
        }
    }

    fn draw(&self, rng: &mut StdRng, a: NodeId, b: NodeId) -> Link {
        let range_f = |(lo, hi): (f64, f64), rng: &mut StdRng| {
            if hi > lo {
                rng.random_range(lo..=hi)
            } else {
                lo
            }
        };
        let delay = if self.delay_us.1 > self.delay_us.0 {
            rng.random_range(self.delay_us.0..=self.delay_us.1)
        } else {
            self.delay_us.0
        };
        Link {
            a,
            b,
            capacity_bps: range_f(self.capacity_bps, rng),
            delay_us: delay,
            loss: range_f(self.loss, rng),
            price_per_mbit: range_f(self.price_per_mbit, rng),
            price_flat: 0.0,
        }
    }
}

/// A chain `n0 — n1 — … — n(k-1)`: the paper's sender→proxies→receiver
/// delivery path in its simplest shape.
pub fn chain(k: usize, template: LinkTemplate, seed: u64) -> (Topology, Vec<NodeId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Topology::new();
    let nodes: Vec<NodeId> = (0..k)
        .map(|i| t.add_node(Node::new(format!("chain-{i}"), 2_000.0, 4e9)))
        .collect();
    for w in nodes.windows(2) {
        let link = template.draw(&mut rng, w[0], w[1]);
        t.connect(link).expect("valid generated link");
    }
    (t, nodes)
}

/// A star: one hub connected to `leaves` leaf nodes. Models a single
/// well-connected adaptation proxy serving many edge devices.
pub fn star(leaves: usize, template: LinkTemplate, seed: u64) -> (Topology, NodeId, Vec<NodeId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Topology::new();
    let hub = t.add_node(Node::new("hub", 10_000.0, 16e9));
    let leaf_ids: Vec<NodeId> = (0..leaves)
        .map(|i| t.add_node(Node::new(format!("leaf-{i}"), 500.0, 1e9)))
        .collect();
    for &leaf in &leaf_ids {
        let link = template.draw(&mut rng, hub, leaf);
        t.connect(link).expect("valid generated link");
    }
    (t, hub, leaf_ids)
}

/// A complete `fanout`-ary tree of the given `depth` (depth 0 = root
/// only). Models a hierarchical CDN / ISP aggregation network.
pub fn tree(
    depth: usize,
    fanout: usize,
    template: LinkTemplate,
    seed: u64,
) -> (Topology, Vec<NodeId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Topology::new();
    let root = t.add_node(Node::new("tree-0", 8_000.0, 16e9));
    let mut all = vec![root];
    let mut frontier = vec![root];
    for level in 1..=depth {
        let mut next = Vec::new();
        for &parent in &frontier {
            for _ in 0..fanout {
                let child = t.add_node(Node::new(
                    format!("tree-{}", all.len()),
                    (8_000.0 / level as f64).max(500.0),
                    4e9,
                ));
                let link = template.draw(&mut rng, parent, child);
                t.connect(link).expect("valid generated link");
                all.push(child);
                next.push(child);
            }
        }
        frontier = next;
    }
    (t, all)
}

/// A Waxman-style random graph: `n` nodes at random unit-square
/// positions, each pair connected with probability
/// `alpha × exp(−distance / (beta × √2))`. A spanning chain is added
/// first so the result is always connected.
pub fn random_waxman(
    n: usize,
    alpha: f64,
    beta: f64,
    template: LinkTemplate,
    seed: u64,
) -> (Topology, Vec<NodeId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Topology::new();
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| t.add_node(Node::new(format!("w{i}"), 2_000.0, 4e9)))
        .collect();
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
        .collect();
    // Connectivity backbone.
    for w in nodes.windows(2) {
        let link = template.draw(&mut rng, w[0], w[1]);
        t.connect(link).expect("valid generated link");
    }
    // Waxman extra edges.
    let max_dist = std::f64::consts::SQRT_2;
    for i in 0..n {
        for j in (i + 2)..n {
            let (xi, yi) = positions[i];
            let (xj, yj) = positions[j];
            let d = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt();
            let p = alpha * (-d / (beta * max_dist)).exp();
            if rng.random_range(0.0..1.0) < p {
                let link = template.draw(&mut rng, nodes[i], nodes[j]);
                t.connect(link).expect("valid generated link");
            }
        }
    }
    (t, nodes)
}

/// A dumbbell: `side` nodes on each end of a single shared bottleneck
/// link. The classic congestion topology.
pub fn dumbbell(
    side: usize,
    access_template: LinkTemplate,
    bottleneck_bps: f64,
    seed: u64,
) -> (Topology, Vec<NodeId>, Vec<NodeId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Topology::new();
    let left_router = t.add_node(Node::new("router-L", 4_000.0, 8e9));
    let right_router = t.add_node(Node::new("router-R", 4_000.0, 8e9));
    t.connect(Link {
        a: left_router,
        b: right_router,
        capacity_bps: bottleneck_bps,
        delay_us: 10_000,
        loss: 0.0,
        price_per_mbit: 0.0,
        price_flat: 0.0,
    })
    .expect("valid bottleneck");
    let mut left = Vec::new();
    let mut right = Vec::new();
    for i in 0..side {
        let l = t.add_node(Node::new(format!("L{i}"), 1_000.0, 2e9));
        let link = access_template.draw(&mut rng, l, left_router);
        t.connect(link).expect("valid generated link");
        left.push(l);
        let r = t.add_node(Node::new(format!("R{i}"), 1_000.0, 2e9));
        let link = access_template.draw(&mut rng, r, right_router);
        t.connect(link).expect("valid generated link");
        right.push(r);
    }
    (t, left, right)
}

/// A k-ary fat-tree (Al-Fares et al.): `k` pods, each with `k/2` edge and
/// `k/2` aggregation switches, `(k/2)²` core switches, and `k/2` hosts per
/// edge switch — `k³/4` hosts total. The canonical datacenter fabric for
/// cross-session contention experiments: every inter-pod path climbs
/// edge → aggregation → core and back down, so shared links appear at
/// every layer. `k` must be even and at least 2.
///
/// Returns `(topology, hosts, core_switches)`; hosts are ordered pod by
/// pod, edge by edge.
pub fn fat_tree(
    k: usize,
    host_template: LinkTemplate,
    fabric_template: LinkTemplate,
    seed: u64,
) -> (Topology, Vec<NodeId>, Vec<NodeId>) {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree arity must be even and >= 2"
    );
    let half = k / 2;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Topology::new();

    let cores: Vec<NodeId> = (0..half * half)
        .map(|i| t.add_node(Node::new(format!("core-{i}"), 8_000.0, 16e9)))
        .collect();
    let mut hosts = Vec::new();
    for pod in 0..k {
        let aggs: Vec<NodeId> = (0..half)
            .map(|j| t.add_node(Node::new(format!("agg-{pod}-{j}"), 8_000.0, 16e9)))
            .collect();
        let edges: Vec<NodeId> = (0..half)
            .map(|j| t.add_node(Node::new(format!("edge-{pod}-{j}"), 4_000.0, 8e9)))
            .collect();
        // Aggregation j uplinks to cores [j*half, (j+1)*half).
        for (j, &agg) in aggs.iter().enumerate() {
            for &core in &cores[j * half..(j + 1) * half] {
                let link = fabric_template.draw(&mut rng, agg, core);
                t.connect(link).expect("valid generated link");
            }
        }
        // Full bipartite edge ↔ aggregation inside the pod.
        for &edge in &edges {
            for &agg in &aggs {
                let link = fabric_template.draw(&mut rng, edge, agg);
                t.connect(link).expect("valid generated link");
            }
        }
        // Hosts hang off their edge switch.
        for (j, &edge) in edges.iter().enumerate() {
            for h in 0..half {
                let host = t.add_node(Node::new(format!("host-{pod}-{j}-{h}"), 1_000.0, 2e9));
                let link = host_template.draw(&mut rng, host, edge);
                t.connect(link).expect("valid generated link");
                hosts.push(host);
            }
        }
    }
    (t, hosts, cores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::min_delay_route;

    #[test]
    fn chain_shape() {
        let (t, nodes) = chain(5, LinkTemplate::fixed(1e6, 1_000), 0);
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.link_count(), 4);
        let r = min_delay_route(&t, nodes[0], nodes[4]).unwrap();
        assert_eq!(r.hop_count(), 4);
    }

    #[test]
    fn star_shape() {
        let (t, hub, leaves) = star(6, LinkTemplate::default(), 1);
        assert_eq!(t.node_count(), 7);
        assert_eq!(t.link_count(), 6);
        for leaf in leaves {
            let r = min_delay_route(&t, leaf, hub).unwrap();
            assert_eq!(r.hop_count(), 1);
        }
    }

    #[test]
    fn tree_shape() {
        let (t, nodes) = tree(3, 2, LinkTemplate::default(), 2);
        assert_eq!(nodes.len(), 1 + 2 + 4 + 8);
        assert_eq!(t.link_count(), nodes.len() - 1);
    }

    #[test]
    fn waxman_is_connected_and_deterministic() {
        let (t1, nodes) = random_waxman(20, 0.6, 0.4, LinkTemplate::default(), 9);
        let (t2, _) = random_waxman(20, 0.6, 0.4, LinkTemplate::default(), 9);
        assert_eq!(t1.link_count(), t2.link_count(), "same seed, same graph");
        assert!(t1.link_count() >= 19, "backbone guarantees connectivity");
        for &n in &nodes {
            assert!(min_delay_route(&t1, nodes[0], n).is_ok());
        }
    }

    #[test]
    fn fat_tree_shape_and_paths() {
        let fabric = LinkTemplate::fixed(10e6, 1_000);
        let access = LinkTemplate::fixed(1e6, 500);
        let (t, hosts, cores) = fat_tree(4, access, fabric, 7);
        // k=4: 16 hosts, 8 edge, 8 agg, 4 core.
        assert_eq!(hosts.len(), 16);
        assert_eq!(cores.len(), 4);
        assert_eq!(t.node_count(), 16 + 8 + 8 + 4);
        // 16 host links + 16 edge-agg + 16 agg-core.
        assert_eq!(t.link_count(), 48);
        // Same edge switch: host-edge-host.
        let r = min_delay_route(&t, hosts[0], hosts[1]).unwrap();
        assert_eq!(r.hop_count(), 2);
        // Different pods: up through core and back down.
        let r = min_delay_route(&t, hosts[0], hosts[15]).unwrap();
        assert_eq!(r.hop_count(), 6);
        // Deterministic for a fixed seed.
        let (t2, _, _) = fat_tree(4, access, fabric, 7);
        assert_eq!(t.link_count(), t2.link_count());
    }

    #[test]
    fn dumbbell_shares_bottleneck() {
        let (t, left, right) = dumbbell(3, LinkTemplate::fixed(10e6, 500), 1e6, 4);
        assert_eq!(t.node_count(), 2 + 6);
        let r = min_delay_route(&t, left[0], right[0]).unwrap();
        assert_eq!(r.hop_count(), 3, "access + bottleneck + access");
    }
}
