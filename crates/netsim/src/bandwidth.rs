//! Bandwidth accounting: directional reservations against link capacity.
//!
//! Links are **full duplex**: the two directions of a link have
//! independent capacity pools (a proxy's access link carries its inbound
//! stream and its outbound stream simultaneously). Admitted streaming
//! sessions consume capacity in the direction they cross each link; the
//! headroom the selection algorithm sees is `capacity − reserved −
//! background` for that direction. This module owns the reservation
//! ledger; background traffic lives in [`crate::dynamics`] and the facade
//! combining them is [`crate::network::Network`].

use crate::topology::LinkId;
use crate::{NetError, Result};
use std::collections::HashMap;

/// Direction of travel across an (undirected) link: `true` when going
/// from the link's `a` endpoint towards its `b` endpoint.
pub type LinkDirection = bool;

/// Handle to an active reservation, returned by
/// [`BandwidthLedger::reserve`]. Dropping the id without releasing leaks
/// the bandwidth deliberately — sessions are torn down explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReservationId(pub(crate) u64);

/// One admitted reservation.
#[derive(Debug, Clone, PartialEq)]
pub struct Reservation {
    /// Directed link crossings the reservation holds capacity on.
    pub hops: Vec<(LinkId, LinkDirection)>,
    /// Bits per second held on each crossing.
    pub rate_bps: f64,
}

/// Internal accounting resolution: micro-bps per bps. Totals are kept in
/// integer micro-bps so repeated reserve/release cycles cannot drift the
/// way f64 accumulation does; one micro-bps of quantization is far below
/// any rate the simulator reasons about.
const MICRO_BPS: f64 = 1e6;

/// Quantize a validated (non-negative, non-NaN) rate to micro-bps. The
/// same quantization runs on reserve and on release, so a release always
/// subtracts exactly what its reserve added. Rates beyond ~1.8e13 bps
/// saturate.
fn to_micro_bps(rate_bps: f64) -> u64 {
    (rate_bps * MICRO_BPS).round() as u64
}

/// The reservation ledger: per-direction totals plus per-reservation
/// records. Totals are integer micro-bps internally; the public facade
/// stays in f64 bps until callers migrate.
#[derive(Debug, Clone, Default)]
pub struct BandwidthLedger {
    reserved: HashMap<(LinkId, LinkDirection), u64>,
    reservations: HashMap<ReservationId, Reservation>,
    next_id: u64,
}

impl BandwidthLedger {
    /// An empty ledger.
    pub fn new() -> BandwidthLedger {
        BandwidthLedger::default()
    }

    /// Total bits per second currently reserved on `link` in `direction`.
    pub fn reserved_on(&self, link: LinkId, direction: LinkDirection) -> f64 {
        self.reserved.get(&(link, direction)).copied().unwrap_or(0) as f64 / MICRO_BPS
    }

    /// Record a reservation of `rate_bps` on every directed crossing in
    /// `hops`.
    ///
    /// The caller (the [`crate::network::Network`] facade) is responsible
    /// for checking headroom first; the ledger enforces only
    /// non-negativity of the rate.
    pub fn reserve(
        &mut self,
        hops: Vec<(LinkId, LinkDirection)>,
        rate_bps: f64,
    ) -> Result<ReservationId> {
        // Deliberate negated comparison: NaN rates must be rejected.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(rate_bps >= 0.0) {
            return Err(NetError::InvalidParameter(format!(
                "reservation rate must be non-negative, got {rate_bps}"
            )));
        }
        let id = ReservationId(self.next_id);
        self.next_id += 1;
        let quantized = to_micro_bps(rate_bps);
        for &hop in &hops {
            let total = self.reserved.entry(hop).or_insert(0);
            *total = total.saturating_add(quantized);
        }
        self.reservations.insert(id, Reservation { hops, rate_bps });
        Ok(id)
    }

    /// Release a reservation, returning the record. Errors on double
    /// release.
    pub fn release(&mut self, id: ReservationId) -> Result<Reservation> {
        let reservation = self
            .reservations
            .remove(&id)
            .ok_or(NetError::UnknownReservation(id))?;
        let quantized = to_micro_bps(reservation.rate_bps);
        for &hop in &reservation.hops {
            if let Some(total) = self.reserved.get_mut(&hop) {
                *total = total.saturating_sub(quantized);
                if *total == 0 {
                    self.reserved.remove(&hop);
                }
            }
        }
        Ok(reservation)
    }

    /// The record for an active reservation.
    pub fn get(&self, id: ReservationId) -> Option<&Reservation> {
        self.reservations.get(&id)
    }

    /// Number of active reservations.
    pub fn active_count(&self) -> usize {
        self.reservations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_accumulates_and_release_restores() {
        let mut ledger = BandwidthLedger::new();
        let l0 = LinkId(0);
        let l1 = LinkId(1);
        let a = ledger.reserve(vec![(l0, true), (l1, true)], 100.0).unwrap();
        let b = ledger.reserve(vec![(l0, true)], 50.0).unwrap();
        assert_eq!(ledger.reserved_on(l0, true), 150.0);
        assert_eq!(ledger.reserved_on(l1, true), 100.0);
        assert_eq!(ledger.active_count(), 2);

        ledger.release(a).unwrap();
        assert_eq!(ledger.reserved_on(l0, true), 50.0);
        assert_eq!(ledger.reserved_on(l1, true), 0.0);

        ledger.release(b).unwrap();
        assert_eq!(ledger.reserved_on(l0, true), 0.0);
        assert_eq!(ledger.active_count(), 0);
    }

    #[test]
    fn directions_are_independent_pools() {
        let mut ledger = BandwidthLedger::new();
        let l = LinkId(0);
        ledger.reserve(vec![(l, true)], 100.0).unwrap();
        ledger.reserve(vec![(l, false)], 70.0).unwrap();
        assert_eq!(ledger.reserved_on(l, true), 100.0);
        assert_eq!(ledger.reserved_on(l, false), 70.0);
    }

    #[test]
    fn double_release_errors() {
        let mut ledger = BandwidthLedger::new();
        let id = ledger.reserve(vec![(LinkId(0), true)], 10.0).unwrap();
        ledger.release(id).unwrap();
        assert!(matches!(
            ledger.release(id),
            Err(NetError::UnknownReservation(_))
        ));
    }

    #[test]
    fn negative_rate_rejected() {
        let mut ledger = BandwidthLedger::new();
        assert!(ledger.reserve(vec![(LinkId(0), true)], -1.0).is_err());
    }

    #[test]
    fn repeated_reserve_release_cycles_do_not_drift() {
        // f64 accumulation drifts when non-dyadic rates churn on top of a
        // long-lived reservation; integer micro-bps accounting must not.
        let mut ledger = BandwidthLedger::new();
        let l = LinkId(0);
        let base = ledger.reserve(vec![(l, true)], 0.1).unwrap();
        for _ in 0..10_000 {
            let id = ledger.reserve(vec![(l, true)], 0.3).unwrap();
            ledger.release(id).unwrap();
        }
        assert_eq!(ledger.reserved_on(l, true), 0.1);
        ledger.release(base).unwrap();
        assert_eq!(ledger.reserved_on(l, true), 0.0);
    }

    #[test]
    fn zero_rate_reservation_is_fine() {
        let mut ledger = BandwidthLedger::new();
        let id = ledger.reserve(vec![(LinkId(0), true)], 0.0).unwrap();
        assert_eq!(ledger.reserved_on(LinkId(0), true), 0.0);
        ledger.release(id).unwrap();
    }
}
