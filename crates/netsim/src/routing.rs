//! Minimum-delay routing.
//!
//! Content between two trans-coding services crosses the network along a
//! route; the bandwidth available between the two services is the
//! bottleneck headroom along that route. We route by minimum accumulated
//! propagation delay (Dijkstra), which matches how the paper treats the
//! network as a given delivery path rather than something the composition
//! algorithm chooses.

use crate::topology::{LinkId, NodeId, Topology};
use crate::{NetError, Result};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A route between two nodes: the links crossed, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Origin node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Links crossed in order from `from` to `to`; empty iff `from == to`.
    pub links: Vec<LinkId>,
    /// Nodes visited, `from` first and `to` last (`links.len() + 1`
    /// entries, or a single entry when `from == to`).
    pub nodes: Vec<NodeId>,
    /// Total propagation delay in microseconds.
    pub delay_us: u64,
}

impl Route {
    /// Number of hops.
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }

    /// The directed link crossings of this route: for each link, `true`
    /// when crossed from its `a` endpoint towards its `b` endpoint.
    /// Links are full duplex, so bandwidth accounting is per direction.
    pub fn directed_hops(&self, topology: &Topology) -> Vec<(LinkId, bool)> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, &link)| {
                let spec = topology.link(link).expect("route links are valid");
                (link, spec.a == self.nodes[i])
            })
            .collect()
    }
}

/// Compute the minimum-delay route between two nodes, or
/// [`NetError::NoRoute`] if the topology is partitioned between them.
///
/// Deterministic: ties are broken by node index via the heap's secondary
/// key.
pub fn min_delay_route(topology: &Topology, from: NodeId, to: NodeId) -> Result<Route> {
    min_delay_route_filtered(topology, from, to, &|_| true, &|_| true)
}

/// [`min_delay_route`] restricted to links and nodes the predicates admit.
/// Used by the failure-aware [`crate::network::Network`] facade: a failed
/// node or link is simply filtered out of the search.
pub fn min_delay_route_filtered(
    topology: &Topology,
    from: NodeId,
    to: NodeId,
    link_ok: &dyn Fn(LinkId) -> bool,
    node_ok: &dyn Fn(NodeId) -> bool,
) -> Result<Route> {
    topology.node(from)?;
    topology.node(to)?;
    if from == to {
        return Ok(Route {
            from,
            to,
            links: Vec::new(),
            nodes: vec![from],
            delay_us: 0,
        });
    }
    if !node_ok(from) || !node_ok(to) {
        return Err(NetError::NoRoute { from, to });
    }

    let n = topology.node_count();
    let mut dist = vec![u64::MAX; n];
    let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    dist[from.index()] = 0;
    heap.push(Reverse((0, from.0)));

    while let Some(Reverse((d, node_raw))) = heap.pop() {
        let node = NodeId(node_raw);
        if d > dist[node.index()] {
            continue;
        }
        if node == to {
            break;
        }
        for &(neighbor, link) in topology.neighbors(node) {
            if !link_ok(link) || !node_ok(neighbor) {
                continue;
            }
            let delay = topology
                .link(link)
                .expect("adjacency is consistent")
                .delay_us;
            let next = d.saturating_add(delay);
            if next < dist[neighbor.index()] {
                dist[neighbor.index()] = next;
                prev[neighbor.index()] = Some((node, link));
                heap.push(Reverse((next, neighbor.0)));
            }
        }
    }

    if dist[to.index()] == u64::MAX {
        return Err(NetError::NoRoute { from, to });
    }

    let mut links = Vec::new();
    let mut nodes = vec![to];
    let mut cursor = to;
    while cursor != from {
        let (parent, link) = prev[cursor.index()].expect("reached node has a parent");
        links.push(link);
        nodes.push(parent);
        cursor = parent;
    }
    links.reverse();
    nodes.reverse();
    Ok(Route {
        from,
        to,
        links,
        nodes,
        delay_us: dist[to.index()],
    })
}

/// All-pairs minimum-delay routes from one origin (single Dijkstra run),
/// as a parent table. Used by experiment sweeps that query many
/// destinations.
pub fn route_table(topology: &Topology, from: NodeId) -> Result<Vec<Option<(NodeId, LinkId)>>> {
    topology.node(from)?;
    let n = topology.node_count();
    let mut dist = vec![u64::MAX; n];
    let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    dist[from.index()] = 0;
    heap.push(Reverse((0, from.0)));
    while let Some(Reverse((d, node_raw))) = heap.pop() {
        let node = NodeId(node_raw);
        if d > dist[node.index()] {
            continue;
        }
        for &(neighbor, link) in topology.neighbors(node) {
            let delay = topology
                .link(link)
                .expect("adjacency is consistent")
                .delay_us;
            let next = d.saturating_add(delay);
            if next < dist[neighbor.index()] {
                dist[neighbor.index()] = next;
                prev[neighbor.index()] = Some((node, link));
                heap.push(Reverse((next, neighbor.0)));
            }
        }
    }
    Ok(prev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Link, Node};

    fn line(n: usize, delay_us: u64) -> (Topology, Vec<NodeId>) {
        let mut t = Topology::new();
        let nodes: Vec<NodeId> = (0..n)
            .map(|i| t.add_node(Node::unconstrained(format!("n{i}"))))
            .collect();
        for w in nodes.windows(2) {
            t.connect(Link {
                a: w[0],
                b: w[1],
                capacity_bps: 1e6,
                delay_us,
                loss: 0.0,
                price_per_mbit: 0.0,
                price_flat: 0.0,
            })
            .unwrap();
        }
        (t, nodes)
    }

    #[test]
    fn trivial_route_to_self() {
        let (t, nodes) = line(2, 100);
        let r = min_delay_route(&t, nodes[0], nodes[0]).unwrap();
        assert_eq!(r.hop_count(), 0);
        assert_eq!(r.delay_us, 0);
    }

    #[test]
    fn line_route_accumulates_delay() {
        let (t, nodes) = line(4, 250);
        let r = min_delay_route(&t, nodes[0], nodes[3]).unwrap();
        assert_eq!(r.hop_count(), 3);
        assert_eq!(r.delay_us, 750);
    }

    #[test]
    fn prefers_lower_delay_over_fewer_hops() {
        let mut t = Topology::new();
        let a = t.add_node(Node::unconstrained("a"));
        let b = t.add_node(Node::unconstrained("b"));
        let c = t.add_node(Node::unconstrained("c"));
        // Direct a-c link is slow; a-b-c is faster in total.
        t.connect(Link {
            a,
            b: c,
            capacity_bps: 1e6,
            delay_us: 10_000,
            loss: 0.0,
            price_per_mbit: 0.0,
            price_flat: 0.0,
        })
        .unwrap();
        t.connect(Link {
            a,
            b,
            capacity_bps: 1e6,
            delay_us: 2_000,
            loss: 0.0,
            price_per_mbit: 0.0,
            price_flat: 0.0,
        })
        .unwrap();
        t.connect(Link {
            a: b,
            b: c,
            capacity_bps: 1e6,
            delay_us: 2_000,
            loss: 0.0,
            price_per_mbit: 0.0,
            price_flat: 0.0,
        })
        .unwrap();
        let r = min_delay_route(&t, a, c).unwrap();
        assert_eq!(r.hop_count(), 2);
        assert_eq!(r.delay_us, 4_000);
    }

    #[test]
    fn partition_is_no_route() {
        let mut t = Topology::new();
        let a = t.add_node(Node::unconstrained("a"));
        let b = t.add_node(Node::unconstrained("b"));
        assert_eq!(
            min_delay_route(&t, a, b),
            Err(NetError::NoRoute { from: a, to: b })
        );
    }

    #[test]
    fn route_table_matches_single_route() {
        let (t, nodes) = line(5, 100);
        let table = route_table(&t, nodes[0]).unwrap();
        // Walk back from node 4.
        let mut hops = 0;
        let mut cursor = nodes[4];
        while cursor != nodes[0] {
            let (parent, _) = table[cursor.index()].unwrap();
            cursor = parent;
            hops += 1;
        }
        assert_eq!(hops, 4);
    }
}
