//! The network facade.
//!
//! [`Network`] combines the static [`Topology`], the reservation ledger,
//! the background-traffic process and a failure set into the two queries
//! the rest of the framework needs:
//!
//! * [`Network::available_between`] — `Bandwidth_AvailableBetween(a, b)`
//!   of Equa. 2: ∞ on the same host, otherwise the bottleneck headroom
//!   along the current minimum-delay route, avoiding failed elements;
//! * [`Network::reserve_between`] — admit a session at a rate, consuming
//!   headroom for subsequent queries.

use crate::bandwidth::{BandwidthLedger, ReservationId};
use crate::dynamics::{BackgroundTraffic, TrafficConfig};
use crate::routing::{min_delay_route_filtered, Route};
use crate::topology::{LinkId, NodeId, Topology};
use crate::{NetError, Result};
use std::collections::HashSet;

/// Everything the composer needs to know about the min-delay path from
/// one node to another, computed in bulk by
/// [`Network::path_annotations_from`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathAnnotation {
    /// Bottleneck available bandwidth along the path, bits per second.
    pub available_bps: f64,
    /// Total one-way delay, microseconds.
    pub delay_us: u64,
    /// Sum of flat per-session link prices.
    pub price_flat: f64,
    /// Sum of per-megabit link prices.
    pub price_per_mbit: f64,
}

/// Live network state: topology + reservations + background traffic +
/// failures.
///
/// ```
/// use qosc_netsim::{Network, Node, Topology};
///
/// let mut topo = Topology::new();
/// let a = topo.add_node(Node::unconstrained("a"));
/// let b = topo.add_node(Node::unconstrained("b"));
/// topo.connect_simple(a, b, 1_000_000.0).unwrap();
/// let mut net = Network::new(topo);
///
/// assert_eq!(net.available_between(a, b).unwrap(), 1_000_000.0);
/// assert_eq!(net.available_between(a, a).unwrap(), f64::INFINITY); // same host
/// let session = net.reserve_between(a, b, 600_000.0).unwrap();
/// assert_eq!(net.available_between(a, b).unwrap(), 400_000.0);
/// net.release(session).unwrap();
/// ```
#[derive(Debug)]
pub struct Network {
    topology: Topology,
    ledger: BandwidthLedger,
    background: BackgroundTraffic,
    failed_nodes: HashSet<NodeId>,
    failed_links: HashSet<LinkId>,
    /// Bumped by every mutation that can change routing, headroom or
    /// failure answers (see [`Network::version`]).
    version: u64,
}

impl Network {
    /// A network over `topology` with no background traffic (static
    /// bandwidth, like the paper's worked example).
    pub fn new(topology: Topology) -> Network {
        let background = BackgroundTraffic::quiescent(topology.link_count());
        Network {
            topology,
            ledger: BandwidthLedger::new(),
            background,
            failed_nodes: HashSet::new(),
            failed_links: HashSet::new(),
            version: 0,
        }
    }

    /// A network with seeded background-traffic fluctuation.
    pub fn with_background(topology: Topology, config: TrafficConfig, seed: u64) -> Network {
        let background = BackgroundTraffic::new(topology.link_count(), config, seed);
        Network {
            topology,
            ledger: BandwidthLedger::new(),
            background,
            failed_nodes: HashSet::new(),
            failed_links: HashSet::new(),
            version: 0,
        }
    }

    /// Monotone state version: bumped by every mutation that can change
    /// what [`Network::available_between`], [`Network::route_between`],
    /// [`Network::path_annotations_from`] or [`Network::node_failed`]
    /// would answer — reservations and releases, background-traffic
    /// steps, node/link failures and restorations, and any handout of
    /// mutable topology or background access (which is assumed used).
    /// Two equal versions on the same instance therefore guarantee
    /// identical edge annotations, so graph stores and plan caches can
    /// revalidate with one integer compare instead of a rescan.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable topology access, for experiments that degrade links in
    /// place (loss injection, capacity changes). Reservations and
    /// failure state are unaffected.
    pub fn topology_mut(&mut self) -> &mut Topology {
        // Handing out `&mut Topology` is assumed to mutate: bumping on
        // access keeps `version()` conservative (a spurious bump costs
        // one revalidation; a missed one would serve stale answers).
        self.version += 1;
        &mut self.topology
    }

    /// Headroom of one link direction right now: `capacity × (1 −
    /// background) − reserved`, floored at zero; zero if the link (or an
    /// endpoint) has failed. Links are full duplex: each direction has
    /// its own capacity pool.
    pub fn link_headroom(&self, link: LinkId, direction: bool) -> Result<f64> {
        let spec = self.topology.link(link)?;
        if self.failed_links.contains(&link)
            || self.failed_nodes.contains(&spec.a)
            || self.failed_nodes.contains(&spec.b)
        {
            return Ok(0.0);
        }
        let usable = spec.capacity_bps * (1.0 - self.background.utilization(link));
        Ok((usable - self.ledger.reserved_on(link, direction)).max(0.0))
    }

    /// The current minimum-delay route between two nodes, avoiding failed
    /// nodes and links.
    pub fn route_between(&self, a: NodeId, b: NodeId) -> Result<Route> {
        min_delay_route_filtered(
            &self.topology,
            a,
            b,
            &|l| !self.failed_links.contains(&l),
            &|n| !self.failed_nodes.contains(&n),
        )
    }

    /// `Bandwidth_AvailableBetween(a, b)`: infinite on the same host
    /// (Section 4.3), otherwise the bottleneck headroom along the
    /// current route. Errors when no route survives the failure set.
    pub fn available_between(&self, a: NodeId, b: NodeId) -> Result<f64> {
        if a == b {
            self.topology.node(a)?;
            return Ok(f64::INFINITY);
        }
        let route = self.route_between(a, b)?;
        let mut bottleneck = f64::INFINITY;
        for (link, direction) in route.directed_hops(&self.topology) {
            bottleneck = bottleneck.min(self.link_headroom(link, direction)?);
        }
        Ok(bottleneck)
    }

    /// One-way delay between two nodes along the current route, in
    /// microseconds. Zero on the same host.
    pub fn delay_between_us(&self, a: NodeId, b: NodeId) -> Result<u64> {
        if a == b {
            self.topology.node(a)?;
            return Ok(0);
        }
        Ok(self.route_between(a, b)?.delay_us)
    }

    /// Transmission price between two nodes: the sum of per-link prices
    /// along the route, in monetary units per megabit. Zero on the same
    /// host.
    pub fn price_per_mbit_between(&self, a: NodeId, b: NodeId) -> Result<f64> {
        if a == b {
            self.topology.node(a)?;
            return Ok(0.0);
        }
        let route = self.route_between(a, b)?;
        let mut price = 0.0;
        for &link in &route.links {
            price += self.topology.link(link)?.price_per_mbit;
        }
        Ok(price)
    }

    /// Transmission price between two nodes as `(flat, per_mbit)`: the
    /// session crossing the route pays `flat + per_mbit × rate/10⁶` per
    /// second. `(0, 0)` on the same host.
    pub fn transmission_price_between(&self, a: NodeId, b: NodeId) -> Result<(f64, f64)> {
        if a == b {
            self.topology.node(a)?;
            return Ok((0.0, 0.0));
        }
        let route = self.route_between(a, b)?;
        let mut flat = 0.0;
        let mut per_mbit = 0.0;
        for &link in &route.links {
            let spec = self.topology.link(link)?;
            flat += spec.price_flat;
            per_mbit += spec.price_per_mbit;
        }
        Ok((flat, per_mbit))
    }

    /// Single-source path annotations: for every reachable node, the
    /// bottleneck available bandwidth, delay and transmission prices of
    /// the minimum-delay route from `from` — in one Dijkstra run.
    ///
    /// Produces exactly the values the per-pair queries
    /// ([`Network::available_between`] etc.) would return (same
    /// tie-breaking), but amortized: graph construction annotates all
    /// edges out of one host with a single call instead of one Dijkstra
    /// per edge. Unreachable nodes are `None`; the `from` entry is
    /// `(∞, 0, 0, 0)` (same host, Section 4.3).
    pub fn path_annotations_from(&self, from: NodeId) -> Result<Vec<Option<PathAnnotation>>> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        self.topology.node(from)?;
        let n = self.topology.node_count();
        let mut out: Vec<Option<PathAnnotation>> = vec![None; n];
        if self.failed_nodes.contains(&from) {
            return Ok(out);
        }
        let mut dist = vec![u64::MAX; n];
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        dist[from.index()] = 0;
        out[from.index()] = Some(PathAnnotation {
            available_bps: f64::INFINITY,
            delay_us: 0,
            price_flat: 0.0,
            price_per_mbit: 0.0,
        });
        heap.push(Reverse((0, from.index() as u32)));
        while let Some(Reverse((d, node_raw))) = heap.pop() {
            let node_index = node_raw as usize;
            if d > dist[node_index] {
                continue;
            }
            let annotation = out[node_index].expect("settled nodes are annotated");
            let node = NodeId(node_raw);
            for &(neighbor, link) in self.topology.neighbors(node) {
                if self.failed_links.contains(&link) || self.failed_nodes.contains(&neighbor) {
                    continue;
                }
                let spec = self.topology.link(link)?;
                let next = d.saturating_add(spec.delay_us);
                if next < dist[neighbor.index()] {
                    dist[neighbor.index()] = next;
                    let direction = spec.a == node;
                    out[neighbor.index()] = Some(PathAnnotation {
                        available_bps: annotation
                            .available_bps
                            .min(self.link_headroom(link, direction)?),
                        delay_us: next,
                        price_flat: annotation.price_flat + spec.price_flat,
                        price_per_mbit: annotation.price_per_mbit + spec.price_per_mbit,
                    });
                    heap.push(Reverse((next, neighbor.index() as u32)));
                }
            }
        }
        Ok(out)
    }

    /// Admit a session of `rate_bps` between `a` and `b` along the
    /// current route. Errors (without side effects) if any route link
    /// lacks headroom. Same-host sessions reserve nothing and succeed.
    pub fn reserve_between(
        &mut self,
        a: NodeId,
        b: NodeId,
        rate_bps: f64,
    ) -> Result<ReservationId> {
        if a == b {
            self.topology.node(a)?;
            return self.ledger.reserve(Vec::new(), rate_bps);
        }
        let route = self.route_between(a, b)?;
        let hops = route.directed_hops(&self.topology);
        for &(link, direction) in &hops {
            let headroom = self.link_headroom(link, direction)?;
            if rate_bps > headroom * (1.0 + 1e-9) + 1e-9 {
                return Err(NetError::InsufficientBandwidth {
                    link,
                    requested: rate_bps,
                    available: headroom,
                });
            }
        }
        self.version += 1;
        self.ledger.reserve(hops, rate_bps)
    }

    /// Release an admitted session.
    pub fn release(&mut self, id: ReservationId) -> Result<()> {
        self.ledger.release(id).map(|_| ())?;
        self.version += 1;
        Ok(())
    }

    /// Number of admitted sessions.
    pub fn active_reservations(&self) -> usize {
        self.ledger.active_count()
    }

    /// Advance the background-traffic process one step.
    pub fn advance_background(&mut self) {
        self.version += 1;
        self.background.advance();
    }

    /// Mark a node failed: all its links report zero headroom and routing
    /// avoids it.
    pub fn fail_node(&mut self, node: NodeId) -> Result<()> {
        self.topology.node(node)?;
        if self.failed_nodes.insert(node) {
            self.version += 1;
        }
        Ok(())
    }

    /// Mark a link failed.
    pub fn fail_link(&mut self, link: LinkId) -> Result<()> {
        self.topology.link(link)?;
        if self.failed_links.insert(link) {
            self.version += 1;
        }
        Ok(())
    }

    /// Restore a failed node.
    pub fn restore_node(&mut self, node: NodeId) {
        if self.failed_nodes.remove(&node) {
            self.version += 1;
        }
    }

    /// Restore a failed link.
    pub fn restore_link(&mut self, link: LinkId) {
        if self.failed_links.remove(&link) {
            self.version += 1;
        }
    }

    /// Whether `node` is currently failed.
    pub fn node_failed(&self, node: NodeId) -> bool {
        self.failed_nodes.contains(&node)
    }

    /// Direct access to the background process (tests, experiments).
    pub fn background_mut(&mut self) -> &mut BackgroundTraffic {
        // Same conservatism as `topology_mut`.
        self.version += 1;
        &mut self.background
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Link, Node};

    fn two_hop() -> (Network, NodeId, NodeId, NodeId, LinkId, LinkId) {
        let mut t = Topology::new();
        let a = t.add_node(Node::unconstrained("a"));
        let b = t.add_node(Node::unconstrained("b"));
        let c = t.add_node(Node::unconstrained("c"));
        let l1 = t
            .connect(Link {
                a,
                b,
                capacity_bps: 1000.0,
                delay_us: 100,
                loss: 0.0,
                price_per_mbit: 2.0,
                price_flat: 0.0,
            })
            .unwrap();
        let l2 = t
            .connect(Link {
                a: b,
                b: c,
                capacity_bps: 500.0,
                delay_us: 200,
                loss: 0.0,
                price_per_mbit: 3.0,
                price_flat: 0.0,
            })
            .unwrap();
        (Network::new(t), a, b, c, l1, l2)
    }

    #[test]
    fn same_host_is_unlimited() {
        let (net, a, ..) = two_hop();
        assert_eq!(net.available_between(a, a).unwrap(), f64::INFINITY);
        assert_eq!(net.delay_between_us(a, a).unwrap(), 0);
        assert_eq!(net.price_per_mbit_between(a, a).unwrap(), 0.0);
    }

    #[test]
    fn bottleneck_is_min_headroom() {
        let (net, a, _, c, ..) = two_hop();
        assert_eq!(net.available_between(a, c).unwrap(), 500.0);
    }

    #[test]
    fn delay_and_price_accumulate() {
        let (net, a, _, c, ..) = two_hop();
        assert_eq!(net.delay_between_us(a, c).unwrap(), 300);
        assert_eq!(net.price_per_mbit_between(a, c).unwrap(), 5.0);
    }

    #[test]
    fn version_bumps_on_every_mutation_and_only_then() {
        let (mut net, a, _, c, l1, _) = two_hop();
        assert_eq!(net.version(), 0);

        // Reads never bump.
        net.available_between(a, c).unwrap();
        net.route_between(a, c).unwrap();
        net.path_annotations_from(a).unwrap();
        assert_eq!(net.version(), 0);

        let id = net.reserve_between(a, c, 300.0).unwrap();
        assert_eq!(net.version(), 1);
        net.release(id).unwrap();
        assert_eq!(net.version(), 2);

        net.advance_background();
        assert_eq!(net.version(), 3);

        net.fail_node(a).unwrap();
        assert_eq!(net.version(), 4);
        net.restore_node(a);
        assert_eq!(net.version(), 5);
        net.restore_node(a); // already restored: no observable change
        assert_eq!(net.version(), 5);

        net.fail_link(l1).unwrap();
        assert_eq!(net.version(), 6);
        net.fail_link(l1).unwrap(); // already failed
        assert_eq!(net.version(), 6);
        net.restore_link(l1);
        assert_eq!(net.version(), 7);

        // Mutable handouts bump conservatively on access.
        let _ = net.topology_mut();
        assert_eq!(net.version(), 8);
        let _ = net.background_mut();
        assert_eq!(net.version(), 9);
    }

    #[test]
    fn reservation_consumes_headroom() {
        let (mut net, a, _, c, ..) = two_hop();
        let id = net.reserve_between(a, c, 300.0).unwrap();
        assert_eq!(net.available_between(a, c).unwrap(), 200.0);
        net.release(id).unwrap();
        assert_eq!(net.available_between(a, c).unwrap(), 500.0);
    }

    #[test]
    fn over_reservation_fails_atomically() {
        let (mut net, a, _, c, _, l2) = two_hop();
        let err = net.reserve_between(a, c, 700.0).unwrap_err();
        assert!(matches!(err, NetError::InsufficientBandwidth { link, .. } if link == l2));
        // Nothing was reserved on the first link either.
        assert_eq!(net.available_between(a, c).unwrap(), 500.0);
        assert_eq!(net.active_reservations(), 0);
    }

    #[test]
    fn failed_node_blocks_routing() {
        let (mut net, a, b, c, ..) = two_hop();
        net.fail_node(b).unwrap();
        assert!(matches!(
            net.available_between(a, c),
            Err(NetError::NoRoute { .. })
        ));
        net.restore_node(b);
        assert_eq!(net.available_between(a, c).unwrap(), 500.0);
    }

    #[test]
    fn failed_link_reroutes_or_blocks() {
        let (mut net, a, _, c, l1, _) = two_hop();
        net.fail_link(l1).unwrap();
        assert!(net.available_between(a, c).is_err());
        net.restore_link(l1);
        assert!(net.available_between(a, c).is_ok());
    }

    #[test]
    fn background_reduces_headroom() {
        let (mut net, a, _, c, _, l2) = two_hop();
        net.background_mut().set_utilization(l2, 0.5);
        assert_eq!(net.available_between(a, c).unwrap(), 250.0);
    }

    #[test]
    fn same_host_reservation_succeeds() {
        let (mut net, a, ..) = two_hop();
        let id = net.reserve_between(a, a, 1e9).unwrap();
        assert_eq!(net.available_between(a, a).unwrap(), f64::INFINITY);
        net.release(id).unwrap();
    }
}
