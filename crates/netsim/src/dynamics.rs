//! Background-traffic dynamics.
//!
//! Section 3 ("Network Profile") motivates adapting to "the fluctuating
//! network resources". We model fluctuation as per-link background
//! utilization following a seeded, mean-reverting bounded random walk:
//! each call to [`BackgroundTraffic::advance`] moves every link's
//! utilization toward its long-run mean plus deterministic seeded noise.
//! The walk is clamped to `[0, max_utilization]` so a link never starves
//! completely unless configured to.

use crate::topology::{LinkId, Topology};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Configuration of the background-traffic process.
#[derive(Debug, Clone, Copy)]
pub struct TrafficConfig {
    /// Long-run mean utilization fraction of each link.
    pub mean_utilization: f64,
    /// Upper clamp on utilization (headroom floor is `1 - max`).
    pub max_utilization: f64,
    /// Mean-reversion strength per step, in `[0, 1]`.
    pub reversion: f64,
    /// Noise amplitude per step (uniform in `±amplitude`).
    pub amplitude: f64,
}

impl Default for TrafficConfig {
    fn default() -> TrafficConfig {
        TrafficConfig {
            mean_utilization: 0.2,
            max_utilization: 0.9,
            reversion: 0.3,
            amplitude: 0.1,
        }
    }
}

/// The per-link background-utilization process.
#[derive(Debug, Clone)]
pub struct BackgroundTraffic {
    config: TrafficConfig,
    utilization: Vec<f64>,
    rng: SmallRng,
}

impl BackgroundTraffic {
    /// A process over `link_count` links, all starting at the mean, with
    /// a deterministic seed.
    pub fn new(link_count: usize, config: TrafficConfig, seed: u64) -> BackgroundTraffic {
        BackgroundTraffic {
            utilization: vec![
                config.mean_utilization.clamp(0.0, config.max_utilization);
                link_count
            ],
            config,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// A quiescent process: zero utilization forever. Used by scenarios
    /// (like the paper's worked example) where bandwidth is static.
    pub fn quiescent(link_count: usize) -> BackgroundTraffic {
        BackgroundTraffic {
            config: TrafficConfig {
                mean_utilization: 0.0,
                max_utilization: 0.0,
                reversion: 0.0,
                amplitude: 0.0,
            },
            utilization: vec![0.0; link_count],
            rng: SmallRng::seed_from_u64(0),
        }
    }

    /// Grow the tracked link set when the topology gained links.
    pub fn sync_with(&mut self, topology: &Topology) {
        let start = self
            .config
            .mean_utilization
            .clamp(0.0, self.config.max_utilization);
        self.utilization.resize(topology.link_count(), start);
    }

    /// Current background utilization fraction of `link`.
    pub fn utilization(&self, link: LinkId) -> f64 {
        self.utilization.get(link.index()).copied().unwrap_or(0.0)
    }

    /// Advance every link one step of the mean-reverting walk.
    pub fn advance(&mut self) {
        let c = self.config;
        if c.amplitude == 0.0 && c.reversion == 0.0 {
            return;
        }
        for u in &mut self.utilization {
            let noise: f64 = if c.amplitude > 0.0 {
                self.rng.random_range(-c.amplitude..=c.amplitude)
            } else {
                0.0
            };
            *u += c.reversion * (c.mean_utilization - *u) + noise;
            *u = u.clamp(0.0, c.max_utilization);
        }
    }

    /// Force a link's utilization (failure injection uses 1.0-capacity
    /// degradation through the topology instead, but tests use this).
    pub fn set_utilization(&mut self, link: LinkId, utilization: f64) {
        if let Some(u) = self.utilization.get_mut(link.index()) {
            *u = utilization.clamp(0.0, 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiescent_never_moves() {
        let mut bg = BackgroundTraffic::quiescent(3);
        for _ in 0..100 {
            bg.advance();
        }
        for i in 0..3 {
            assert_eq!(bg.utilization(LinkId(i)), 0.0);
        }
    }

    #[test]
    fn stays_within_bounds() {
        let config = TrafficConfig {
            mean_utilization: 0.5,
            max_utilization: 0.8,
            reversion: 0.2,
            amplitude: 0.3,
        };
        let mut bg = BackgroundTraffic::new(5, config, 42);
        for _ in 0..1000 {
            bg.advance();
            for i in 0..5 {
                let u = bg.utilization(LinkId(i));
                assert!((0.0..=0.8).contains(&u), "utilization {u} out of bounds");
            }
        }
    }

    #[test]
    fn same_seed_same_trajectory() {
        let config = TrafficConfig::default();
        let mut a = BackgroundTraffic::new(4, config, 7);
        let mut b = BackgroundTraffic::new(4, config, 7);
        for _ in 0..50 {
            a.advance();
            b.advance();
        }
        for i in 0..4 {
            assert_eq!(a.utilization(LinkId(i)), b.utilization(LinkId(i)));
        }
    }

    #[test]
    fn different_seed_diverges() {
        let config = TrafficConfig::default();
        let mut a = BackgroundTraffic::new(4, config, 1);
        let mut b = BackgroundTraffic::new(4, config, 2);
        for _ in 0..10 {
            a.advance();
            b.advance();
        }
        let differs = (0..4).any(|i| a.utilization(LinkId(i)) != b.utilization(LinkId(i)));
        assert!(differs);
    }

    #[test]
    fn reverts_toward_mean() {
        let config = TrafficConfig {
            mean_utilization: 0.5,
            max_utilization: 1.0,
            reversion: 0.5,
            amplitude: 0.0,
        };
        let mut bg = BackgroundTraffic::new(1, config, 0);
        bg.set_utilization(LinkId(0), 1.0);
        for _ in 0..30 {
            bg.advance();
        }
        assert!((bg.utilization(LinkId(0)) - 0.5).abs() < 1e-3);
    }
}
