//! Property tests for the network substrate: routing optimality,
//! reservation conservation, and failure semantics on random topologies.

use proptest::prelude::*;
use qosc_netsim::generators::{random_waxman, LinkTemplate};
use qosc_netsim::routing::min_delay_route;
use qosc_netsim::{Network, NodeId};

fn arb_topo_params() -> impl Strategy<Value = (usize, u64)> {
    (4usize..20, 0u64..500)
}

proptest! {
    /// Dijkstra's output is consistent: the route's delay equals the sum
    /// of its link delays, endpoints line up, and the node list walks the
    /// links.
    #[test]
    fn routes_are_self_consistent((n, seed) in arb_topo_params()) {
        let (topo, nodes) = random_waxman(n, 0.5, 0.4, LinkTemplate::default(), seed);
        let (from, to) = (nodes[0], nodes[n - 1]);
        let route = min_delay_route(&topo, from, to).expect("backbone keeps it connected");
        prop_assert_eq!(route.from, from);
        prop_assert_eq!(route.to, to);
        prop_assert_eq!(route.nodes.len(), route.links.len() + 1);
        prop_assert_eq!(*route.nodes.first().unwrap(), from);
        prop_assert_eq!(*route.nodes.last().unwrap(), to);
        let mut delay = 0u64;
        for (i, &link) in route.links.iter().enumerate() {
            let spec = topo.link(link).unwrap();
            let (a, b) = (route.nodes[i], route.nodes[i + 1]);
            prop_assert!(
                (spec.a == a && spec.b == b) || (spec.a == b && spec.b == a),
                "link {i} does not connect its route nodes"
            );
            delay += spec.delay_us;
        }
        prop_assert_eq!(delay, route.delay_us);
    }

    /// Triangle-ish optimality: no single detour node gives a strictly
    /// shorter delay than the Dijkstra result.
    #[test]
    fn no_one_stop_shortcut((n, seed) in arb_topo_params()) {
        let (topo, nodes) = random_waxman(n, 0.5, 0.4, LinkTemplate::default(), seed);
        let (from, to) = (nodes[0], nodes[n - 1]);
        let direct = min_delay_route(&topo, from, to).unwrap().delay_us;
        for &via in nodes.iter().take(6) {
            let a = min_delay_route(&topo, from, via).unwrap().delay_us;
            let b = min_delay_route(&topo, via, to).unwrap().delay_us;
            prop_assert!(direct <= a + b, "detour via {via:?} beats Dijkstra");
        }
    }

    /// Reservation conservation: reserve then release restores the exact
    /// available bandwidth on every queried pair.
    #[test]
    fn reserve_release_conserves((n, seed) in arb_topo_params(), rate in 1.0f64..1e6) {
        let (topo, nodes) = random_waxman(n, 0.5, 0.4, LinkTemplate::default(), seed);
        let mut network = Network::new(topo);
        let (from, to) = (nodes[0], nodes[n - 1]);
        let before = network.available_between(from, to).unwrap();
        prop_assume!(rate <= before);
        let id = network.reserve_between(from, to, rate).unwrap();
        let during = network.available_between(from, to).unwrap();
        prop_assert!(during <= before - rate + 1e-6);
        network.release(id).unwrap();
        let after = network.available_between(from, to).unwrap();
        prop_assert!((after - before).abs() < 1e-6);
        prop_assert_eq!(network.active_reservations(), 0);
    }

    /// Failing and restoring a node is an exact involution for
    /// availability queries.
    #[test]
    fn fail_restore_is_involution((n, seed) in arb_topo_params()) {
        let (topo, nodes) = random_waxman(n, 0.5, 0.4, LinkTemplate::default(), seed);
        let mut network = Network::new(topo);
        let (from, to) = (nodes[0], nodes[n - 1]);
        let victim = nodes[n / 2];
        prop_assume!(victim != from && victim != to);
        let before = network.available_between(from, to).unwrap();
        network.fail_node(victim).unwrap();
        // The route may degrade or vanish, but never report the failed
        // node as usable.
        if let Ok(route) = network.route_between(from, to) {
            prop_assert!(!route.nodes.contains(&victim));
        }
        network.restore_node(victim);
        let after = network.available_between(from, to).unwrap();
        prop_assert!((after - before).abs() < 1e-9);
    }

    /// Bulk path annotations agree with the per-pair queries for every
    /// reachable destination.
    #[test]
    fn bulk_annotations_match_pairwise((n, seed) in arb_topo_params()) {
        let (topo, nodes) = random_waxman(n, 0.5, 0.4, LinkTemplate::default(), seed);
        let network = Network::new(topo);
        let from = nodes[0];
        let table = network.path_annotations_from(from).unwrap();
        for &to in &nodes {
            let annotation = table[to.index()].expect("connected topology");
            let available = network.available_between(from, to).unwrap();
            let delay = network.delay_between_us(from, to).unwrap();
            let (flat, per_mbit) = network.transmission_price_between(from, to).unwrap();
            prop_assert!(
                (annotation.available_bps - available).abs() < 1e-6
                    || (annotation.available_bps.is_infinite() && available.is_infinite()),
                "bandwidth mismatch to {to:?}: bulk {} vs pairwise {available}",
                annotation.available_bps
            );
            prop_assert_eq!(annotation.delay_us, delay);
            prop_assert!((annotation.price_flat - flat).abs() < 1e-9);
            prop_assert!((annotation.price_per_mbit - per_mbit).abs() < 1e-9);
        }
    }
}

#[test]
fn node_id_index_is_stable() {
    // NodeId indices match insertion order — the annotations table
    // depends on it.
    let (topo, nodes) = random_waxman(5, 0.5, 0.4, LinkTemplate::default(), 1);
    for (i, node) in nodes.iter().enumerate() {
        assert_eq!(node.index(), i);
    }
    assert_eq!(topo.node_count(), 5);
    let _ = NodeId::index; // silence "unused import" pedantry if any
}
