//! Deterministic observability for the qosc serving stack.
//!
//! Three instruments, one determinism discipline:
//!
//! * **Flight recorder** ([`FlightRecorder`]) — typed [`Event`]s from
//!   every layer (admission, engine, cache, registry, resilience) land
//!   in per-worker append-only buffers and merge into one log totally
//!   ordered by `(virtual_time, request_id, seq)`. No wall clock
//!   appears anywhere, so the rendered log is byte-identical across
//!   runs, machines, and worker counts.
//! * **Span traces** ([`RequestTrace`]) — each request's events nest in
//!   a span tree (admission → composition attempts → ladder rungs →
//!   cache probes); [`FlightRecorder::explain`] renders the causal
//!   chain of any request id after the fact.
//! * **Metrics registry** ([`MetricsRegistry`]) — named counters,
//!   gauges, and fixed-boundary integer histograms with
//!   Prometheus-text and JSON-lines exporters whose output is
//!   deterministic (name-sorted, all-integer).
//!
//! Instrumented layers are generic over [`TelemetrySink`]; the
//! [`NoopSink`] specialization compiles to nothing, so the untraced hot
//! path is unchanged.

#![warn(missing_docs)]

pub mod event;
pub mod metrics;
pub mod recorder;
pub mod trace;

pub use event::{CacheOutcome, Event, EventKind, NO_PARENT, REQUEST_NONE};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry};
pub use recorder::FlightRecorder;
pub use trace::{NoopSink, RequestTrace, TelemetrySink, TraceState, ROOT_SPAN};
