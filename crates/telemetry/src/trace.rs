//! The sink trait and the per-request span tracer.
//!
//! Instrumented layers are generic over [`TelemetrySink`], so the
//! disabled path monomorphizes away: with [`NoopSink`],
//! [`TelemetrySink::enabled`] is a constant `false`, every
//! [`RequestTrace`] method folds to nothing, and the hot path compiles
//! exactly as it did before telemetry existed (the throughput bench
//! guards the < 2 % budget).

use crate::event::{Event, EventKind, NO_PARENT};

/// Span id of the root span every request opens first.
pub const ROOT_SPAN: u32 = 0;

/// Where instrumented layers send events. Implementations must be
/// `Sync`: one sink is shared by every worker of a batch.
pub trait TelemetrySink: Sync {
    /// Whether recording is on. Instrumentation checks this before
    /// building an event, so a disabled sink costs one constant branch.
    fn enabled(&self) -> bool;

    /// Record one event. Never called when [`enabled`](Self::enabled)
    /// is `false`.
    fn record(&self, event: Event);
}

/// The disabled sink: `enabled()` is a constant `false` and `record`
/// is unreachable, so generic instrumentation compiles to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&self, _event: Event) {}
}

/// The persistable state of a [`RequestTrace`]: plain data that can be
/// stored between engine steps (and moved across worker threads) and
/// later re-attached to a sink with [`RequestTrace::resume`]. Keeping
/// the stamp/sequence/span counters here is what lets a long-lived
/// session emit one monotone per-request event sequence even though
/// each epoch's work runs as a separate job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceState {
    /// Request the trace belongs to.
    pub request_id: u64,
    /// Virtual-time stamp of the next event.
    pub virtual_time_us: u64,
    /// Next per-request sequence number.
    pub seq: u32,
    /// Next span id to allocate.
    pub next_span: u32,
}

/// Per-request emission context: owns the request id, the virtual-time
/// stamp, the monotone sequence counter, and span allocation. Created
/// once per request by the serving layer and threaded through
/// admission → composition attempts → ladder rungs → cache probes, so
/// every event of one request shares one ordered sequence no matter
/// which instrumented layer emitted it.
#[derive(Debug)]
pub struct RequestTrace<'a, S: TelemetrySink> {
    sink: &'a S,
    enabled: bool,
    request_id: u64,
    virtual_time_us: u64,
    seq: u32,
    next_span: u32,
}

impl<'a, S: TelemetrySink> RequestTrace<'a, S> {
    /// Open a trace for `request_id` at virtual time `virtual_time_us`
    /// (0 when the layer has no virtual clock). Emits the root
    /// `span_open` event.
    pub fn new(sink: &'a S, request_id: u64, virtual_time_us: u64) -> RequestTrace<'a, S> {
        let mut trace = RequestTrace {
            sink,
            enabled: sink.enabled(),
            request_id,
            virtual_time_us,
            seq: 0,
            next_span: 1,
        };
        trace.emit(
            ROOT_SPAN,
            EventKind::SpanOpen {
                parent: NO_PARENT,
                label: "request",
            },
        );
        trace
    }

    /// Re-attach a previously [saved](Self::save) trace to a sink.
    /// Unlike [`new`](Self::new) this emits nothing: the root span was
    /// already opened when the trace was first created, and the
    /// counters continue exactly where they left off.
    pub fn resume(sink: &'a S, state: TraceState) -> RequestTrace<'a, S> {
        RequestTrace {
            sink,
            enabled: sink.enabled(),
            request_id: state.request_id,
            virtual_time_us: state.virtual_time_us,
            seq: state.seq,
            next_span: state.next_span,
        }
    }

    /// Detach the trace's counters as plain data for later
    /// [`resume`](Self::resume).
    pub fn save(&self) -> TraceState {
        TraceState {
            request_id: self.request_id,
            virtual_time_us: self.virtual_time_us,
            seq: self.seq,
            next_span: self.next_span,
        }
    }

    /// The request this trace belongs to.
    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// Advance the virtual-time stamp of subsequent events (never
    /// rewinds — the merged log must stay sorted per request).
    pub fn advance_to(&mut self, virtual_time_us: u64) {
        self.virtual_time_us = self.virtual_time_us.max(virtual_time_us);
    }

    /// Open a child span under `parent` and return its id. Span ids are
    /// allocated sequentially per request, so they are deterministic:
    /// serving one request is sequential code.
    pub fn open_span(&mut self, parent: u32, label: &'static str) -> u32 {
        let span = self.next_span;
        self.next_span += 1;
        self.emit(span, EventKind::SpanOpen { parent, label });
        span
    }

    /// Emit one event inside `span`.
    pub fn emit(&mut self, span: u32, kind: EventKind) {
        if !self.enabled {
            return;
        }
        let event = Event {
            virtual_time_us: self.virtual_time_us,
            request_id: self.request_id,
            span,
            seq: self.seq,
            kind,
        };
        self.seq += 1;
        self.sink.record(event);
    }
}

impl RequestTrace<'static, NoopSink> {
    /// A trace that records nothing — for untraced facade APIs that
    /// delegate to a `_traced` implementation.
    pub fn noop() -> RequestTrace<'static, NoopSink> {
        RequestTrace::new(&NoopSink, crate::event::REQUEST_NONE, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::FlightRecorder;

    #[test]
    fn noop_sink_records_nothing() {
        let mut trace = RequestTrace::noop();
        let span = trace.open_span(ROOT_SPAN, "cache");
        trace.emit(span, EventKind::DeadlineExpired);
        // Nothing observable; the point is it compiles to nothing and
        // never panics.
    }

    #[test]
    fn spans_and_seq_are_sequential() {
        let recorder = FlightRecorder::default();
        let mut trace = RequestTrace::new(&recorder, 3, 100);
        let a = trace.open_span(ROOT_SPAN, "admission");
        let b = trace.open_span(ROOT_SPAN, "full");
        trace.emit(b, EventKind::CompositionStarted { rung: "full" });
        assert_eq!((a, b), (1, 2));
        let events = recorder.merged();
        assert_eq!(events.len(), 4, "root open + two opens + one event");
        let seqs: Vec<u32> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        assert!(events.iter().all(|e| e.request_id == 3));
        assert!(events.iter().all(|e| e.virtual_time_us == 100));
    }

    #[test]
    fn save_and_resume_continue_the_sequence() {
        let recorder = FlightRecorder::default();
        let state = {
            let mut trace = RequestTrace::new(&recorder, 9, 10);
            trace.open_span(ROOT_SPAN, "admission");
            trace.advance_to(40);
            trace.save()
        };
        let mut resumed = RequestTrace::resume(&recorder, state);
        // No second root span; counters pick up where save left off.
        let span = resumed.open_span(ROOT_SPAN, "epoch");
        assert_eq!(span, 2);
        resumed.emit(span, EventKind::DeadlineExpired);
        let events = recorder.merged();
        assert_eq!(events.len(), 4, "root + admission + epoch + one event");
        let seqs: Vec<u32> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        assert_eq!(events[2].virtual_time_us, 40);
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(
                    e.kind,
                    EventKind::SpanOpen {
                        parent: NO_PARENT,
                        ..
                    }
                ))
                .count(),
            1,
            "resume must not re-open the root span"
        );
    }

    #[test]
    fn advance_never_rewinds() {
        let recorder = FlightRecorder::default();
        let mut trace = RequestTrace::new(&recorder, 1, 500);
        trace.advance_to(200);
        trace.emit(ROOT_SPAN, EventKind::DeadlineExpired);
        trace.advance_to(900);
        trace.emit(ROOT_SPAN, EventKind::DeadlineExpired);
        let times: Vec<u64> = recorder
            .merged()
            .iter()
            .map(|e| e.virtual_time_us)
            .collect();
        assert_eq!(times, vec![500, 500, 900]);
    }
}
