//! The unified metrics registry: named counters, gauges, and
//! fixed-boundary integer histograms.
//!
//! Everything is integer-valued and name-sorted on export, so a
//! metrics snapshot — Prometheus text or JSON lines — is byte-identical
//! for identical workloads on any machine and any worker count. The
//! legacy per-layer counters (`CacheStats`, `BatchCounters`,
//! `AdmissionStats`) stay as cheap views; their owners mirror them in
//! here so operators read one registry.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotone counter handle (cheap to clone; all clones share the
/// value).
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n`.
    pub fn inc(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite with `value` — for mirroring a legacy counter snapshot
    /// (`CacheStats`, `BatchCounters`) into the registry.
    pub fn store(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a signed value that moves both ways.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrite with `value`.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-boundary histogram over `u64` observations. Bucket `i`
/// counts observations `<= bounds[i]`; everything above the last bound
/// lands in the implicit overflow bucket. All-integer, so snapshots
/// are byte-identical.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A point-in-time copy of a histogram, for scorecards and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Upper bounds, ascending (the overflow bucket is implicit).
    pub bounds: Vec<u64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1`, the last
    /// entry being the overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
}

impl Histogram {
    fn new(mut bounds: Vec<u64>) -> Histogram {
        bounds.sort_unstable();
        bounds.dedup();
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn observe(&self, value: u64) {
        let index = self
            .bounds
            .partition_point(|&bound| bound < value)
            .min(self.bounds.len());
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating: a histogram of u64 microseconds must never wrap.
        let mut current = self.sum.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_add(value);
            match self.sum.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }

    /// Copy out the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// The registry: named metric handles with deterministic exporters.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created at zero on first use. Names
    /// may embed Prometheus labels (`total{kind="retry"}`).
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(cell) = self.counters.read().get(name) {
            return Counter(Arc::clone(cell));
        }
        let mut counters = self.counters.write();
        let cell = counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Arc::clone(cell))
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(cell) = self.gauges.read().get(name) {
            return Gauge(Arc::clone(cell));
        }
        let mut gauges = self.gauges.write();
        let cell = gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicI64::new(0)));
        Gauge(Arc::clone(cell))
    }

    /// The histogram named `name`, created with `bounds` on first use
    /// (later calls ignore `bounds` and return the existing one).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        if let Some(histogram) = self.histograms.read().get(name) {
            return Arc::clone(histogram);
        }
        let mut histograms = self.histograms.write();
        let histogram = histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new(bounds.to_vec())));
        Arc::clone(histogram)
    }

    /// Value of a counter, if it exists.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .read()
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
    }

    /// Value of a gauge, if it exists.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        self.gauges
            .read()
            .get(name)
            .map(|g| g.load(Ordering::Relaxed))
    }

    /// Snapshot of a histogram, if it exists.
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        self.histograms.read().get(name).map(|h| h.snapshot())
    }

    /// Prometheus text exposition: name-sorted, all-integer,
    /// byte-identical for identical state.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.counters.read().iter() {
            let bare = name.split('{').next().unwrap_or(name);
            out.push_str(&format!("# TYPE {bare} counter\n"));
            out.push_str(&format!("{name} {}\n", value.load(Ordering::Relaxed)));
        }
        for (name, value) in self.gauges.read().iter() {
            let bare = name.split('{').next().unwrap_or(name);
            out.push_str(&format!("# TYPE {bare} gauge\n"));
            out.push_str(&format!("{name} {}\n", value.load(Ordering::Relaxed)));
        }
        for (name, histogram) in self.histograms.read().iter() {
            let snapshot = histogram.snapshot();
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (i, &bound) in snapshot.bounds.iter().enumerate() {
                cumulative += snapshot.counts[i];
                out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
            }
            out.push_str(&format!(
                "{name}_bucket{{le=\"+Inf\"}} {}\n",
                snapshot.count
            ));
            out.push_str(&format!("{name}_sum {}\n", snapshot.sum));
            out.push_str(&format!("{name}_count {}\n", snapshot.count));
        }
        out
    }

    /// JSON-lines exposition: one object per metric, name-sorted,
    /// all-integer, byte-identical for identical state.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.counters.read().iter() {
            out.push_str(&format!(
                "{{\"type\": \"counter\", \"name\": \"{name}\", \"value\": {}}}\n",
                value.load(Ordering::Relaxed)
            ));
        }
        for (name, value) in self.gauges.read().iter() {
            out.push_str(&format!(
                "{{\"type\": \"gauge\", \"name\": \"{name}\", \"value\": {}}}\n",
                value.load(Ordering::Relaxed)
            ));
        }
        for (name, histogram) in self.histograms.read().iter() {
            let snapshot = histogram.snapshot();
            let bounds: Vec<String> = snapshot.bounds.iter().map(u64::to_string).collect();
            let counts: Vec<String> = snapshot.counts.iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "{{\"type\": \"histogram\", \"name\": \"{name}\", \"bounds\": [{}], \"counts\": [{}], \"count\": {}, \"sum\": {}}}\n",
                bounds.join(", "),
                counts.join(", "),
                snapshot.count,
                snapshot.sum
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_across_handles() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("qosc_test_total");
        let b = registry.counter("qosc_test_total");
        a.inc(2);
        b.inc(3);
        assert_eq!(a.get(), 5);
        assert_eq!(registry.counter_value("qosc_test_total"), Some(5));
        a.store(7);
        assert_eq!(b.get(), 7);
    }

    #[test]
    fn gauges_move_both_ways() {
        let registry = MetricsRegistry::new();
        let gauge = registry.gauge("qosc_queue_depth");
        gauge.set(10);
        gauge.add(-4);
        assert_eq!(registry.gauge_value("qosc_queue_depth"), Some(6));
    }

    #[test]
    fn histogram_buckets_partition_observations() {
        let registry = MetricsRegistry::new();
        let histogram = registry.histogram("qosc_wait_us", &[10, 100, 1_000]);
        for value in [0, 10, 11, 100, 999, 1_000, 5_000] {
            histogram.observe(value);
        }
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.bounds, vec![10, 100, 1_000]);
        // <=10: {0, 10}; <=100: {11, 100}; <=1000: {999, 1000}; over: {5000}.
        assert_eq!(snapshot.counts, vec![2, 2, 2, 1]);
        assert_eq!(snapshot.count, 7);
        assert_eq!(snapshot.sum, 7_120);
    }

    #[test]
    fn exports_are_sorted_and_stable() {
        let registry = MetricsRegistry::new();
        registry.counter("z_total").inc(1);
        registry.counter("a_total").inc(2);
        registry.gauge("m_gauge").set(-3);
        registry.histogram("h", &[5]).observe(7);
        let prom = registry.to_prometheus_text();
        assert!(prom.find("a_total 2").unwrap() < prom.find("z_total 1").unwrap());
        assert!(prom.contains("m_gauge -3"));
        assert!(prom.contains("h_bucket{le=\"5\"} 0"));
        assert!(prom.contains("h_bucket{le=\"+Inf\"} 1"));
        assert!(prom.contains("h_sum 7"));
        let json = registry.to_json_lines();
        assert!(json.contains("\"type\": \"gauge\", \"name\": \"m_gauge\", \"value\": -3"));
        assert!(json.contains("\"bounds\": [5], \"counts\": [0, 1], \"count\": 1, \"sum\": 7"));
        // Re-export is byte-identical.
        assert_eq!(prom, registry.to_prometheus_text());
        assert_eq!(json, registry.to_json_lines());
    }

    #[test]
    fn labelled_counter_names_export_with_bare_type_line() {
        let registry = MetricsRegistry::new();
        registry.counter("qosc_events_total{kind=\"retry\"}").inc(4);
        let prom = registry.to_prometheus_text();
        assert!(prom.contains("# TYPE qosc_events_total counter"));
        assert!(prom.contains("qosc_events_total{kind=\"retry\"} 4"));
    }
}
