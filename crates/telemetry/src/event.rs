//! The structured event model of the flight recorder.
//!
//! Every observable action of the serving stack is one typed [`Event`]:
//! a [`kind`](Event::kind) carrying the action's own fields, stamped
//! with the request it belongs to, the span it happened inside, a
//! virtual-time timestamp, and a per-request sequence number. No wall
//! clock appears anywhere — ordering is entirely
//! `(virtual_time_us, request_id, seq)`, the same determinism
//! discipline as the X12/X13 scorecards, so a merged log is
//! byte-identical across runs, machines, and worker counts.

/// `request_id` of events that belong to no request (registry
/// life-cycle, chaos replay).
pub const REQUEST_NONE: u64 = u64::MAX;

/// `parent` of a root span.
pub const NO_PARENT: u32 = u32::MAX;

/// How a cache probe resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Revalidated cached plan returned.
    Hit,
    /// No usable entry; composed fresh.
    Miss,
    /// Entry failed revalidation; recomposed.
    Stale,
}

impl CacheOutcome {
    /// Stable machine-readable name.
    pub fn label(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Stale => "stale",
        }
    }
}

/// One typed action of the serving stack. Field types are all integers
/// or `&'static str` labels, so rendering is byte-stable: no floats, no
/// owned strings, no wall-clock times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened; every following event citing this span id nests
    /// under `parent`. The root span of a request has
    /// [`NO_PARENT`] and label `"request"`.
    SpanOpen {
        /// Enclosing span id ([`NO_PARENT`] for a root).
        parent: u32,
        /// Human/machine label ("admission", "cache", a rung name …).
        label: &'static str,
    },
    /// The admission queue let the request through.
    RequestAdmitted {
        /// Virtual time spent queued before starting.
        queue_wait_us: u64,
        /// Starting degradation rung brown-out assigned.
        rung: &'static str,
    },
    /// The admission queue refused the request.
    RequestShed {
        /// Stable shed-reason label (`queue_full`, `predicted_late`,
        /// `queue_timeout`).
        reason: &'static str,
    },
    /// A composition attempt began at a rung.
    CompositionStarted {
        /// Rung label.
        rung: &'static str,
    },
    /// A composition attempt concluded at a rung.
    CompositionFinished {
        /// Rung label.
        rung: &'static str,
        /// A plan above the satisfaction floor was produced.
        served: bool,
        /// Predicted satisfaction in millionths (0 when unserved) —
        /// integer so the rendered log is byte-stable.
        satisfaction_micros: u64,
        /// Cumulative composition attempts so far for this request.
        attempts: u32,
    },
    /// A cache probe resolved.
    CacheProbe {
        /// Hit, miss, or stale.
        outcome: CacheOutcome,
    },
    /// A transient error triggered a seeded retry.
    Retry {
        /// 1-based attempt number within the rung.
        attempt: u32,
        /// Backoff recorded for this retry, microseconds.
        backoff_us: u64,
    },
    /// The ladder stepped from one rung to the next.
    RungChange {
        /// Rung that failed to serve.
        from: &'static str,
        /// Rung tried next.
        to: &'static str,
    },
    /// The per-request deadline expired before a plan was found.
    DeadlineExpired,
    /// The circuit breaker opened for a service.
    QuarantineOpened {
        /// Registry service id.
        service: u32,
    },
    /// A quarantine cool-down elapsed; the service is advertised again.
    QuarantineReleased {
        /// Registry service id.
        service: u32,
    },
    /// A lease ran out.
    LeaseExpired {
        /// Registry service id.
        service: u32,
    },
    /// A service registered (or re-registered after a revive).
    ServiceRegistered {
        /// Registry service id.
        service: u32,
    },
    /// A lease was renewed.
    LeaseRenewed {
        /// Registry service id.
        service: u32,
    },
    /// A service was explicitly removed.
    ServiceDeregistered {
        /// Registry service id.
        service: u32,
    },
    /// The resilience monitor re-composed around a chain-killing fault.
    Recomposed {
        /// 1-based re-composition count within the run.
        attempt: u32,
    },
    /// The resilience monitor switched to a pre-planned backup chain.
    Failover {
        /// 1-based failover count within the run.
        attempt: u32,
    },
    /// The graph store rebuilt an adaptation graph from scratch.
    GraphRebuilt {
        /// Total rebuilds so far on the emitting store.
        total: u64,
    },
    /// The graph store served a graph by replaying registry deltas.
    GraphDelta {
        /// Net vertex/edge-set changes applied by this replay.
        ops: u64,
        /// Total delta replays so far on the emitting store.
        total: u64,
    },
    /// A selection scratch arena was reused instead of reallocated.
    ArenaReused {
        /// Total arena reuses so far on the emitting thread's arena.
        total: u64,
    },
    /// A long-lived session opened (steady-state serving loop).
    SessionOpened {
        /// Requested holding time, virtual microseconds (0 for
        /// degenerate batch-adapter sessions).
        hold_us: u64,
    },
    /// A long-lived session closed.
    SessionClosed {
        /// Stable close-reason label (`completed`, `failed_open`,
        /// `gave_up`, `starved`).
        reason: &'static str,
    },
    /// A session's playout buffer ran dry and playback stalled
    /// (buffer-aware sessions only). Emitted once per stall entry; the
    /// stalled time of the accrual interval rides along.
    Rebuffered {
        /// Playback time stalled within the interval, microseconds.
        stalled_us: u64,
    },
    /// The buffer-aware controller committed a mid-stream rung switch
    /// (distinct from `rung_change`, the intra-composition ladder
    /// descent, and from `recomposed`, the reactive repair path).
    RungSwitch {
        /// Rung the session was streaming on.
        from: &'static str,
        /// Rung the switch adopted.
        to: &'static str,
        /// Buffer level at adoption, microseconds of playout.
        buffer_us: u64,
    },
    /// An SLA watchdog flagged a service: its observed QoS sat below
    /// `advertised × tolerance` for a full dwell window while the
    /// service stayed alive and routable (a grey failure).
    SlaViolation {
        /// Registry service id.
        service: u32,
        /// Smoothed observed throughput at flagging, PPM of advertised.
        observed_ppm: u64,
    },
    /// The registry probated a service: still advertised, but selection
    /// scores it by a blended effective QoS until half-open probes
    /// clear it.
    ServiceProbated {
        /// Registry service id.
        service: u32,
    },
    /// Enough healthy half-open probes accumulated; the probation
    /// penalty is lifted.
    ProbationCleared {
        /// Registry service id.
        service: u32,
    },
    /// A session evaded an SLA-violating plan: a make-before-break
    /// re-composition away from a probated service, before the buffer
    /// drained (distinct from `rung_switch`, which changes quality
    /// rungs, and `recomposed`, the reactive repair after a dead plan).
    SlaEvaded {
        /// Rung the session was streaming on.
        from: &'static str,
        /// Rung the evading plan adopted (usually the same).
        to: &'static str,
        /// Buffer level at adoption, microseconds of playout.
        buffer_us: u64,
    },
    /// The bandwidth broker reallocated and this session's granted
    /// fill rate changed mid-stream (the controller reevaluates its
    /// rung on the next tick; no re-composition happens here).
    GrantUpdated {
        /// The new fill rate, ppm of playback speed.
        fill_ppm: u64,
    },
}

impl EventKind {
    /// Stable counting key: one label per variant (used for
    /// per-type event counts in scorecards and metrics).
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::SpanOpen { .. } => "span_open",
            EventKind::RequestAdmitted { .. } => "request_admitted",
            EventKind::RequestShed { .. } => "request_shed",
            EventKind::CompositionStarted { .. } => "composition_started",
            EventKind::CompositionFinished { .. } => "composition_finished",
            EventKind::CacheProbe {
                outcome: CacheOutcome::Hit,
            } => "cache_hit",
            EventKind::CacheProbe {
                outcome: CacheOutcome::Miss,
            } => "cache_miss",
            EventKind::CacheProbe {
                outcome: CacheOutcome::Stale,
            } => "cache_stale",
            EventKind::Retry { .. } => "retry",
            EventKind::RungChange { .. } => "rung_change",
            EventKind::DeadlineExpired => "deadline_expired",
            EventKind::QuarantineOpened { .. } => "quarantine_opened",
            EventKind::QuarantineReleased { .. } => "quarantine_released",
            EventKind::LeaseExpired { .. } => "lease_expired",
            EventKind::ServiceRegistered { .. } => "service_registered",
            EventKind::LeaseRenewed { .. } => "lease_renewed",
            EventKind::ServiceDeregistered { .. } => "service_deregistered",
            EventKind::Recomposed { .. } => "recomposed",
            EventKind::Failover { .. } => "failover",
            EventKind::GraphRebuilt { .. } => "graph_rebuilt",
            EventKind::GraphDelta { .. } => "graph_delta",
            EventKind::ArenaReused { .. } => "arena_reused",
            EventKind::SessionOpened { .. } => "session_opened",
            EventKind::SessionClosed { .. } => "session_closed",
            EventKind::Rebuffered { .. } => "rebuffered",
            EventKind::RungSwitch { .. } => "rung_switch",
            EventKind::SlaViolation { .. } => "sla_violation",
            EventKind::ServiceProbated { .. } => "service_probated",
            EventKind::ProbationCleared { .. } => "probation_cleared",
            EventKind::SlaEvaded { .. } => "sla_evaded",
            EventKind::GrantUpdated { .. } => "grant_updated",
        }
    }

    /// Render the kind with its fields as one stable text fragment.
    pub fn render(&self) -> String {
        match self {
            EventKind::SpanOpen { parent, label } => {
                if *parent == NO_PARENT {
                    format!("span_open label={label}")
                } else {
                    format!("span_open parent={parent} label={label}")
                }
            }
            EventKind::RequestAdmitted {
                queue_wait_us,
                rung,
            } => format!("request_admitted queue_wait_us={queue_wait_us} rung={rung}"),
            EventKind::RequestShed { reason } => format!("request_shed reason={reason}"),
            EventKind::CompositionStarted { rung } => format!("composition_started rung={rung}"),
            EventKind::CompositionFinished {
                rung,
                served,
                satisfaction_micros,
                attempts,
            } => format!(
                "composition_finished rung={rung} served={served} \
                 satisfaction_micros={satisfaction_micros} attempts={attempts}"
            ),
            EventKind::CacheProbe { outcome } => format!("cache_{}", outcome.label()),
            EventKind::Retry {
                attempt,
                backoff_us,
            } => format!("retry attempt={attempt} backoff_us={backoff_us}"),
            EventKind::RungChange { from, to } => format!("rung_change from={from} to={to}"),
            EventKind::DeadlineExpired => "deadline_expired".to_string(),
            EventKind::QuarantineOpened { service } => {
                format!("quarantine_opened service={service}")
            }
            EventKind::QuarantineReleased { service } => {
                format!("quarantine_released service={service}")
            }
            EventKind::LeaseExpired { service } => format!("lease_expired service={service}"),
            EventKind::ServiceRegistered { service } => {
                format!("service_registered service={service}")
            }
            EventKind::LeaseRenewed { service } => format!("lease_renewed service={service}"),
            EventKind::ServiceDeregistered { service } => {
                format!("service_deregistered service={service}")
            }
            EventKind::Recomposed { attempt } => format!("recomposed attempt={attempt}"),
            EventKind::Failover { attempt } => format!("failover attempt={attempt}"),
            EventKind::GraphRebuilt { total } => format!("graph_rebuilt total={total}"),
            EventKind::GraphDelta { ops, total } => format!("graph_delta ops={ops} total={total}"),
            EventKind::ArenaReused { total } => format!("arena_reused total={total}"),
            EventKind::SessionOpened { hold_us } => format!("session_opened hold_us={hold_us}"),
            EventKind::SessionClosed { reason } => format!("session_closed reason={reason}"),
            EventKind::Rebuffered { stalled_us } => format!("rebuffered stalled_us={stalled_us}"),
            EventKind::RungSwitch {
                from,
                to,
                buffer_us,
            } => format!("rung_switch from={from} to={to} buffer_us={buffer_us}"),
            EventKind::SlaViolation {
                service,
                observed_ppm,
            } => format!("sla_violation service={service} observed_ppm={observed_ppm}"),
            EventKind::ServiceProbated { service } => {
                format!("service_probated service={service}")
            }
            EventKind::ProbationCleared { service } => {
                format!("probation_cleared service={service}")
            }
            EventKind::SlaEvaded {
                from,
                to,
                buffer_us,
            } => format!("sla_evaded from={from} to={to} buffer_us={buffer_us}"),
            EventKind::GrantUpdated { fill_ppm } => format!("grant_updated fill_ppm={fill_ppm}"),
        }
    }
}

/// One recorded action: kind plus causality stamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Virtual time the action happened at, microseconds (0 when the
    /// emitting layer has no virtual clock — ordering then falls back
    /// to `(request_id, seq)`).
    pub virtual_time_us: u64,
    /// Request the action belongs to ([`REQUEST_NONE`] for
    /// registry/chaos events).
    pub request_id: u64,
    /// Span the action happened inside (per-request span id).
    pub span: u32,
    /// Per-request emission sequence number; for [`REQUEST_NONE`]
    /// events, the emitting component's own monotone counter.
    pub seq: u32,
    /// The action.
    pub kind: EventKind,
}

impl Event {
    /// Total-order key of the merged log.
    pub fn sort_key(&self) -> (u64, u64, u32) {
        (self.virtual_time_us, self.request_id, self.seq)
    }

    /// One stable log line (no trailing newline).
    pub fn render(&self) -> String {
        let request = if self.request_id == REQUEST_NONE {
            "-".to_string()
        } else {
            self.request_id.to_string()
        };
        format!(
            "t={:>12} req={} span={} seq={} {}",
            self.virtual_time_us,
            request,
            self.span,
            self.seq,
            self.kind.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_distinguish_cache_outcomes() {
        assert_eq!(
            EventKind::CacheProbe {
                outcome: CacheOutcome::Hit
            }
            .label(),
            "cache_hit"
        );
        assert_eq!(
            EventKind::CacheProbe {
                outcome: CacheOutcome::Stale
            }
            .label(),
            "cache_stale"
        );
    }

    #[test]
    fn render_is_stable_and_integer_only() {
        let event = Event {
            virtual_time_us: 1_234,
            request_id: 7,
            span: 2,
            seq: 5,
            kind: EventKind::Retry {
                attempt: 1,
                backoff_us: 2_000,
            },
        };
        assert_eq!(
            event.render(),
            "t=        1234 req=7 span=2 seq=5 retry attempt=1 backoff_us=2000"
        );
        let registry_event = Event {
            virtual_time_us: 0,
            request_id: REQUEST_NONE,
            span: 0,
            seq: 0,
            kind: EventKind::LeaseExpired { service: 3 },
        };
        assert!(registry_event.render().contains("req=-"));
    }

    #[test]
    fn sort_key_orders_by_time_then_request_then_seq() {
        let mk = |t, r, s| Event {
            virtual_time_us: t,
            request_id: r,
            span: 0,
            seq: s,
            kind: EventKind::DeadlineExpired,
        };
        let mut events = [mk(5, 0, 0), mk(1, 9, 0), mk(1, 2, 1), mk(1, 2, 0)];
        events.sort_by_key(Event::sort_key);
        assert_eq!(
            events.iter().map(|e| e.sort_key()).collect::<Vec<_>>(),
            vec![(1, 2, 0), (1, 2, 1), (1, 9, 0), (5, 0, 0)]
        );
    }
}
