//! The flight recorder: per-worker append-only buffers, one merged log.
//!
//! [`FlightRecorder`] is the real [`TelemetrySink`]: `record` appends
//! to one of a handful of mutex-guarded buffers (selected by the low
//! bits of the request id, so two workers serving different requests
//! almost never contend), and [`merged`](FlightRecorder::merged) sorts
//! the union by `(virtual_time, request_id, seq)`. Each request's
//! events are emitted by exactly one worker holding a monotone `seq`,
//! so the merged log is byte-identical for any worker count and any
//! scheduling — the recorder turns a nondeterministic execution into a
//! deterministic record.

use crate::event::{Event, EventKind, NO_PARENT, REQUEST_NONE};
use crate::metrics::MetricsRegistry;
use crate::trace::TelemetrySink;
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// A sharded append-only event store with a deterministic merged view.
#[derive(Debug)]
pub struct FlightRecorder {
    buffers: Vec<Mutex<Vec<Event>>>,
    mask: usize,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(FlightRecorder::DEFAULT_BUFFERS)
    }
}

impl TelemetrySink for FlightRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: Event) {
        let key = if event.request_id == REQUEST_NONE {
            0
        } else {
            event.request_id as usize
        };
        self.buffers[key & self.mask].lock().push(event);
    }
}

impl FlightRecorder {
    /// Buffer count used by [`default`](FlightRecorder::default) —
    /// comfortably above any worker count the engine runs with.
    pub const DEFAULT_BUFFERS: usize = 16;

    /// An empty recorder with `buffers` buffers (rounded up to the next
    /// power of two, minimum 1).
    pub fn new(buffers: usize) -> FlightRecorder {
        let count = buffers.max(1).next_power_of_two();
        FlightRecorder {
            buffers: (0..count).map(|_| Mutex::new(Vec::new())).collect(),
            mask: count - 1,
        }
    }

    /// Total events recorded so far.
    pub fn len(&self) -> usize {
        self.buffers.iter().map(|b| b.lock().len()).sum()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every recorded event.
    pub fn clear(&self) {
        for buffer in &self.buffers {
            buffer.lock().clear();
        }
    }

    /// The merged log: every event, ordered by
    /// `(virtual_time, request_id, seq)`. Deterministic for any worker
    /// count (see the module docs).
    pub fn merged(&self) -> Vec<Event> {
        let mut events: Vec<Event> = self
            .buffers
            .iter()
            .flat_map(|b| b.lock().iter().copied().collect::<Vec<_>>())
            .collect();
        events.sort_by_key(Event::sort_key);
        events
    }

    /// The merged log rendered as text, one line per event. Two runs
    /// that recorded the same events produce byte-identical strings.
    pub fn render_log(&self) -> String {
        let mut out = String::new();
        for event in self.merged() {
            out.push_str(&event.render());
            out.push('\n');
        }
        out
    }

    /// Events per [`EventKind::label`], name-sorted.
    pub fn event_counts(&self) -> BTreeMap<&'static str, u64> {
        let mut counts = BTreeMap::new();
        for event in self.merged() {
            *counts.entry(event.kind.label()).or_insert(0) += 1;
        }
        counts
    }

    /// Mirror per-type event counts into `registry` as
    /// `qosc_events_total{kind="…"}` counters.
    pub fn export_metrics(&self, registry: &MetricsRegistry) {
        for (label, count) in self.event_counts() {
            registry
                .counter(&format!("qosc_events_total{{kind=\"{label}\"}}"))
                .store(count);
        }
    }

    /// The causal chain of one request, rendered as an indented span
    /// tree with each span's events inline — the "why did this request
    /// end the way it did" view. Returns a note line when the request
    /// never recorded anything.
    pub fn explain(&self, request_id: u64) -> String {
        let events: Vec<Event> = self
            .merged()
            .into_iter()
            .filter(|e| e.request_id == request_id)
            .collect();
        if events.is_empty() {
            return format!("request {request_id}: no recorded events\n");
        }
        // Span id → (parent, label), plus per-span event lists in seq
        // order (`merged` already sorted them).
        let mut spans: BTreeMap<u32, (u32, &'static str)> = BTreeMap::new();
        let mut children: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        let mut lines: BTreeMap<u32, Vec<String>> = BTreeMap::new();
        for event in &events {
            match event.kind {
                EventKind::SpanOpen { parent, label } => {
                    spans.insert(event.span, (parent, label));
                    if parent != NO_PARENT {
                        children.entry(parent).or_default().push(event.span);
                    }
                }
                kind => lines.entry(event.span).or_default().push(format!(
                    "[t={}] {}",
                    event.virtual_time_us,
                    kind.render()
                )),
            }
        }
        let mut out = format!("request {request_id}\n");
        fn walk(
            span: u32,
            depth: usize,
            spans: &BTreeMap<u32, (u32, &'static str)>,
            children: &BTreeMap<u32, Vec<u32>>,
            lines: &BTreeMap<u32, Vec<String>>,
            out: &mut String,
        ) {
            let indent = "  ".repeat(depth);
            if let Some(&(_, label)) = spans.get(&span) {
                out.push_str(&format!("{indent}{label}\n"));
            }
            if let Some(events) = lines.get(&span) {
                for line in events {
                    out.push_str(&format!("{indent}  {line}\n"));
                }
            }
            if let Some(kids) = children.get(&span) {
                for &kid in kids {
                    walk(kid, depth + 1, spans, children, lines, out);
                }
            }
        }
        // Roots: spans whose parent is NO_PARENT (there is one per
        // request in practice, but render all defensively).
        let roots: Vec<u32> = spans
            .iter()
            .filter(|(_, &(parent, _))| parent == NO_PARENT)
            .map(|(&span, _)| span)
            .collect();
        for root in roots {
            walk(root, 0, &spans, &children, &lines, &mut out);
        }
        out
    }

    /// Depth of a request's span tree (1 = only the root span; 0 when
    /// the request recorded nothing). Scorecards aggregate this.
    pub fn explain_depth(&self, request_id: u64) -> usize {
        let mut parents: BTreeMap<u32, u32> = BTreeMap::new();
        for event in self.merged() {
            if event.request_id != request_id {
                continue;
            }
            if let EventKind::SpanOpen { parent, .. } = event.kind {
                parents.insert(event.span, parent);
            }
        }
        let mut deepest = 0usize;
        for &span in parents.keys() {
            let mut depth = 1usize;
            let mut cursor = span;
            while let Some(&parent) = parents.get(&cursor) {
                if parent == NO_PARENT {
                    break;
                }
                depth += 1;
                cursor = parent;
            }
            deepest = deepest.max(depth);
        }
        deepest
    }

    /// All distinct request ids in the log, ascending
    /// ([`REQUEST_NONE`] excluded).
    pub fn request_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .merged()
            .iter()
            .map(|e| e.request_id)
            .filter(|&id| id != REQUEST_NONE)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CacheOutcome;
    use crate::trace::{RequestTrace, ROOT_SPAN};

    fn sample(recorder: &FlightRecorder) {
        let mut a = RequestTrace::new(recorder, 0, 10);
        let cache = a.open_span(ROOT_SPAN, "cache");
        a.emit(
            cache,
            EventKind::CacheProbe {
                outcome: CacheOutcome::Miss,
            },
        );
        let rung = a.open_span(ROOT_SPAN, "full");
        a.emit(rung, EventKind::CompositionStarted { rung: "full" });
        a.emit(
            rung,
            EventKind::CompositionFinished {
                rung: "full",
                served: true,
                satisfaction_micros: 812_000,
                attempts: 1,
            },
        );
        let mut b = RequestTrace::new(recorder, 1, 5);
        b.emit(
            ROOT_SPAN,
            EventKind::RequestShed {
                reason: "queue_full",
            },
        );
    }

    #[test]
    fn merged_log_is_independent_of_recording_interleaving() {
        let forward = FlightRecorder::new(4);
        sample(&forward);
        // Record the same events in a different physical order (what a
        // different worker schedule would do).
        let shuffled = FlightRecorder::new(1);
        let mut events = forward.merged();
        events.reverse();
        for event in events {
            shuffled.record(event);
        }
        assert_eq!(forward.render_log(), shuffled.render_log());
        assert_eq!(forward.merged(), shuffled.merged());
    }

    #[test]
    fn event_counts_index_by_label() {
        let recorder = FlightRecorder::default();
        sample(&recorder);
        let counts = recorder.event_counts();
        assert_eq!(counts.get("cache_miss"), Some(&1));
        assert_eq!(counts.get("request_shed"), Some(&1));
        assert_eq!(counts.get("composition_finished"), Some(&1));
        assert_eq!(counts.get("span_open"), Some(&4));
    }

    #[test]
    fn explain_renders_the_causal_chain() {
        let recorder = FlightRecorder::default();
        sample(&recorder);
        let explain = recorder.explain(0);
        assert!(explain.starts_with("request 0\n"));
        assert!(explain.contains("cache"));
        assert!(explain.contains("cache_miss"));
        assert!(explain.contains("composition_finished rung=full served=true"));
        assert_eq!(recorder.explain_depth(0), 2, "root + one nested level");
        assert_eq!(recorder.explain_depth(1), 1, "shed request: root only");
        assert_eq!(recorder.explain_depth(99), 0, "unknown request");
        assert!(recorder.explain(99).contains("no recorded events"));
        assert_eq!(recorder.request_ids(), vec![0, 1]);
    }

    #[test]
    fn clear_empties_every_buffer() {
        let recorder = FlightRecorder::new(2);
        sample(&recorder);
        assert!(!recorder.is_empty());
        recorder.clear();
        assert!(recorder.is_empty());
        assert_eq!(recorder.render_log(), "");
    }
}
